//! Specification mining and program synthesis over command traces.
//!
//! §V names two further use cases for RAD beyond intrusion detection:
//! "program synthesis, generating a sequence of low-level commands
//! from a high-level specification, and specification mining, deriving
//! a high-level program specification from low-level commands". This
//! module implements first-order versions of both:
//!
//! - [`MinedSpec`] — a per-procedure automaton mined from runs: the
//!   observed command alphabet, the always-first / always-last
//!   commands, the transition relation, and invariant orderings
//!   (command a always precedes command b). This is the rule set a
//!   human would write in a procedure SOP.
//! - [`synthesize`] — samples a plausible command sequence from a
//!   fitted [`CommandLm`], the generative reading of the language
//!   model.

use std::collections::BTreeSet;
use std::hash::Hash;

use rad_core::RadError;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::lm::CommandLm;

/// A mined, human-readable specification of a procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedSpec<T> {
    alphabet: BTreeSet<T>,
    first: BTreeSet<T>,
    last: BTreeSet<T>,
    transitions: BTreeSet<(T, T)>,
    precedences: BTreeSet<(T, T)>,
}

impl<T: Clone + Ord + Hash> MinedSpec<T> {
    /// Mines a specification from the runs of one procedure.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] when `runs` is empty or contains
    /// an empty run.
    pub fn mine(runs: &[Vec<T>]) -> Result<Self, RadError> {
        if runs.is_empty() {
            return Err(RadError::Analysis(
                "cannot mine a spec from zero runs".into(),
            ));
        }
        if runs.iter().any(Vec::is_empty) {
            return Err(RadError::Analysis(
                "cannot mine a spec from an empty run".into(),
            ));
        }
        let mut alphabet = BTreeSet::new();
        let mut transitions = BTreeSet::new();
        let mut first = BTreeSet::new();
        let mut last = BTreeSet::new();
        for run in runs {
            alphabet.extend(run.iter().cloned());
            first.insert(run[0].clone());
            last.insert(run[run.len() - 1].clone());
            for w in run.windows(2) {
                transitions.insert((w[0].clone(), w[1].clone()));
            }
        }
        // Precedence invariants: a < b iff in *every* run containing
        // both, the first occurrence of a is before the first of b,
        // and at least one run contains both.
        let mut precedences = BTreeSet::new();
        for a in &alphabet {
            for b in &alphabet {
                if a == b {
                    continue;
                }
                let mut witnessed = false;
                let mut holds = true;
                for run in runs {
                    let pa = run.iter().position(|t| t == a);
                    let pb = run.iter().position(|t| t == b);
                    if let (Some(pa), Some(pb)) = (pa, pb) {
                        witnessed = true;
                        if pa >= pb {
                            holds = false;
                            break;
                        }
                    }
                }
                if witnessed && holds {
                    precedences.insert((a.clone(), b.clone()));
                }
            }
        }
        Ok(MinedSpec {
            alphabet,
            first,
            last,
            transitions,
            precedences,
        })
    }

    /// The observed command alphabet.
    pub fn alphabet(&self) -> &BTreeSet<T> {
        &self.alphabet
    }

    /// Commands that can start a run.
    pub fn initial_commands(&self) -> &BTreeSet<T> {
        &self.first
    }

    /// Commands that can end a run.
    pub fn final_commands(&self) -> &BTreeSet<T> {
        &self.last
    }

    /// Number of distinct observed transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Whether `a` always precedes `b` (first occurrences) in every
    /// run that contains both.
    pub fn always_precedes(&self, a: &T, b: &T) -> bool {
        self.precedences.contains(&(a.clone(), b.clone()))
    }

    /// Checks a new run against the mined spec, returning every
    /// violated rule — a rule-based IDS derived from data rather than
    /// hand-written (§I's "insufficient accumulated experience to
    /// produce a collection of rules").
    pub fn check(&self, run: &[T]) -> Vec<SpecViolation<T>> {
        let mut violations = Vec::new();
        let Some(first) = run.first() else {
            return violations;
        };
        if !self.first.contains(first) {
            violations.push(SpecViolation::BadStart(first.clone()));
        }
        for t in run {
            if !self.alphabet.contains(t) {
                violations.push(SpecViolation::UnknownCommand(t.clone()));
            }
        }
        for w in run.windows(2) {
            if self.alphabet.contains(&w[0])
                && self.alphabet.contains(&w[1])
                && !self.transitions.contains(&(w[0].clone(), w[1].clone()))
            {
                violations.push(SpecViolation::NovelTransition(w[0].clone(), w[1].clone()));
            }
        }
        for (a, b) in &self.precedences {
            let pa = run.iter().position(|t| t == a);
            let pb = run.iter().position(|t| t == b);
            if let (Some(pa), Some(pb)) = (pa, pb) {
                if pa >= pb {
                    violations.push(SpecViolation::OrderInversion(a.clone(), b.clone()));
                }
            }
        }
        violations
    }
}

/// One violated specification rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecViolation<T> {
    /// The run starts with a command no training run started with.
    BadStart(T),
    /// A command outside the mined alphabet.
    UnknownCommand(T),
    /// A transition never observed in training.
    NovelTransition(T, T),
    /// `a` occurred at/after `b` although training always had `a`
    /// strictly before `b`.
    OrderInversion(T, T),
}

/// Samples a plausible command sequence of length `len` from a fitted
/// language model, starting from `seed_context` — the generative /
/// program-synthesis reading of the model.
///
/// # Errors
///
/// Returns [`RadError::Analysis`] if `seed_context` is shorter than
/// `order - 1` or the vocabulary is empty.
pub fn synthesize<T: Clone + Eq + Hash + Ord>(
    lm: &CommandLm<T>,
    vocabulary: &[T],
    seed_context: &[T],
    len: usize,
    seed: u64,
) -> Result<Vec<T>, RadError> {
    let n = lm.order();
    if seed_context.len() < n - 1 {
        return Err(RadError::Analysis(format!(
            "seed context needs at least {} tokens",
            n - 1
        )));
    }
    if vocabulary.is_empty() {
        return Err(RadError::Analysis("empty vocabulary".into()));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out: Vec<T> = seed_context.to_vec();
    while out.len() < len {
        let context = &out[out.len() - (n - 1)..];
        if lm.context_count(context) == 0 {
            // Dead end: the training corpus never continued from here
            // (e.g. a terminal command). The program ends early rather
            // than inventing transitions.
            break;
        }
        // Sample from the conditional distribution over the vocabulary.
        let weights: Vec<f64> = vocabulary
            .iter()
            .map(|t| lm.probability(context, t))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut chosen = vocabulary.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        out.push(vocabulary[chosen].clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::Smoothing;

    fn runs() -> Vec<Vec<&'static str>> {
        vec![
            vec!["init", "home", "dose", "stir", "spin", "park"],
            vec!["init", "home", "dose", "stir", "stir", "spin", "park"],
            vec!["init", "home", "stir", "dose", "spin", "park"],
        ]
    }

    #[test]
    fn mined_spec_captures_start_end_and_alphabet() {
        let spec = MinedSpec::mine(&runs()).unwrap();
        assert!(spec.initial_commands().contains("init"));
        assert_eq!(spec.initial_commands().len(), 1);
        assert!(spec.final_commands().contains("park"));
        assert_eq!(spec.alphabet().len(), 6);
    }

    #[test]
    fn precedence_invariants_are_mined() {
        let spec = MinedSpec::mine(&runs()).unwrap();
        assert!(spec.always_precedes(&"init", &"dose"));
        assert!(spec.always_precedes(&"home", &"spin"));
        // dose/stir order varies across runs: no invariant either way.
        assert!(!spec.always_precedes(&"dose", &"stir"));
        assert!(!spec.always_precedes(&"stir", &"dose"));
    }

    #[test]
    fn check_flags_the_right_violations() {
        let spec = MinedSpec::mine(&runs()).unwrap();
        assert!(spec
            .check(&["init", "home", "dose", "stir", "spin", "park"])
            .is_empty());
        let violations = spec.check(&["home", "init", "explode", "spin", "park"]);
        assert!(violations.contains(&SpecViolation::BadStart("home")));
        assert!(violations.contains(&SpecViolation::UnknownCommand("explode")));
        assert!(violations
            .iter()
            .any(|v| matches!(v, SpecViolation::OrderInversion("init", _))));
    }

    #[test]
    fn novel_transitions_are_flagged() {
        let spec = MinedSpec::mine(&runs()).unwrap();
        let violations = spec.check(&["init", "spin", "park"]);
        assert!(violations.contains(&SpecViolation::NovelTransition("init", "spin")));
    }

    #[test]
    fn mining_rejects_degenerate_input() {
        assert!(MinedSpec::<&str>::mine(&[]).is_err());
        assert!(MinedSpec::mine(&[vec!["a"], vec![]]).is_err());
    }

    #[test]
    fn synthesis_respects_the_training_grammar() {
        let training = runs().iter().map(|r| r.to_vec()).collect::<Vec<_>>();
        let lm = CommandLm::fit(2, &training, Smoothing::EpsilonFloor(1e-12)).unwrap();
        let vocab: Vec<&str> = vec!["init", "home", "dose", "stir", "spin", "park"];
        let program = synthesize(&lm, &vocab, &["init"], 12, 7).unwrap();
        // Generation may stop early at a terminal command ("park" has
        // no observed continuation), but never runs past `len`.
        assert!(program.len() >= 2 && program.len() <= 12);
        // With near-zero smoothing, sampled transitions are (almost
        // surely) observed ones: the mined spec accepts the program's
        // transitions.
        let spec = MinedSpec::mine(&training).unwrap();
        let novel = spec
            .check(&program)
            .into_iter()
            .filter(|v| matches!(v, SpecViolation::NovelTransition(..)))
            .count();
        assert_eq!(
            novel, 0,
            "synthesized program uses only observed transitions"
        );
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let training = runs().iter().map(|r| r.to_vec()).collect::<Vec<_>>();
        let lm = CommandLm::fit(2, &training, Smoothing::default()).unwrap();
        let vocab: Vec<&str> = vec!["init", "home", "dose", "stir", "spin", "park"];
        let a = synthesize(&lm, &vocab, &["init"], 10, 3).unwrap();
        let b = synthesize(&lm, &vocab, &["init"], 10, 3).unwrap();
        assert_eq!(a, b);
        // Different seeds explore different branches (dose/stir order
        // varies in training); allow rare collisions by checking a
        // handful of seeds.
        let distinct: std::collections::BTreeSet<Vec<&str>> = (0..8)
            .map(|s| synthesize(&lm, &vocab, &["init"], 10, s).unwrap())
            .collect();
        assert!(distinct.len() > 1, "eight seeds should not all collide");
    }

    #[test]
    fn synthesis_validates_inputs() {
        let training = vec![vec!["a", "b", "a", "b"]];
        let lm = CommandLm::fit(3, &training, Smoothing::default()).unwrap();
        assert!(
            synthesize(&lm, &["a", "b"], &["a"], 5, 0).is_err(),
            "context too short"
        );
        let empty: Vec<&str> = vec![];
        assert!(
            synthesize(&lm, &empty, &["a", "b"], 5, 0).is_err(),
            "empty vocabulary"
        );
    }
}
