//! TF-IDF fingerprinting and cosine similarity (Fig. 6, RQ1).
//!
//! The paper's recipe, §V-A: (i) count each command per procedure run;
//! (ii) normalize counts so each run sums to one; (iii) scale by IDF;
//! (iv) compare runs with cosine similarity. IDF follows the
//! scikit-learn convention the authors' open-source analysis uses:
//! `idf(t) = ln((1 + N) / (1 + df(t))) + 1`, followed by L2
//! normalization of each document vector (which makes the dot product
//! the cosine similarity).

use std::hash::Hash;

use rad_core::RadError;

use crate::intern::Vocab;

/// A fitted TF-IDF model over a corpus of token sequences.
///
/// The vocabulary is a [`Vocab`] interned in sorted token order, so a
/// token's dense id doubles as its vector-component index.
#[derive(Debug, Clone)]
pub struct TfIdf<T> {
    vocab: Vocab<T>,
    idf: Vec<f64>,
    vectors: Vec<Vec<f64>>,
}

impl<T: Clone + Eq + Hash + Ord> TfIdf<T> {
    /// Fits the model on `documents` and vectorizes each of them.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] when `documents` is empty or any
    /// document is empty (an empty run has no fingerprint).
    pub fn fit(documents: &[Vec<T>]) -> Result<Self, RadError> {
        if documents.is_empty() {
            return Err(RadError::Analysis(
                "tf-idf needs at least one document".into(),
            ));
        }
        if let Some(i) = documents.iter().position(Vec::is_empty) {
            return Err(RadError::Analysis(format!("document {i} is empty")));
        }
        // Interning in sorted order keeps the vector-component order
        // stable for reproducibility (ids are lexicographic ranks).
        let sorted: std::collections::BTreeSet<&T> =
            documents.iter().flat_map(|d| d.iter()).collect();
        let mut vocab = Vocab::new();
        for token in sorted {
            vocab.intern(token);
        }

        let n_docs = documents.len() as f64;
        let mut df = vec![0u64; vocab.len()];
        for doc in documents {
            let mut seen = vec![false; vocab.len()];
            for t in doc {
                seen[vocab.get(t).expect("fit token is interned").index()] = true;
            }
            for (i, s) in seen.iter().enumerate() {
                if *s {
                    df[i] += 1;
                }
            }
        }
        let idf: Vec<f64> = df
            .iter()
            .map(|&d| ((1.0 + n_docs) / (1.0 + d as f64)).ln() + 1.0)
            .collect();

        let vectors = documents
            .iter()
            .map(|doc| {
                let mut v = vec![0.0; vocab.len()];
                for t in doc {
                    v[vocab.get(t).expect("fit token is interned").index()] += 1.0;
                }
                let total: f64 = doc.len() as f64;
                for (i, x) in v.iter_mut().enumerate() {
                    *x = (*x / total) * idf[i];
                }
                l2_normalize(&mut v);
                v
            })
            .collect();

        Ok(TfIdf {
            vocab,
            idf,
            vectors,
        })
    }

    /// The vocabulary, in vector-component order.
    pub fn vocabulary(&self) -> &[T] {
        self.vocab.tokens()
    }

    /// The fitted document vectors (unit length).
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.vectors
    }

    /// IDF weight of a token, if in vocabulary.
    pub fn idf(&self, token: &T) -> Option<f64> {
        self.vocab.get(token).map(|id| self.idf[id.index()])
    }

    /// Vectorizes an unseen document with the fitted vocabulary/IDF.
    /// Out-of-vocabulary tokens are ignored.
    pub fn transform(&self, document: &[T]) -> Vec<f64> {
        let mut v = vec![0.0; self.vocab.len()];
        if document.is_empty() {
            return v;
        }
        for t in document {
            if let Some(id) = self.vocab.get(t) {
                v[id.index()] += 1.0;
            }
        }
        let total = document.len() as f64;
        for (i, x) in v.iter_mut().enumerate() {
            *x = (*x / total) * self.idf[i];
        }
        l2_normalize(&mut v);
        v
    }

    /// Starts an incremental document accumulator: tokens arrive one
    /// at a time (e.g. from a live trace stream) and
    /// [`TfIdfAccumulator::vector`] produces the fingerprint of
    /// everything observed so far — **bit-identical** to
    /// [`TfIdf::transform`] of the same tokens as one slice, because
    /// integer counts below 2^53 are exact in `f64` and the
    /// normalization arithmetic is shared. Memory is bounded by the
    /// fitted vocabulary, not the document length.
    pub fn accumulator(&self) -> TfIdfAccumulator<'_, T> {
        TfIdfAccumulator {
            model: self,
            counts: vec![0u64; self.vocab.len()],
            total: 0,
        }
    }

    /// Vectorizes a raw count table (indexed by vocabulary id) with a
    /// document length of `total` tokens — the arithmetic core shared
    /// by [`TfIdf::transform`] and [`TfIdfAccumulator::vector`], so a
    /// caller that accumulated counts itself (e.g. a streaming stage
    /// keyed by run) gets the same bit-identical fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the vocabulary size.
    pub fn vectorize_counts(&self, counts: &[u64], total: u64) -> Vec<f64> {
        assert_eq!(
            counts.len(),
            self.vocab.len(),
            "counts must cover the vocabulary"
        );
        let mut v: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        if total == 0 {
            return v;
        }
        let total = total as f64;
        for (i, x) in v.iter_mut().enumerate() {
            *x = (*x / total) * self.idf[i];
        }
        l2_normalize(&mut v);
        v
    }

    /// Cosine similarity between two fitted documents.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn similarity(&self, a: usize, b: usize) -> f64 {
        dot(&self.vectors[a], &self.vectors[b])
    }

    /// The full pairwise similarity matrix (Fig. 6 is this matrix for
    /// the 25 supervised runs).
    #[allow(clippy::needless_range_loop)] // symmetric fill reads best indexed
    pub fn similarity_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.vectors.len();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let s = dot(&self.vectors[i], &self.vectors[j]);
                m[i][j] = s;
                m[j][i] = s;
            }
        }
        m
    }
}

/// An online TF-IDF fingerprint: per-token counts against a fitted
/// model's vocabulary, convertible to the normalized vector at any
/// point in the stream.
#[derive(Debug, Clone)]
pub struct TfIdfAccumulator<'a, T> {
    model: &'a TfIdf<T>,
    counts: Vec<u64>,
    total: u64,
}

impl<T: Clone + Eq + Hash + Ord> TfIdfAccumulator<'_, T> {
    /// Observes one token. Out-of-vocabulary tokens still count toward
    /// the document length (exactly as [`TfIdf::transform`] divides by
    /// the full slice length), they just contribute no component.
    pub fn observe(&mut self, token: &T) {
        if let Some(id) = self.model.vocab.get(token) {
            self.counts[id.index()] += 1;
        }
        self.total += 1;
    }

    /// Tokens observed so far (including out-of-vocabulary ones).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The fingerprint of everything observed so far: count-normalize,
    /// IDF-scale, L2-normalize — the same arithmetic as
    /// [`TfIdf::transform`], so the result is bit-identical to
    /// transforming the full token slice.
    pub fn vector(&self) -> Vec<f64> {
        self.model.vectorize_counts(&self.counts, self.total)
    }

    /// Clears the accumulated counts (the run-boundary reset).
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

/// Cosine similarity between two raw vectors (0 when either is zero).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub(crate) fn l2_normalize(v: &mut [f64]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<&'static str>> {
        vec![
            vec!["ARM", "MVNG", "MVNG", "ARM"],
            vec!["ARM", "MVNG", "ARM", "MVNG"],
            vec!["Q", "Q", "Q", "A", "V"],
        ]
    }

    #[test]
    fn identical_distributions_have_similarity_one() {
        let model = TfIdf::fit(&docs()).unwrap();
        // Docs 0 and 1 have identical bags of words.
        assert!((model.similarity(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_documents_have_similarity_zero() {
        let model = TfIdf::fit(&docs()).unwrap();
        assert!(model.similarity(0, 2).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let model = TfIdf::fit(&docs()).unwrap();
        let m = model.similarity_matrix();
        for i in 0..m.len() {
            assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..m.len() {
                assert!((m[i][j] - m[j][i]).abs() < 1e-15);
                assert!(m[i][j] >= -1e-12 && m[i][j] <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn rare_tokens_get_higher_idf() {
        let model = TfIdf::fit(&docs()).unwrap();
        // "Q" appears in 1 of 3 documents, "ARM" in 2 of 3.
        assert!(model.idf(&"Q").unwrap() > model.idf(&"ARM").unwrap());
        assert_eq!(model.idf(&"NOPE"), None);
    }

    #[test]
    fn transform_matches_fit_for_training_documents() {
        let d = docs();
        let model = TfIdf::fit(&d).unwrap();
        let v = model.transform(&d[2]);
        for (a, b) in v.iter().zip(&model.vectors()[2]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transform_ignores_oov_tokens() {
        let model = TfIdf::fit(&docs()).unwrap();
        let v = model.transform(&["UNSEEN", "TOKENS"]);
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn empty_corpus_and_empty_documents_error() {
        assert!(TfIdf::<&str>::fit(&[]).is_err());
        assert!(TfIdf::fit(&[vec!["A"], vec![]]).is_err());
    }

    #[test]
    fn accumulator_matches_transform_bit_for_bit() {
        let model = TfIdf::fit(&docs()).unwrap();
        let doc = ["ARM", "MVNG", "UNSEEN", "Q", "Q", "ARM"];
        let mut acc = model.accumulator();
        for t in &doc {
            acc.observe(t);
        }
        assert_eq!(acc.len(), doc.len());
        assert_eq!(acc.vector(), model.transform(&doc));
        // Reset returns to the empty-document fingerprint.
        acc.reset();
        assert!(acc.is_empty());
        assert_eq!(acc.vector(), model.transform(&[]));
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}
