//! The assembled perplexity-based anomaly detector (RQ2 / Table I),
//! plus the streaming variant the paper motivates for real-time use.

use std::collections::VecDeque;
use std::hash::Hash;

use rad_core::RadError;

use crate::crossval::CrossValidation;
use crate::intern::{TokenId, Vocab};
use crate::jenks::jenks_two_class;
use crate::lm::{CommandLm, InternedLm, Smoothing};
use crate::metrics::ConfusionMatrix;

/// Minimum training-token count per worker before cross-validation
/// folds are scored on their own threads. Fitting and scoring a fold
/// is a linear pass, so tiny corpora finish faster inline than the
/// spawn/join round-trip costs.
const MIN_TOKENS_PER_FOLD_THREAD: usize = 8192;

/// Configuration of the perplexity detector: n-gram order + smoothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerplexityDetector {
    order: usize,
    smoothing: Smoothing,
}

/// The outcome of a cross-validated evaluation (one Table I column).
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// Confusion matrix over all held-out predictions.
    pub confusion: ConfusionMatrix,
    /// Per-sequence `(perplexity, actual_anomalous, predicted)` in
    /// input order.
    pub scores: Vec<(f64, bool, bool)>,
    /// The Jenks threshold that separated the two classes.
    pub threshold: f64,
}

impl PerplexityDetector {
    /// A detector with the given n-gram order and default smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `order < 2`.
    pub fn new(order: usize) -> Self {
        assert!(order >= 2, "order must be at least 2 (bigram)");
        PerplexityDetector {
            order,
            smoothing: Smoothing::default(),
        }
    }

    /// Overrides the smoothing scheme.
    #[must_use]
    pub fn with_smoothing(mut self, smoothing: Smoothing) -> Self {
        self.smoothing = smoothing;
        self
    }

    /// The n-gram order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Runs the paper's protocol: k-fold cross validation over
    /// labelled sequences, perplexity scoring of each held-out
    /// sequence under a model fitted on its training fold, then Jenks
    /// two-class clustering of all scores into benign/anomalous.
    ///
    /// Clustering happens in the log domain (i.e. over cross-entropy,
    /// the exponent of perplexity): perplexities are heavy-tailed, and
    /// natural-breaks clustering of the raw scores would latch onto
    /// the single largest outlier instead of the benign/anomalous gap.
    /// The reported threshold is mapped back to perplexity units.
    ///
    /// The corpus is interned exactly once; each fold then fits an
    /// [`InternedLm`] on borrowed id slices — in its own scoped
    /// thread when the corpus is large enough (and the machine
    /// parallel enough) to amortize the spawns, inline otherwise.
    /// Fold results are merged back by item index, so the report is
    /// bit-identical to the sequential protocol either way.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] when the fold arithmetic or any
    /// model fit fails (e.g. sequences shorter than the order).
    pub fn evaluate<T: Clone + Eq + Hash + Ord>(
        &self,
        labelled: &[(Vec<T>, bool)],
        k: usize,
        seed: u64,
    ) -> Result<EvaluationReport, RadError> {
        let cv = CrossValidation::new(labelled.len(), k, seed)?;
        let mut vocab = Vocab::new();
        let interned: Vec<Vec<TokenId>> = labelled
            .iter()
            .map(|(seq, _)| {
                let mut ids = Vec::new();
                vocab.intern_into(seq, &mut ids);
                ids
            })
            .collect();
        let folds: Vec<_> = cv.folds().collect();
        let order = self.order;
        let smoothing = self.smoothing;
        let score_fold = |fold: &crate::crossval::Fold| -> Result<Vec<(usize, f64)>, RadError> {
            let training: Vec<&[TokenId]> =
                fold.train.iter().map(|&i| interned[i].as_slice()).collect();
            let lm = InternedLm::fit(order, &training, smoothing)?;
            fold.test
                .iter()
                .map(|&i| Ok((i, lm.perplexity(&interned[i])?)))
                .collect()
        };
        // Fitting a fold costs roughly one pass over its training
        // tokens; below ~8k tokens per worker the thread spawn/join
        // overhead outweighs the overlap (and on a single-core box
        // there is no overlap at all), so score folds inline.
        let total_tokens: usize = interned.iter().map(Vec::len).sum::<usize>() * folds.len();
        let fold_scores: Vec<Result<Vec<(usize, f64)>, RadError>> =
            if !rad_core::par::should_fan_out(folds.len(), total_tokens, MIN_TOKENS_PER_FOLD_THREAD)
            {
                folds.iter().map(score_fold).collect()
            } else {
                crossbeam::thread::scope(|s| {
                    let handles: Vec<_> = folds
                        .iter()
                        .map(|fold| {
                            let score_fold = &score_fold;
                            s.spawn(move || score_fold(fold))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("fold worker panicked"))
                        .collect()
                })
            };
        let mut scores: Vec<Option<(f64, bool)>> = vec![None; labelled.len()];
        for per_fold in fold_scores {
            for (i, ppl) in per_fold? {
                scores[i] = Some((ppl, labelled[i].1));
            }
        }
        let flat: Vec<(f64, bool)> = scores
            .into_iter()
            .map(|s| s.expect("every item lands in one test fold"))
            .collect();
        let log_scores: Vec<f64> = flat.iter().map(|(p, _)| p.ln()).collect();
        let threshold = jenks_two_class(&log_scores)?.exp();
        let mut confusion = ConfusionMatrix::new();
        let mut detailed = Vec::with_capacity(flat.len());
        for (ppl, actual) in flat {
            let predicted = ppl > threshold;
            confusion.record(actual, predicted);
            detailed.push((ppl, actual, predicted));
        }
        Ok(EvaluationReport {
            confusion,
            scores: detailed,
            threshold,
        })
    }

    /// Fits a deployable detector: the model trains on the given
    /// (benign) sequences and the alarm threshold comes from Jenks
    /// clustering of `calibration` scores — or, when calibration
    /// produces a single class, a multiple of the largest training
    /// perplexity.
    ///
    /// # Errors
    ///
    /// Propagates model-fit and scoring failures.
    pub fn fit<T: Clone + Eq + Hash + Ord>(
        &self,
        training: &[Vec<T>],
        calibration: &[Vec<T>],
    ) -> Result<FittedDetector<T>, RadError> {
        let lm = CommandLm::fit(self.order, training, self.smoothing)?;
        let mut scores = Vec::with_capacity(calibration.len());
        for seq in calibration {
            scores.push(lm.perplexity(seq)?);
        }
        let threshold = if scores.len() >= 2 {
            let logs: Vec<f64> = scores.iter().map(|p| p.ln()).collect();
            jenks_two_class(&logs)?.exp()
        } else {
            // No calibration spread: fall back to a safety margin over
            // whatever we saw.
            scores.first().copied().unwrap_or(1.0) * 3.0
        };
        Ok(FittedDetector { lm, threshold })
    }
}

/// A fitted, deployable detector.
#[derive(Debug, Clone)]
pub struct FittedDetector<T> {
    lm: CommandLm<T>,
    threshold: f64,
}

impl<T: Clone + Eq + Hash + Ord> FittedDetector<T> {
    /// The alarm threshold in perplexity units.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The fitted language model. The streaming stages score through
    /// its interned-id fast path instead of re-tokenizing per push.
    pub fn lm(&self) -> &CommandLm<T> {
        &self.lm
    }

    /// Overrides the alarm threshold.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Perplexity of a completed sequence.
    ///
    /// # Errors
    ///
    /// Fails on sequences shorter than the model order.
    pub fn score(&self, sequence: &[T]) -> Result<f64, RadError> {
        self.lm.perplexity(sequence)
    }

    /// Whether a completed sequence scores above the alarm threshold.
    ///
    /// # Errors
    ///
    /// Fails on sequences shorter than the model order.
    pub fn is_anomalous(&self, sequence: &[T]) -> Result<bool, RadError> {
        Ok(self.score(sequence)? > self.threshold)
    }

    /// Localizes the anomaly: returns the `k` least-probable
    /// transitions of `sequence`, most suspicious first, as
    /// `(index of the transition's last token, probability)`. This is
    /// what an operator sees next to an alarm — *where* the run went
    /// off-script, not just that it did.
    ///
    /// # Errors
    ///
    /// Fails on sequences shorter than the model order.
    pub fn localize(&self, sequence: &[T], k: usize) -> Result<Vec<(usize, f64)>, RadError> {
        let n = self.lm.order();
        if sequence.len() < n {
            return Err(RadError::Analysis(format!(
                "sequence of {} tokens is shorter than model order {n}",
                sequence.len()
            )));
        }
        let mut scored: Vec<(usize, f64)> = sequence
            .windows(n)
            .enumerate()
            .map(|(i, w)| (i + n - 1, self.lm.probability(&w[..n - 1], &w[n - 1])))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("probabilities are finite"));
        scored.truncate(k);
        Ok(scored)
    }

    /// Starts a streaming scorer with a sliding window of `window`
    /// transitions — the real-time mode §V-B motivates.
    ///
    /// The window counts *transitions*, not tokens, so it is
    /// independent of the model order: `window = 1` scores only the
    /// most recent transition even under a high-order model. A window
    /// of `0` means unbounded — every transition stays in scope, and
    /// the final windowed perplexity of a completed sequence equals
    /// [`FittedDetector::score`] of that sequence exactly.
    pub fn stream(&self, window: usize) -> StreamScorer<'_, T> {
        StreamScorer {
            detector: self,
            context: VecDeque::new(),
            log_probs: VecDeque::new(),
            window: if window == 0 { usize::MAX } else { window },
            log_sum: 0.0,
        }
    }
}

/// Online perplexity over the last `window` transitions.
#[derive(Debug)]
pub struct StreamScorer<'a, T> {
    detector: &'a FittedDetector<T>,
    context: VecDeque<T>,
    log_probs: VecDeque<f64>,
    window: usize,
    log_sum: f64,
}

impl<T: Clone + Eq + Hash + Ord> StreamScorer<'_, T> {
    /// Feeds the next observed command. Returns the current windowed
    /// perplexity once at least one transition has been scored.
    pub fn push(&mut self, token: T) -> Option<f64> {
        self.context.push_back(token);
        let n = self.detector.lm.order();
        if self.context.len() > n {
            self.context.pop_front();
        }
        if self.context.len() == n {
            let window = self.context.make_contiguous();
            let (ctx, next) = window.split_at(n - 1);
            let logp = self.detector.lm.probability(ctx, &next[0]).ln();
            self.log_probs.push_back(logp);
            self.log_sum += logp;
            if self.log_probs.len() > self.window {
                self.log_sum -= self.log_probs.pop_front().expect("len > window >= 1");
            }
        }
        self.perplexity()
    }

    /// Current windowed perplexity. `None` until the first transition
    /// has been scored — an empty (or shorter-than-order) stream has
    /// no perplexity, and [`StreamScorer::is_alarming`] stays `false`.
    pub fn perplexity(&self) -> Option<f64> {
        if self.log_probs.is_empty() {
            return None;
        }
        Some((-self.log_sum / self.log_probs.len() as f64).exp())
    }

    /// Number of transitions currently in the window.
    pub fn transitions(&self) -> usize {
        self.log_probs.len()
    }

    /// Forgets all context and scored transitions — the run-boundary
    /// reset, so one scorer serves many runs without carrying a
    /// cross-run transition over.
    pub fn reset(&mut self) {
        self.context.clear();
        self.log_probs.clear();
        self.log_sum = 0.0;
    }

    /// Whether the current window scores above the alarm threshold.
    pub fn is_alarming(&self) -> bool {
        self.perplexity()
            .is_some_and(|p| p > self.detector.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Benign runs repeat an A-B pattern; anomalies go off-script.
    fn labelled() -> Vec<(Vec<&'static str>, bool)> {
        let mut out = Vec::new();
        for i in 0..9 {
            let mut seq = Vec::new();
            for _ in 0..(10 + i % 3) {
                seq.push("A");
                seq.push("B");
            }
            out.push((seq, false));
        }
        out.push((vec!["A", "B", "A", "X", "X", "Y", "X", "B", "B", "B"], true));
        out
    }

    #[test]
    fn evaluation_catches_the_planted_anomaly() {
        let det = PerplexityDetector::new(2);
        let report = det.evaluate(&labelled(), 5, 0).unwrap();
        assert_eq!(report.confusion.true_positives(), 1);
        assert_eq!(report.confusion.false_negatives(), 0);
        assert!((report.confusion.recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scores_align_with_labels() {
        let det = PerplexityDetector::new(2);
        let report = det.evaluate(&labelled(), 5, 1).unwrap();
        let anomaly_score = report
            .scores
            .iter()
            .find(|(_, actual, _)| *actual)
            .unwrap()
            .0;
        for (score, actual, _) in &report.scores {
            if !actual {
                assert!(anomaly_score > *score, "anomaly outscores benign runs");
            }
        }
    }

    #[test]
    fn fitted_detector_flags_unseen_weirdness() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(2)
            .fit(&benign[..6], &benign[6..])
            .unwrap();
        assert!(!det.is_anomalous(&["A", "B", "A", "B", "A", "B"]).unwrap());
        assert!(det.is_anomalous(&["B", "B", "B", "A", "A"]).unwrap());
    }

    #[test]
    fn streaming_scorer_rises_on_anomalous_suffix() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(2).fit(&benign, &benign).unwrap();
        let mut stream = det.stream(4);
        let mut normal_ppl = 0.0;
        for t in ["A", "B", "A", "B", "A", "B"] {
            if let Some(p) = stream.push(t) {
                normal_ppl = p;
            }
        }
        assert!(!stream.is_alarming());
        for t in ["B", "X", "X"] {
            stream.push(t);
        }
        let anomalous_ppl = stream.perplexity().unwrap();
        assert!(anomalous_ppl > normal_ppl * 10.0);
    }

    #[test]
    fn streaming_window_forgets_old_transitions() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(2).fit(&benign, &benign).unwrap();
        let mut stream = det.stream(3);
        // One bad transition...
        for t in ["A", "B", "B"] {
            stream.push(t);
        }
        let spiked = stream.perplexity().unwrap();
        // ...followed by plenty of normal traffic: the window slides
        // past the spike.
        for _ in 0..5 {
            stream.push("A");
            stream.push("B");
        }
        let recovered = stream.perplexity().unwrap();
        assert!(
            recovered < spiked / 10.0,
            "spiked {spiked}, recovered {recovered}"
        );
    }

    #[test]
    fn stream_returns_none_before_first_transition() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(3).fit(&benign, &benign).unwrap();
        let mut stream = det.stream(4);
        assert_eq!(stream.push("A"), None);
        assert_eq!(stream.push("B"), None, "trigram needs three tokens");
        assert!(stream.push("A").is_some());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn order_one_is_rejected() {
        let _ = PerplexityDetector::new(1);
    }

    #[test]
    fn stream_window_zero_is_unbounded_and_matches_batch_score() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(2).fit(&benign, &benign).unwrap();
        let seq = ["A", "B", "A", "X", "B", "A", "B"];
        let mut stream = det.stream(0);
        for t in seq {
            stream.push(t);
        }
        let streamed = stream.perplexity().unwrap();
        let batch = det.score(&seq).unwrap();
        assert_eq!(streamed, batch, "unbounded window == batch, bit for bit");
        assert_eq!(stream.transitions(), seq.len() - 1);
    }

    #[test]
    fn stream_window_one_tracks_the_latest_transition() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(2).fit(&benign, &benign).unwrap();
        let mut stream = det.stream(1);
        for t in ["A", "B", "A", "B"] {
            stream.push(t);
        }
        assert_eq!(stream.transitions(), 1, "window 1 keeps one transition");
        assert!(!stream.is_alarming());
        stream.push("X");
        // The only scored transition is B->X, far off-grammar.
        assert!(stream.is_alarming());
        stream.push("A");
        stream.push("B");
        // ...and one window later the spike is fully forgotten.
        assert!(!stream.is_alarming());
    }

    #[test]
    fn stream_window_shorter_than_order_still_scores() {
        // The window counts transitions, not tokens: a trigram model
        // with window 1 is well-defined (each transition consumes a
        // three-token context internally).
        let training = vec![vec!["X", "Y", "Z", "X", "Y", "Z", "X", "Y", "Z"]];
        let det = PerplexityDetector::new(3)
            .fit(&training, &training)
            .unwrap();
        let mut stream = det.stream(1);
        assert_eq!(stream.push("X"), None);
        assert_eq!(stream.push("Y"), None, "trigram context still filling");
        let first = stream.push("Z").expect("first transition scored");
        assert!(first < 1.5, "on-grammar transition scores low: {first}");
        assert_eq!(stream.transitions(), 1);
    }

    #[test]
    fn empty_stream_has_no_perplexity_and_never_alarms() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(2).fit(&benign, &benign).unwrap();
        let stream = det.stream(4);
        assert_eq!(stream.perplexity(), None);
        assert!(!stream.is_alarming());
        assert_eq!(stream.transitions(), 0);
    }

    #[test]
    fn stream_reset_clears_context_across_runs() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(2).fit(&benign, &benign).unwrap();
        let mut stream = det.stream(0);
        for t in ["A", "B", "A", "B"] {
            stream.push(t);
        }
        stream.reset();
        assert_eq!(stream.perplexity(), None);
        // After a reset the scorer behaves exactly like a fresh one:
        // no phantom cross-run transition is scored.
        for t in ["B", "A", "B"] {
            stream.push(t);
        }
        let resumed = stream.perplexity().unwrap();
        let fresh = det.score(&["B", "A", "B"]).unwrap();
        assert_eq!(resumed, fresh);
    }

    #[test]
    fn localize_points_at_the_off_script_tokens() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(2).fit(&benign, &benign).unwrap();
        //                      0    1    2    3    4    5    6
        let run = ["A", "B", "A", "X", "X", "B", "A", "B"];
        let suspects = det.localize(&run, 3).unwrap();
        let indices: Vec<usize> = suspects.iter().map(|(i, _)| *i).collect();
        // The transitions into and out of the X tokens are the least
        // probable ones.
        assert!(indices.contains(&3), "A->X at index 3: {indices:?}");
        assert!(indices.contains(&4), "X->X at index 4: {indices:?}");
        assert!(
            suspects[0].1 < 1e-3,
            "top suspect has near-zero probability"
        );
    }

    #[test]
    fn localize_validates_length() {
        let benign: Vec<Vec<&str>> = labelled()
            .into_iter()
            .filter(|(_, a)| !a)
            .map(|(s, _)| s)
            .collect();
        let det = PerplexityDetector::new(3).fit(&benign, &benign).unwrap();
        assert!(det.localize(&["A", "B"], 2).is_err());
    }
}
