//! K-fold cross-validation (the 5-fold protocol of §V-B).
//!
//! The paper shuffles the 25 supervised runs, splits them into five
//! groups of five, and rotates each group through the test-set role.
//! [`CrossValidation`] reproduces that protocol deterministically: the
//! shuffle derives from an explicit seed.

use rad_core::RadError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A reproducible k-fold splitter over item indices.
///
/// # Examples
///
/// ```
/// use rad_analysis::CrossValidation;
///
/// let cv = CrossValidation::new(25, 5, 7)?;
/// let folds: Vec<_> = cv.folds().collect();
/// assert_eq!(folds.len(), 5);
/// let total: usize = folds.iter().map(|f| f.test.len()).sum();
/// assert_eq!(total, 25);
/// # Ok::<(), rad_core::RadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CrossValidation {
    assignment: Vec<usize>,
    k: usize,
}

/// One train/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of the training items.
    pub train: Vec<usize>,
    /// Indices of the held-out test items.
    pub test: Vec<usize>,
}

impl CrossValidation {
    /// Plans a shuffled k-fold split of `n` items, seeded by `seed`.
    ///
    /// When `k` does not divide `n`, the first `n % k` folds get one
    /// extra item (scikit-learn's convention).
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `k < 2` or `n < k`.
    pub fn new(n: usize, k: usize, seed: u64) -> Result<Self, RadError> {
        if k < 2 {
            return Err(RadError::Analysis("need at least two folds".into()));
        }
        if n < k {
            return Err(RadError::Analysis(format!(
                "cannot split {n} items into {k} folds"
            )));
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        // assignment[i] = fold of item i.
        let mut assignment = vec![0usize; n];
        let base = n / k;
        let extra = n % k;
        let mut cursor = 0;
        for fold in 0..k {
            let size = base + usize::from(fold < extra);
            for _ in 0..size {
                assignment[order[cursor]] = fold;
                cursor += 1;
            }
        }
        Ok(CrossValidation { assignment, k })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the split is over zero items (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Iterates over the k train/test splits.
    pub fn folds(&self) -> impl Iterator<Item = Fold> + '_ {
        (0..self.k).map(move |fold| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &f) in self.assignment.iter().enumerate() {
                if f == fold {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Fold { train, test }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn folds_partition_all_items() {
        let cv = CrossValidation::new(25, 5, 1).unwrap();
        let mut seen = BTreeSet::new();
        for fold in cv.folds() {
            assert_eq!(fold.test.len(), 5);
            assert_eq!(fold.train.len(), 20);
            for i in &fold.test {
                assert!(seen.insert(*i), "item {i} appears in two test folds");
            }
            let train: BTreeSet<_> = fold.train.iter().collect();
            assert!(fold.test.iter().all(|i| !train.contains(i)));
        }
        assert_eq!(seen.len(), 25);
    }

    #[test]
    fn uneven_splits_distribute_the_remainder() {
        let cv = CrossValidation::new(23, 5, 2).unwrap();
        let sizes: Vec<usize> = cv.folds().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        assert_eq!(*sizes.iter().max().unwrap(), 5);
        assert_eq!(*sizes.iter().min().unwrap(), 4);
    }

    #[test]
    fn same_seed_same_split_different_seed_different_split() {
        let a: Vec<Fold> = CrossValidation::new(25, 5, 3).unwrap().folds().collect();
        let b: Vec<Fold> = CrossValidation::new(25, 5, 3).unwrap().folds().collect();
        let c: Vec<Fold> = CrossValidation::new(25, 5, 4).unwrap().folds().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn validation_errors() {
        assert!(CrossValidation::new(25, 1, 0).is_err());
        assert!(CrossValidation::new(3, 5, 0).is_err());
    }
}
