//! Classification metrics (Table I).
//!
//! Anomaly detection treats *anomalous* as the positive class. Table I
//! reports accuracy, a weighted accuracy that counts true positives
//! twice (catching a crash matters more than avoiding a false alarm),
//! precision, recall, and F1, plus the raw confusion counts.

use std::fmt;

/// A binary confusion matrix with anomalous as the positive class.
///
/// # Examples
///
/// ```
/// use rad_analysis::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new();
/// cm.record(true, true);   // caught anomaly
/// cm.record(false, false); // correctly quiet
/// cm.record(false, true);  // false alarm
/// assert_eq!(cm.true_positives(), 1);
/// assert_eq!(cm.false_positives(), 1);
/// assert!((cm.recall() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    tp: u64,
    fp: u64,
    tn: u64,
    fn_: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Builds a matrix from raw counts `(tp, fp, tn, fn)`.
    pub fn from_counts(tp: u64, fp: u64, tn: u64, fn_: u64) -> Self {
        ConfusionMatrix { tp, fp, tn, fn_ }
    }

    /// Records one prediction.
    pub fn record(&mut self, actual_anomalous: bool, predicted_anomalous: bool) {
        match (actual_anomalous, predicted_anomalous) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merges another matrix into this one (fold accumulation).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// True positives (anomalies caught).
    pub fn true_positives(&self) -> u64 {
        self.tp
    }

    /// False positives (false alarms).
    pub fn false_positives(&self) -> u64 {
        self.fp
    }

    /// True negatives (benign passed through).
    pub fn true_negatives(&self) -> u64 {
        self.tn
    }

    /// False negatives (missed anomalies).
    pub fn false_negatives(&self) -> u64 {
        self.fn_
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(tp + tn) / total`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Table I's weighted accuracy: true positives weighted 2× over
    /// true negatives (footnote 3 of the paper).
    pub fn weighted_accuracy(&self) -> f64 {
        let denom = 2.0 * (self.tp + self.fn_) as f64 + (self.tn + self.fp) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (2.0 * self.tp as f64 + self.tn as f64) / denom
    }

    /// `tp / (tp + fp)`; 0 when no positive predictions were made.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// `tp / (tp + fn)`; 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} acc={:.2}% wacc={:.2}% prec={:.2} rec={:.2} f1={:.2}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.accuracy() * 100.0,
            self.weighted_accuracy() * 100.0,
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_trigram_row_reproduces() {
        // Table I, trigram column: TP 3, TN 18, FP 4, FN 0.
        let cm = ConfusionMatrix::from_counts(3, 4, 18, 0);
        assert!((cm.accuracy() - 0.84).abs() < 0.005);
        assert!((cm.weighted_accuracy() - 0.8571).abs() < 0.001);
        assert!((cm.precision() - 3.0 / 7.0).abs() < 1e-12);
        assert!((cm.recall() - 1.0).abs() < 1e-12);
        assert!((cm.f1() - 0.6).abs() < 0.001);
    }

    #[test]
    fn table_one_bigram_row_reproduces() {
        // Table I, bigram column: TP 3, TN 13, FP 9, FN 0.
        let cm = ConfusionMatrix::from_counts(3, 9, 13, 0);
        assert!((cm.accuracy() - 0.64).abs() < 0.005);
        assert!((cm.weighted_accuracy() - 0.6785).abs() < 0.001);
        assert!((cm.precision() - 0.25).abs() < 1e-12);
        assert!((cm.f1() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn record_routes_to_the_right_cell() {
        let mut cm = ConfusionMatrix::new();
        cm.record(true, true);
        cm.record(true, false);
        cm.record(false, true);
        cm.record(false, false);
        assert_eq!(
            (
                cm.true_positives(),
                cm.false_negatives(),
                cm.false_positives(),
                cm.true_negatives()
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(cm.total(), 4);
    }

    #[test]
    fn merge_accumulates_folds() {
        let mut total = ConfusionMatrix::new();
        for _ in 0..5 {
            total.merge(&ConfusionMatrix::from_counts(1, 2, 3, 0));
        }
        assert_eq!(total, ConfusionMatrix::from_counts(5, 10, 15, 0));
    }

    #[test]
    fn empty_matrix_metrics_are_zero_not_nan() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.weighted_accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
    }

    #[test]
    fn display_shows_all_cells() {
        let s = ConfusionMatrix::from_counts(3, 4, 18, 0).to_string();
        assert!(s.contains("tp=3") && s.contains("fp=4") && s.contains("tn=18"));
    }
}
