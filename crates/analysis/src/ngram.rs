//! N-gram frequency counting (Fig. 5b).
//!
//! An n-gram here is a contiguous run of `n` commands. The counter is
//! generic over the token type: the paper's analysis uses bare
//! [`rad_core::CommandType`] tokens, while the parameter-aware ablation
//! uses `(command, bucketed-args)` strings.

use std::collections::HashMap;
use std::hash::Hash;

/// Counts n-grams of a fixed order over one or more sequences.
///
/// # Examples
///
/// ```
/// use rad_analysis::NgramCounter;
///
/// let mut bigrams = NgramCounter::new(2);
/// bigrams.observe(&["Q", "Q", "Q", "A"]);
/// assert_eq!(bigrams.count(&["Q", "Q"]), 2);
/// assert_eq!(bigrams.count(&["Q", "A"]), 1);
/// assert_eq!(bigrams.top_k(1)[0].0, vec!["Q", "Q"]);
/// ```
#[derive(Debug, Clone)]
pub struct NgramCounter<T> {
    n: usize,
    counts: HashMap<Vec<T>, u64>,
    total: u64,
}

impl<T: Clone + Eq + Hash + Ord> NgramCounter<T> {
    /// A counter for n-grams of order `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "n-gram order must be at least 1");
        NgramCounter {
            n,
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// The n-gram order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Adds every n-gram of `sequence` to the counts. Sequences
    /// shorter than `n` contribute nothing; n-grams never straddle two
    /// `observe` calls (sentence boundaries are respected).
    pub fn observe(&mut self, sequence: &[T]) {
        if sequence.len() < self.n {
            return;
        }
        for window in sequence.windows(self.n) {
            *self.counts.entry(window.to_vec()).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Count of one specific n-gram.
    pub fn count(&self, ngram: &[T]) -> u64 {
        self.counts.get(ngram).copied().unwrap_or(0)
    }

    /// Total number of n-gram occurrences observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct n-grams observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most frequent n-grams with their counts, most frequent
    /// first; ties break lexicographically for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(Vec<T>, u64)> {
        let mut entries: Vec<(Vec<T>, u64)> =
            self.counts.iter().map(|(g, c)| (g.clone(), *c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Relative frequency of one n-gram among all observed n-grams.
    pub fn frequency(&self, ngram: &[T]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count(ngram) as f64 / self.total as f64
    }

    /// Iterates over all `(ngram, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<T>, u64)> {
        self.counts.iter().map(|(g, c)| (g, *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unigram_counts_are_token_counts() {
        let mut c = NgramCounter::new(1);
        c.observe(&[1, 1, 2, 3, 1]);
        assert_eq!(c.count(&[1]), 3);
        assert_eq!(c.count(&[2]), 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn short_sequences_contribute_nothing() {
        let mut c = NgramCounter::new(3);
        c.observe(&[1, 2]);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn ngrams_do_not_straddle_sentences() {
        let mut c = NgramCounter::new(2);
        c.observe(&[1, 2]);
        c.observe(&[3, 4]);
        assert_eq!(
            c.count(&[2, 3]),
            0,
            "no bigram across the sentence boundary"
        );
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn top_k_orders_by_count_then_lexicographic() {
        let mut c = NgramCounter::new(2);
        c.observe(&["b", "b", "b", "a", "a", "a"]);
        // bigrams: bb bb ba aa aa
        let top = c.top_k(3);
        assert_eq!(top[0], (vec!["a", "a"], 2));
        assert_eq!(top[1], (vec!["b", "b"], 2));
        assert_eq!(top[2], (vec!["b", "a"], 1));
    }

    #[test]
    fn frequency_normalizes_by_total() {
        let mut c = NgramCounter::new(1);
        c.observe(&[7, 7, 8, 9]);
        assert!((c.frequency(&[7]) - 0.5).abs() < 1e-12);
        let empty: NgramCounter<i32> = NgramCounter::new(1);
        assert_eq!(empty.frequency(&[7]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_order_is_rejected() {
        let _ = NgramCounter::<u8>::new(0);
    }
}
