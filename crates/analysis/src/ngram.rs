//! N-gram frequency counting (Fig. 5b).
//!
//! An n-gram here is a contiguous run of `n` commands. The counter is
//! generic over the token type: the paper's analysis uses bare
//! [`rad_core::CommandType`] tokens, while the parameter-aware ablation
//! uses `(command, bucketed-args)` strings.
//!
//! Internally the counter interns tokens into a [`Vocab`] and counts
//! packed id keys (see [`crate::intern`]); observing a window neither
//! clones tokens nor allocates for orders up to
//! [`crate::intern::PACKED_ORDER`].

use std::hash::Hash;

use crate::intern::{InternedNgramCounter, TokenId, Vocab};

/// Counts n-grams of a fixed order over one or more sequences.
///
/// # Examples
///
/// ```
/// use rad_analysis::NgramCounter;
///
/// let mut bigrams = NgramCounter::new(2);
/// bigrams.observe(&["Q", "Q", "Q", "A"]);
/// assert_eq!(bigrams.count(&["Q", "Q"]), 2);
/// assert_eq!(bigrams.count(&["Q", "A"]), 1);
/// assert_eq!(bigrams.top_k(1)[0].0, vec!["Q", "Q"]);
/// ```
#[derive(Debug, Clone)]
pub struct NgramCounter<T> {
    vocab: Vocab<T>,
    inner: InternedNgramCounter,
    scratch: Vec<TokenId>,
}

impl<T: Clone + Eq + Hash + Ord> NgramCounter<T> {
    /// A counter for n-grams of order `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        NgramCounter {
            vocab: Vocab::new(),
            inner: InternedNgramCounter::new(n),
            scratch: Vec::new(),
        }
    }

    /// The n-gram order.
    pub fn order(&self) -> usize {
        self.inner.order()
    }

    /// Adds every n-gram of `sequence` to the counts. Sequences
    /// shorter than `n` contribute nothing; n-grams never straddle two
    /// `observe` calls (sentence boundaries are respected).
    pub fn observe(&mut self, sequence: &[T]) {
        self.vocab.intern_into(sequence, &mut self.scratch);
        self.inner.observe(&self.scratch);
    }

    /// Count of one specific n-gram.
    pub fn count(&self, ngram: &[T]) -> u64 {
        if ngram.len() != self.inner.order() {
            return 0;
        }
        let ids: Vec<TokenId> = ngram.iter().map(|t| self.vocab.get_or_pad(t)).collect();
        self.inner.count(&ids)
    }

    /// Total number of n-gram occurrences observed.
    pub fn total(&self) -> u64 {
        self.inner.total()
    }

    /// Number of distinct n-grams observed.
    pub fn distinct(&self) -> usize {
        self.inner.distinct()
    }

    /// The `k` most frequent n-grams with their counts, most frequent
    /// first; ties break lexicographically for determinism.
    ///
    /// Uses two-stage partial selection: candidates are first selected
    /// on the count alone (a `u64` compare — the lexicographic
    /// tiebreak resolves interned tokens and is ~50x costlier), then
    /// only the surviving `k` entries plus boundary ties pay for the
    /// full comparator. Asking for a top-10 of a large table neither
    /// sorts the whole table nor resolves tokens across it.
    pub fn top_k(&self, k: usize) -> Vec<(Vec<T>, u64)> {
        if k == 0 {
            return Vec::new();
        }
        let vocab = &self.vocab;
        let compare = |a: &(Vec<TokenId>, u64), b: &(Vec<TokenId>, u64)| {
            b.1.cmp(&a.1).then_with(|| {
                a.0.iter()
                    .map(|&id| vocab.resolve(id))
                    .cmp(b.0.iter().map(|&id| vocab.resolve(id)))
            })
        };
        let mut entries: Vec<(Vec<TokenId>, u64)> = self.inner.iter().collect();
        if entries.len() > k {
            entries.select_nth_unstable_by(k - 1, |a, b| b.1.cmp(&a.1));
            let kth = entries[k - 1].1;
            // Every entry counted at least `kth` could still win a
            // boundary tie under the lexicographic order; nothing
            // rarer can.
            entries.retain(|e| e.1 >= kth);
        }
        entries.sort_by(compare);
        entries.truncate(k);
        entries
            .into_iter()
            .map(|(ids, c)| {
                let tokens: Vec<T> = ids.iter().map(|&id| vocab.resolve(id).clone()).collect();
                (tokens, c)
            })
            .collect()
    }

    /// Relative frequency of one n-gram among all observed n-grams.
    pub fn frequency(&self, ngram: &[T]) -> f64 {
        if self.inner.total() == 0 {
            return 0.0;
        }
        self.count(ngram) as f64 / self.inner.total() as f64
    }

    /// Iterates over all `(ngram, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<T>, u64)> + '_ {
        self.inner.iter().map(move |(ids, c)| {
            let tokens: Vec<T> = ids
                .iter()
                .map(|&id| self.vocab.resolve(id).clone())
                .collect();
            (tokens, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unigram_counts_are_token_counts() {
        let mut c = NgramCounter::new(1);
        c.observe(&[1, 1, 2, 3, 1]);
        assert_eq!(c.count(&[1]), 3);
        assert_eq!(c.count(&[2]), 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.distinct(), 3);
    }

    #[test]
    fn short_sequences_contribute_nothing() {
        let mut c = NgramCounter::new(3);
        c.observe(&[1, 2]);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn ngrams_do_not_straddle_sentences() {
        let mut c = NgramCounter::new(2);
        c.observe(&[1, 2]);
        c.observe(&[3, 4]);
        assert_eq!(
            c.count(&[2, 3]),
            0,
            "no bigram across the sentence boundary"
        );
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn top_k_orders_by_count_then_lexicographic() {
        let mut c = NgramCounter::new(2);
        c.observe(&["b", "b", "b", "a", "a", "a"]);
        // bigrams: bb bb ba aa aa
        let top = c.top_k(3);
        assert_eq!(top[0], (vec!["a", "a"], 2));
        assert_eq!(top[1], (vec!["b", "b"], 2));
        assert_eq!(top[2], (vec!["b", "a"], 1));
    }

    #[test]
    fn top_k_handles_k_beyond_table_size() {
        let mut c = NgramCounter::new(2);
        c.observe(&["x", "y", "x"]);
        let top = c.top_k(100);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (vec!["x", "y"], 1), "ties break lexicographically");
        assert_eq!(top[1], (vec!["y", "x"], 1));
        assert!(c.top_k(0).is_empty());
    }

    #[test]
    fn frequency_normalizes_by_total() {
        let mut c = NgramCounter::new(1);
        c.observe(&[7, 7, 8, 9]);
        assert!((c.frequency(&[7]) - 0.5).abs() < 1e-12);
        let empty: NgramCounter<i32> = NgramCounter::new(1);
        assert_eq!(empty.frequency(&[7]), 0.0);
    }

    #[test]
    fn unseen_tokens_count_zero() {
        let mut c = NgramCounter::new(2);
        c.observe(&["a", "b"]);
        assert_eq!(c.count(&["a", "zzz"]), 0);
        assert_eq!(c.count(&["zzz", "zzz"]), 0);
    }

    #[test]
    fn order_five_spills_but_still_counts() {
        let mut c = NgramCounter::new(5);
        c.observe(&[1, 2, 3, 4, 5, 1, 2, 3, 4, 5]);
        assert_eq!(c.count(&[1, 2, 3, 4, 5]), 2);
        assert_eq!(c.count(&[2, 3, 4, 5, 1]), 1);
        assert_eq!(c.total(), 6);
        assert_eq!(c.top_k(1)[0], (vec![1, 2, 3, 4, 5], 2));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_order_is_rejected() {
        let _ = NgramCounter::<u8>::new(0);
    }
}
