//! Tokenization strategies: what counts as a "word" of the command
//! language.
//!
//! The paper's analyses use bare command types ("we considered only
//! commands and not their parameters") and name parameter-awareness as
//! immediate future work. [`Tokenizer`] abstracts the choice so every
//! model in this crate runs on either granularity, and
//! [`ParamTokenizer`] implements the future-work variant: command
//! mnemonic plus bucketed arguments (see
//! [`rad_core::Value::param_token`] for the bucketing rules that keep
//! the vocabulary finite).

use rad_core::{TraceObject, TraceRow};

/// Maps trace objects to language-model tokens.
pub trait Tokenizer {
    /// The token type produced.
    type Token: Clone + Eq + std::hash::Hash + Ord;

    /// Tokenizes one trace object.
    fn token(&self, trace: &TraceObject) -> Self::Token;

    /// Tokenizes one columnar row. The default materializes the row;
    /// implementations override it to read the columns they need
    /// directly (e.g. the dense command-token-id column).
    fn token_row(&self, row: &TraceRow<'_>) -> Self::Token {
        self.token(&row.to_object())
    }

    /// Tokenizes a run (convenience).
    fn tokenize<'a, I>(&self, traces: I) -> Vec<Self::Token>
    where
        I: IntoIterator<Item = &'a TraceObject>,
    {
        traces.into_iter().map(|t| self.token(t)).collect()
    }
}

/// The paper's granularity: the command type only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommandTokenizer;

impl Tokenizer for CommandTokenizer {
    type Token = rad_core::CommandType;

    fn token(&self, trace: &TraceObject) -> Self::Token {
        trace.command_type()
    }

    fn token_row(&self, row: &TraceRow<'_>) -> Self::Token {
        // The batch's dense token-id column *is* this tokenizer's
        // vocabulary; decoding is a bounds-checked array index.
        rad_core::CommandType::from_token_id(row.command_token_id() as usize)
            .expect("token ids in a batch are valid by construction")
    }
}

/// The future-work granularity: mnemonic plus bucketed arguments.
///
/// # Examples
///
/// ```
/// use rad_analysis::token::{ParamTokenizer, Tokenizer};
/// use rad_core::{Command, CommandType, DeviceId, DeviceKind, SimInstant, TraceId, TraceObject,
///                Value};
///
/// let trace = TraceObject::builder(
///     TraceId(0),
///     SimInstant::EPOCH,
///     DeviceId::primary(DeviceKind::Tecan),
///     Command::new(CommandType::TecanSetVelocity, vec![Value::Int(900)]),
/// ).build();
/// assert_eq!(ParamTokenizer.token(&trace), "V(i:900)");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParamTokenizer;

impl Tokenizer for ParamTokenizer {
    type Token = String;

    fn token(&self, trace: &TraceObject) -> Self::Token {
        let args: Vec<String> = trace
            .command()
            .args()
            .iter()
            .map(|v| v.param_token())
            .collect();
        format!("{}({})", trace.command_type().mnemonic(), args.join(","))
    }

    fn token_row(&self, row: &TraceRow<'_>) -> Self::Token {
        let args: Vec<String> = row.args().iter().map(|v| v.param_token()).collect();
        format!("{}({})", row.command_type().mnemonic(), args.join(","))
    }
}

/// Tokenizes every supervised run of a dataset with `tokenizer`,
/// returning `(tokens, is_anomalous)` pairs in run-id order — the
/// direct input of [`crate::PerplexityDetector::evaluate`].
pub fn labelled_runs<T: Tokenizer>(
    dataset: &rad_store::CommandDataset,
    tokenizer: &T,
) -> Vec<(Vec<T::Token>, bool)> {
    // One pass over the run-id column groups every row; the old path
    // rescanned (and materialized) the whole trace log once per run.
    let batch = dataset.batch();
    let timestamps = batch.timestamps_us();
    let mut by_run: std::collections::BTreeMap<rad_core::RunId, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, run) in batch.run_ids().iter().enumerate() {
        if let Some(r) = *run {
            by_run.entry(r).or_default().push(i);
        }
    }
    dataset
        .supervised_runs()
        .iter()
        .map(|meta| {
            let mut rows = by_run.remove(&meta.run_id()).unwrap_or_default();
            rows.sort_by_key(|&i| timestamps[i]);
            (
                rows.into_iter()
                    .map(|i| tokenizer.token_row(&batch.get(i)))
                    .collect(),
                meta.label().is_anomalous(),
            )
        })
        .collect()
}

/// Tokenizes an entire sealed-segment corpus in timestamp order — the
/// training stream for the unsupervised models, fed straight from the
/// columnar store without a [`rad_store::CommandDataset`] in between.
///
/// Segments quarantined during the scan are skipped, not fatal: the
/// corpus is whatever healthy rows survive (the scan's quarantine
/// report is the place to check for losses before training).
///
/// # Errors
///
/// Returns [`rad_core::RadError::Store`] on I/O failure.
pub fn corpus_from_segments<T: Tokenizer>(
    set: &rad_store::SegmentSet,
    tokenizer: &T,
) -> Result<Vec<T::Token>, rad_core::RadError> {
    let batch = set.read_all()?.into_batch();
    let timestamps = batch.timestamps_us();
    let mut order: Vec<usize> = (0..batch.len()).collect();
    order.sort_by_key(|&i| timestamps[i]);
    Ok(order
        .into_iter()
        .map(|i| tokenizer.token_row(&batch.get(i)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{
        Command, CommandType, DeviceId, Label, ProcedureKind, RunId, SimInstant, TraceId, Value,
    };
    use rad_store::CommandDataset;

    fn trace(id: u64, ct: CommandType, args: Vec<Value>) -> TraceObject {
        TraceObject::builder(
            TraceId(id),
            SimInstant::from_micros(id * 1000),
            DeviceId::primary(ct.device()),
            Command::new(ct, args),
        )
        .run(ProcedureKind::JoystickMovements, RunId(0), Label::Benign)
        .build()
    }

    #[test]
    fn command_tokenizer_drops_arguments() {
        let a = trace(0, CommandType::Arm, vec![Value::Int(1)]);
        let b = trace(1, CommandType::Arm, vec![Value::Int(999)]);
        assert_eq!(CommandTokenizer.token(&a), CommandTokenizer.token(&b));
    }

    #[test]
    fn param_tokenizer_distinguishes_argument_buckets() {
        let slow = trace(0, CommandType::Sped, vec![Value::Float(50.0)]);
        let fast = trace(1, CommandType::Sped, vec![Value::Float(450.0)]);
        assert_ne!(ParamTokenizer.token(&slow), ParamTokenizer.token(&fast));
        // But values in the same magnitude bucket share a token.
        let similar = trace(2, CommandType::Sped, vec![Value::Float(60.0)]);
        assert_eq!(ParamTokenizer.token(&slow), ParamTokenizer.token(&similar));
    }

    #[test]
    fn labelled_runs_orders_by_timestamp() {
        let mut ds = CommandDataset::new();
        ds.add_run(
            rad_core::RunMetadata::new(
                RunId(0),
                ProcedureKind::JoystickMovements,
                SimInstant::EPOCH,
            )
            .with_label(Label::Benign),
        );
        ds.push_trace(trace(5, CommandType::Mvng, vec![]));
        ds.push_trace(trace(1, CommandType::Arm, vec![]));
        let runs = labelled_runs(&ds, &CommandTokenizer);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, vec![CommandType::Arm, CommandType::Mvng]);
        assert!(!runs[0].1);
    }

    #[test]
    fn segment_corpus_matches_the_in_memory_token_stream() {
        use rad_store::{SegmentOptions, SegmentSet, SegmentWriter};
        let mut ds = CommandDataset::new();
        // Pushed out of timestamp order on purpose.
        ds.push_trace(trace(5, CommandType::Mvng, vec![]));
        ds.push_trace(trace(1, CommandType::Arm, vec![]));
        ds.push_trace(trace(3, CommandType::Sped, vec![Value::Float(150.0)]));

        let dir =
            std::env::temp_dir().join(format!("rad-analysis-segcorpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Tiny rows_per_segment forces a multi-segment corpus.
        let options = SegmentOptions {
            rows_per_segment: 2,
            ..SegmentOptions::default()
        };
        SegmentWriter::create(&dir, options)
            .unwrap()
            .seal_traces(ds.batch())
            .unwrap();

        let set = SegmentSet::open(&dir).unwrap();
        let tokens = corpus_from_segments(&set, &CommandTokenizer).unwrap();
        assert_eq!(
            tokens,
            vec![CommandType::Arm, CommandType::Sped, CommandType::Mvng],
            "timestamp order, across segment boundaries"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn param_tokens_detect_the_speed_attack_that_command_tokens_miss() {
        // A benign corpus where SPED is always ~150 followed by ARM.
        use crate::{CommandLm, Smoothing};
        let benign_run = |seed: u64| -> Vec<String> {
            (0..10)
                .flat_map(|i| {
                    vec![
                        ParamTokenizer.token(&trace(
                            seed * 100 + i * 2,
                            CommandType::Sped,
                            vec![Value::Float(150.0)],
                        )),
                        ParamTokenizer.token(&trace(
                            seed * 100 + i * 2 + 1,
                            CommandType::Arm,
                            vec![Value::Location {
                                x: 100.0,
                                y: 50.0,
                                z: 200.0,
                            }],
                        )),
                    ]
                })
                .collect()
        };
        let corpus: Vec<Vec<String>> = (0..4).map(benign_run).collect();
        let lm = CommandLm::fit(2, &corpus, Smoothing::default()).unwrap();
        // The speed attack: same command types, inflated argument.
        let attack: Vec<String> = vec![
            ParamTokenizer.token(&trace(0, CommandType::Sped, vec![Value::Float(450.0)])),
            ParamTokenizer.token(&trace(
                1,
                CommandType::Arm,
                vec![Value::Location {
                    x: 100.0,
                    y: 50.0,
                    z: 200.0,
                }],
            )),
            ParamTokenizer.token(&trace(2, CommandType::Sped, vec![Value::Float(450.0)])),
            ParamTokenizer.token(&trace(
                3,
                CommandType::Arm,
                vec![Value::Location {
                    x: 100.0,
                    y: 50.0,
                    z: 200.0,
                }],
            )),
        ];
        let benign_ppl = lm.perplexity(&corpus[0]).unwrap();
        let attack_ppl = lm.perplexity(&attack).unwrap();
        assert!(
            attack_ppl > benign_ppl * 100.0,
            "parameter-aware tokens expose the speed attack: {attack_ppl} vs {benign_ppl}"
        );
    }
}
