//! The streaming detection plane: detectors as sink stages.
//!
//! The batch analyses (perplexity scoring, TF-IDF fingerprinting,
//! power moments/peaks) all consume a *completed* dataset. This module
//! recasts them as [`TraceSink`] / [`PowerSink`] stages so detection
//! runs at wire speed: a tracer (or a sealed-segment replay) tees its
//! stream into a stage, the stage scores incrementally as records
//! arrive, and threshold crossings come out as a typed [`Alert`]
//! stream through a composable [`AlertSink`].
//!
//! ```text
//!   Tracer ──▶ tee ──▶ dataset / WAL
//!              │
//!              └─────▶ StreamingPerplexity ──▶ alerts ──▶ console
//!                                                   └───▶ alerts.csv
//! ```
//!
//! # The streaming == batch contract
//!
//! Every stage here is pinned to its batch counterpart by the golden
//! conformance suite (`tests/streaming_equivalence.rs`): fed the same
//! records in the same order — at *any* chunking — a stage's final
//! scores are **bit-identical** to the batch computation, because each
//! stage reuses the batch kernels' arithmetic incrementally:
//!
//! - [`StreamingPerplexity`] scores each transition through
//!   [`InternedLm::window_log_prob`](crate::lm::InternedLm::window_log_prob)
//!   on the interned-id fast path and accumulates the same
//!   left-to-right log-sum as `log_probability`.
//! - [`StreamingFingerprint`] accumulates exact integer counts and
//!   defers to [`TfIdf::vectorize_counts`], the arithmetic core of
//!   [`TfIdf::transform`].
//! - [`StreamingPowerStats`] runs `rad_power`'s [`StreamingMoments`]
//!   and [`StreamingPeaks`], whose `push` is the exact loop body of
//!   the batch `moments` / `peak_stats` kernels.
//!
//! Memory is bounded by the configured window (plus one stream-state
//! record per open run), never by the stream length.

use std::collections::{BTreeMap, VecDeque};

use rad_core::{
    spec, Alert, AlertSink, CommandType, DeviceKind, ProcedureKind, RadError, RunId, SimInstant,
    TraceBatch, TraceSink,
};
use rad_power::sink::{PowerSink, RecordingMeta};
use rad_power::{block::lane, Moments, PeakStats, PowerBlock, StreamingMoments, StreamingPeaks};

use crate::detector::FittedDetector;
use crate::intern::TokenId;
use crate::jenks::jenks_two_class;
use crate::lm::CommandLm;
use crate::tfidf::{dot, l2_normalize, TfIdf};

/// An adaptive alarm threshold: Jenks two-class clustering re-fit over
/// a ring buffer of the most recent scores.
///
/// The batch protocol fits its threshold once, on a calibration set.
/// A long-lived streaming deployment drifts, so this policy re-fits on
/// every observed score, over at most `capacity` retained scores.
/// Clustering happens in the log domain and the threshold maps back to
/// score units — the same recipe as
/// [`PerplexityDetector::fit`](crate::PerplexityDetector::fit),
/// including its fallbacks: with fewer than two retained scores the
/// threshold is `3 ×` the only score seen (or the seed threshold when
/// none has been).
#[derive(Debug, Clone)]
pub struct WindowedJenks {
    capacity: usize,
    scores: VecDeque<f64>,
    threshold: f64,
}

impl WindowedJenks {
    /// A policy retaining at most `capacity` scores, starting from
    /// `seed` until the first score arrives.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: f64) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        WindowedJenks {
            capacity,
            scores: VecDeque::with_capacity(capacity),
            threshold: seed,
        }
    }

    /// The threshold currently in force.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The retained scores, oldest first.
    pub fn retained(&self) -> impl Iterator<Item = f64> + '_ {
        self.scores.iter().copied()
    }

    /// Pushes one observed score and re-fits. The threshold after this
    /// call equals a from-scratch fit on exactly the retained scores —
    /// the invariant the property suite pins against a full re-fit.
    pub fn observe(&mut self, score: f64) {
        self.scores.push_back(score);
        if self.scores.len() > self.capacity {
            self.scores.pop_front();
        }
        if self.scores.len() < 2 {
            self.threshold = self.scores[0] * 3.0;
            return;
        }
        let logs: Vec<f64> = self.scores.iter().map(|s| s.ln()).collect();
        if let Ok(t) = jenks_two_class(&logs) {
            self.threshold = t.exp();
        }
    }
}

/// How a stage's alarm threshold evolves.
#[derive(Debug, Clone)]
pub enum Threshold {
    /// A fixed threshold (the batch detector's calibrated one). The
    /// conformance suite uses this mode: with a fixed threshold,
    /// streaming alert sets equal batch alert sets exactly.
    Fixed(f64),
    /// [`WindowedJenks`] re-fit on recent scores.
    Adaptive(WindowedJenks),
}

impl Threshold {
    /// The threshold currently in force.
    pub fn current(&self) -> f64 {
        match self {
            Threshold::Fixed(t) => *t,
            Threshold::Adaptive(w) => w.threshold(),
        }
    }

    /// Feeds one observed score. Stages compare first, then observe:
    /// a score never moves the bar it was judged against.
    pub fn observe(&mut self, score: f64) {
        if let Threshold::Adaptive(w) = self {
            w.observe(score);
        }
    }
}

/// A completed run's final score, as recorded by a run-scoped stage.
#[derive(Debug, Clone, PartialEq)]
pub struct RunScore {
    /// The run, when rows carried one (`None` groups ambient traffic).
    pub run_id: Option<RunId>,
    /// The run's procedure, from its first row.
    pub procedure: ProcedureKind,
    /// The final score (perplexity or fingerprint dissimilarity).
    pub score: f64,
    /// Whether the score crossed the threshold in force.
    pub alarmed: bool,
}

/// When [`StreamingPerplexity`] raises alerts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertPolicy {
    /// Score whole runs: accumulate every transition of a run and
    /// judge once at end-of-stream. With the detector's fixed
    /// threshold this reproduces the batch verdicts bit-for-bit — the
    /// conformance mode.
    RunEnd,
    /// Real-time mode: judge the sliding window after every
    /// transition, raising one alert per upward threshold crossing
    /// (edge-triggered, so a long excursion is one alert, not one per
    /// row). The window counts transitions; `0` means unbounded.
    Crossing {
        /// Sliding-window length in transitions (`0` = unbounded).
        window: usize,
    },
}

/// Per-run incremental perplexity state.
#[derive(Debug)]
struct PerplexityStream {
    context: VecDeque<TokenId>,
    window_log_probs: VecDeque<f64>,
    window_starts: VecDeque<SimInstant>,
    log_sum: f64,
    transitions: u64,
    procedure: ProcedureKind,
    first_ts: SimInstant,
    last_ts: SimInstant,
    device: DeviceKind,
    alarming: bool,
}

impl PerplexityStream {
    fn new(procedure: ProcedureKind, ts: SimInstant, device: DeviceKind) -> Self {
        PerplexityStream {
            context: VecDeque::new(),
            window_log_probs: VecDeque::new(),
            window_starts: VecDeque::new(),
            log_sum: 0.0,
            transitions: 0,
            procedure,
            first_ts: ts,
            last_ts: ts,
            device,
            alarming: false,
        }
    }

    /// Current windowed perplexity (`None` before the first scored
    /// transition). `exp(-Σ log P / count)` — for the unbounded window
    /// this is the batch perplexity of everything seen, bit for bit.
    fn perplexity(&self) -> Option<f64> {
        if self.transitions == 0 {
            return None;
        }
        Some((-self.log_sum / self.transitions as f64).exp())
    }
}

/// Incremental n-gram perplexity as a [`TraceSink`] stage.
///
/// Rows are grouped by run id (rows without one share an ambient
/// stream) and scored on the interned-id fast path: the stage maps
/// each row's dense command-token id straight to the language model's
/// vocabulary id through a precomputed table — no hashing, no
/// tokenization, no allocation per row.
///
/// # Examples
///
/// ```
/// use rad_analysis::streaming::{AlertPolicy, StreamingPerplexity};
/// use rad_analysis::PerplexityDetector;
/// use rad_core::CommandType;
///
/// let runs = vec![
///     vec![CommandType::Arm, CommandType::Mvng, CommandType::Arm, CommandType::Mvng],
///     vec![CommandType::Arm, CommandType::Mvng, CommandType::Arm],
/// ];
/// let det = PerplexityDetector::new(2).fit(&runs, &runs)?;
/// let stage = StreamingPerplexity::new(&det, AlertPolicy::RunEnd, Vec::new());
/// assert_eq!(stage.threshold().current(), det.threshold());
/// # Ok::<(), rad_core::RadError>(())
/// ```
#[derive(Debug)]
pub struct StreamingPerplexity<A> {
    lm: CommandLm<CommandType>,
    /// Dense command-token id → LM vocabulary id (unseen commands map
    /// to the pad id, exactly as batch scoring pads them).
    token_map: Vec<TokenId>,
    order: usize,
    policy: AlertPolicy,
    threshold: Threshold,
    sink: A,
    streams: BTreeMap<Option<RunId>, PerplexityStream>,
    completed: Vec<RunScore>,
}

impl<A: AlertSink> StreamingPerplexity<A> {
    /// Detector id stamped on alerts raised by this stage.
    pub const DETECTOR: &'static str = "perplexity";

    /// A stage scoring through `detector`'s fitted model, with its
    /// calibrated threshold as a [`Threshold::Fixed`] policy.
    pub fn new(detector: &FittedDetector<CommandType>, policy: AlertPolicy, sink: A) -> Self {
        let lm = detector.lm().clone();
        let token_map = CommandType::all()
            .iter()
            .map(|ct| lm.vocab().get_or_pad(ct))
            .collect();
        StreamingPerplexity {
            order: lm.order(),
            token_map,
            lm,
            policy,
            threshold: Threshold::Fixed(detector.threshold()),
            sink,
            streams: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// Replaces the fixed threshold with a [`WindowedJenks`] policy
    /// (seeded from the current threshold) retaining `capacity` recent
    /// scores.
    #[must_use]
    pub fn with_adaptive_threshold(mut self, capacity: usize) -> Self {
        self.threshold =
            Threshold::Adaptive(WindowedJenks::new(capacity, self.threshold.current()));
        self
    }

    /// Replaces the calibrated threshold with a deployment-tuned fixed
    /// bar. The Jenks calibration splits the *benign score clusters*,
    /// so it can land inside the benign range (useful for run-end
    /// triage, noisy as a wire alarm); a live `Crossing` deployment
    /// typically raises the bar above its observed ambient baseline.
    #[must_use]
    pub fn with_fixed_threshold(mut self, threshold: f64) -> Self {
        self.threshold = Threshold::Fixed(threshold);
        self
    }

    /// The threshold policy in force.
    pub fn threshold(&self) -> &Threshold {
        &self.threshold
    }

    /// Final scores of runs closed by [`TraceSink::finish`], in run-id
    /// order.
    pub fn completed_runs(&self) -> &[RunScore] {
        &self.completed
    }

    /// Bytes of resident per-stream scoring state (contexts and window
    /// rings) across all open runs — the quantity the streaming
    /// contract bounds by the configured window and the number of open
    /// runs, never by how many rows have flowed through. The
    /// `streaming_report` bench samples this to evidence the bound.
    pub fn resident_state_bytes(&self) -> usize {
        use std::mem::size_of;
        self.streams
            .values()
            .map(|s| {
                size_of::<PerplexityStream>()
                    + s.context.capacity() * size_of::<TokenId>()
                    + s.window_log_probs.capacity() * size_of::<f64>()
                    + s.window_starts.capacity() * size_of::<SimInstant>()
            })
            .sum()
    }

    /// Consumes the stage, yielding the alert sink.
    pub fn into_sink(self) -> A {
        self.sink
    }

    fn bounded_window(&self) -> Option<usize> {
        match self.policy {
            AlertPolicy::Crossing { window } if window > 0 => Some(window),
            _ => None,
        }
    }

    fn observe_row(
        &mut self,
        run_id: Option<RunId>,
        procedure: ProcedureKind,
        device: DeviceKind,
        ts: SimInstant,
        token_id: u16,
    ) -> Result<(), RadError> {
        let bounded = self.bounded_window();
        let stream = self
            .streams
            .entry(run_id)
            .or_insert_with(|| PerplexityStream::new(procedure, ts, device));
        stream.last_ts = ts;
        stream.device = device;
        stream.context.push_back(self.token_map[token_id as usize]);
        if stream.context.len() > self.order {
            stream.context.pop_front();
        }
        if stream.context.len() < self.order {
            return Ok(());
        }
        let logp = self
            .lm
            .interned()
            .window_log_prob(stream.context.make_contiguous());
        stream.log_sum += logp;
        stream.transitions += 1;
        if let Some(window) = bounded {
            stream.window_log_probs.push_back(logp);
            stream.window_starts.push_back(ts);
            if stream.window_log_probs.len() > window {
                stream.log_sum -= stream
                    .window_log_probs
                    .pop_front()
                    .expect("len > window >= 1");
                stream.window_starts.pop_front();
                stream.transitions -= 1;
            }
        }
        if let AlertPolicy::Crossing { .. } = self.policy {
            let ppl = stream.perplexity().expect("transition just scored");
            let threshold = self.threshold.current();
            if ppl > threshold {
                if !stream.alarming {
                    stream.alarming = true;
                    let window_start = stream
                        .window_starts
                        .front()
                        .copied()
                        .unwrap_or(stream.first_ts);
                    self.sink.raise(&Alert {
                        detector: Self::DETECTOR.into(),
                        device,
                        run_id,
                        window_start,
                        window_end: ts,
                        score: ppl,
                        threshold,
                    })?;
                }
            } else {
                stream.alarming = false;
            }
            self.threshold.observe(ppl);
        }
        Ok(())
    }
}

impl<A: AlertSink> TraceSink for StreamingPerplexity<A> {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        for row in batch.iter() {
            self.observe_row(
                row.run_id(),
                row.procedure(),
                row.device().kind(),
                row.timestamp(),
                row.command_token_id(),
            )?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), RadError> {
        if self.policy == AlertPolicy::RunEnd {
            for (run_id, stream) in std::mem::take(&mut self.streams) {
                let Some(score) = stream.perplexity() else {
                    continue; // shorter than the order: no transition
                };
                let threshold = self.threshold.current();
                let alarmed = score > threshold;
                if alarmed {
                    self.sink.raise(&Alert {
                        detector: Self::DETECTOR.into(),
                        device: stream.device,
                        run_id,
                        window_start: stream.first_ts,
                        window_end: stream.last_ts,
                        score,
                        threshold,
                    })?;
                }
                self.threshold.observe(score);
                self.completed.push(RunScore {
                    run_id,
                    procedure: stream.procedure,
                    score,
                    alarmed,
                });
            }
        }
        self.sink.finish()
    }
}

/// A fitted TF-IDF model plus one unit-length centroid fingerprint per
/// procedure — the reference a streaming run is compared against.
#[derive(Debug, Clone)]
pub struct ProcedureFingerprints<T> {
    model: TfIdf<T>,
    centroids: BTreeMap<ProcedureKind, Vec<f64>>,
}

impl<T: Clone + Eq + std::hash::Hash + Ord> ProcedureFingerprints<T> {
    /// Fits the TF-IDF model on every labelled run and builds each
    /// procedure's centroid (the L2-normalized mean of its runs'
    /// fitted vectors).
    ///
    /// # Errors
    ///
    /// Propagates [`TfIdf::fit`] errors (empty corpus or empty run).
    pub fn fit(runs: &[(ProcedureKind, Vec<T>)]) -> Result<Self, RadError> {
        let docs: Vec<Vec<T>> = runs.iter().map(|(_, d)| d.clone()).collect();
        let model = TfIdf::fit(&docs)?;
        let mut sums: BTreeMap<ProcedureKind, (Vec<f64>, usize)> = BTreeMap::new();
        for ((kind, _), vector) in runs.iter().zip(model.vectors()) {
            let entry = sums
                .entry(*kind)
                .or_insert_with(|| (vec![0.0; vector.len()], 0));
            for (s, v) in entry.0.iter_mut().zip(vector) {
                *s += v;
            }
            entry.1 += 1;
        }
        let centroids = sums
            .into_iter()
            .map(|(kind, (mut sum, _count))| {
                // The mean's direction is what cosine compares, so
                // normalizing the sum directly is equivalent.
                l2_normalize(&mut sum);
                (kind, sum)
            })
            .collect();
        Ok(ProcedureFingerprints { model, centroids })
    }

    /// The underlying TF-IDF model.
    pub fn model(&self) -> &TfIdf<T> {
        &self.model
    }

    /// Cosine dissimilarity (`1 - cos`) between a unit-length
    /// fingerprint `vector` and `procedure`'s centroid; `None` for a
    /// procedure with no training runs.
    pub fn dissimilarity(&self, procedure: ProcedureKind, vector: &[f64]) -> Option<f64> {
        self.centroids.get(&procedure).map(|c| 1.0 - dot(c, vector))
    }

    /// Batch-scores a complete run: transform, then centroid
    /// dissimilarity. The streaming stage reproduces this bit-for-bit.
    pub fn score_run(&self, procedure: ProcedureKind, run: &[T]) -> Option<f64> {
        self.dissimilarity(procedure, &self.model.transform(run))
    }
}

/// Per-run fingerprint accumulation state.
#[derive(Debug)]
struct FingerprintStream {
    counts: Vec<u64>,
    total: u64,
    procedure: ProcedureKind,
    first_ts: SimInstant,
    last_ts: SimInstant,
    device: DeviceKind,
}

/// Online TF-IDF procedure fingerprinting as a [`TraceSink`] stage.
///
/// Each run accumulates exact integer command counts (memory: one
/// `u64` per vocabulary entry per open run). At end-of-stream every
/// run's fingerprint is compared against its procedure's centroid;
/// dissimilarity above the threshold raises an [`Alert`] — a run that
/// claims to be procedure P but doesn't *look* like P.
#[derive(Debug)]
pub struct StreamingFingerprint<A> {
    fingerprints: ProcedureFingerprints<CommandType>,
    /// Dense command-token id → vocabulary index (`usize::MAX` = OOV).
    index_map: Vec<usize>,
    threshold: f64,
    sink: A,
    streams: BTreeMap<Option<RunId>, FingerprintStream>,
    completed: Vec<RunScore>,
}

impl<A: AlertSink> StreamingFingerprint<A> {
    /// Detector id stamped on alerts raised by this stage.
    pub const DETECTOR: &'static str = "tfidf";

    /// A stage comparing each run against `fingerprints`, alerting
    /// when dissimilarity exceeds `threshold`.
    pub fn new(fingerprints: ProcedureFingerprints<CommandType>, threshold: f64, sink: A) -> Self {
        let mut index_map = vec![usize::MAX; CommandType::all().len()];
        for (i, token) in fingerprints.model().vocabulary().iter().enumerate() {
            index_map[token.token_id()] = i;
        }
        StreamingFingerprint {
            fingerprints,
            index_map,
            threshold,
            sink,
            streams: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// Final scores of runs closed by [`TraceSink::finish`], in run-id
    /// order (runs of unknown procedures are skipped).
    pub fn completed_runs(&self) -> &[RunScore] {
        &self.completed
    }

    /// Consumes the stage, yielding the alert sink.
    pub fn into_sink(self) -> A {
        self.sink
    }
}

impl<A: AlertSink> TraceSink for StreamingFingerprint<A> {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        let vocab_len = self.fingerprints.model().vocabulary().len();
        for row in batch.iter() {
            let stream = self
                .streams
                .entry(row.run_id())
                .or_insert_with(|| FingerprintStream {
                    counts: vec![0; vocab_len],
                    total: 0,
                    procedure: row.procedure(),
                    first_ts: row.timestamp(),
                    last_ts: row.timestamp(),
                    device: row.device().kind(),
                });
            let index = self.index_map[row.command_token_id() as usize];
            if index != usize::MAX {
                stream.counts[index] += 1;
            }
            // OOV commands still count toward run length, exactly as
            // `TfIdf::transform` divides by the full slice length.
            stream.total += 1;
            stream.last_ts = row.timestamp();
            stream.device = row.device().kind();
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), RadError> {
        for (run_id, stream) in std::mem::take(&mut self.streams) {
            let vector = self
                .fingerprints
                .model()
                .vectorize_counts(&stream.counts, stream.total);
            let Some(score) = self.fingerprints.dissimilarity(stream.procedure, &vector) else {
                continue; // no centroid for this procedure
            };
            let alarmed = score > self.threshold;
            if alarmed {
                self.sink.raise(&Alert {
                    detector: Self::DETECTOR.into(),
                    device: stream.device,
                    run_id,
                    window_start: stream.first_ts,
                    window_end: stream.last_ts,
                    score,
                    threshold: self.threshold,
                })?;
            }
            self.completed.push(RunScore {
                run_id,
                procedure: stream.procedure,
                score,
                alarmed,
            });
        }
        self.sink.finish()
    }
}

/// One closed power recording's streaming statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingStats {
    /// The recording's identity, when a boundary marker announced one.
    pub meta: Option<RecordingMeta>,
    /// Welford moments of the monitored lane — bit-identical to the
    /// batch `moments` kernel over the whole recording.
    pub moments: Moments,
    /// Peak statistics of the monitored lane — bit-identical to the
    /// batch `peak_stats` kernel over the whole recording.
    pub peaks: PeakStats,
    /// Whether the recording's RMS crossed the alarm threshold.
    pub alarmed: bool,
}

/// Streaming Welford + peak detection as a [`PowerSink`] stage.
///
/// The stage watches one lane of the power stream (by default the
/// robot's total supply current) per recording: each accepted chunk
/// feeds [`StreamingMoments`] and [`StreamingPeaks`], and a recording
/// boundary (or end-of-stream) closes the statistics and raises an
/// [`Alert`] when the recording's RMS exceeds the threshold. State per
/// open recording is a dozen words, whatever the recording length.
#[derive(Debug)]
pub struct StreamingPowerStats<A> {
    lane: usize,
    min_prominence: f64,
    rms_threshold: f64,
    sink: A,
    meta: Option<RecordingMeta>,
    moments: StreamingMoments,
    peaks: StreamingPeaks,
    first_ts: f64,
    last_ts: f64,
    recordings: Vec<RecordingStats>,
}

impl<A: AlertSink> StreamingPowerStats<A> {
    /// Detector id stamped on alerts raised by this stage.
    pub const DETECTOR: &'static str = "power.rms";

    /// A stage over lane `lane` with the given extremum prominence
    /// filter and RMS alarm threshold.
    pub fn new(lane: usize, min_prominence: f64, rms_threshold: f64, sink: A) -> Self {
        StreamingPowerStats {
            lane,
            min_prominence,
            rms_threshold,
            sink,
            meta: None,
            moments: StreamingMoments::new(),
            peaks: StreamingPeaks::new(min_prominence),
            first_ts: 0.0,
            last_ts: 0.0,
            recordings: Vec::new(),
        }
    }

    /// The conventional configuration: total robot supply current.
    pub fn robot_current(min_prominence: f64, rms_threshold: f64, sink: A) -> Self {
        Self::new(lane::ROBOT_CURRENT, min_prominence, rms_threshold, sink)
    }

    /// Statistics of every recording closed so far.
    pub fn recordings(&self) -> &[RecordingStats] {
        &self.recordings
    }

    /// Consumes the stage, yielding the alert sink.
    pub fn into_sink(self) -> A {
        self.sink
    }

    fn close_recording(&mut self) -> Result<(), RadError> {
        if self.meta.is_none() && self.moments.is_empty() {
            return Ok(()); // nothing open
        }
        let meta = self.meta.take();
        let moments = std::mem::take(&mut self.moments).finish();
        let peaks =
            std::mem::replace(&mut self.peaks, StreamingPeaks::new(self.min_prominence)).finish();
        let alarmed = peaks.rms > self.rms_threshold;
        if alarmed {
            self.sink.raise(&Alert {
                detector: Self::DETECTOR.into(),
                device: DeviceKind::Ur3e,
                run_id: meta.as_ref().map(|m| m.run_id),
                // Power timestamps are recording-relative seconds.
                window_start: SimInstant::from_micros(secs_to_micros(self.first_ts)),
                window_end: SimInstant::from_micros(secs_to_micros(self.last_ts)),
                score: peaks.rms,
                threshold: self.rms_threshold,
            })?;
        }
        self.recordings.push(RecordingStats {
            meta,
            moments,
            peaks,
            alarmed,
        });
        self.first_ts = 0.0;
        self.last_ts = 0.0;
        Ok(())
    }
}

impl<A: AlertSink> PowerSink for StreamingPowerStats<A> {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
        if block.is_empty() {
            return Ok(());
        }
        let values = block.lane(self.lane);
        let timestamps = block.lane(lane::TIMESTAMP);
        if self.moments.is_empty() {
            self.first_ts = timestamps[0];
        }
        self.last_ts = timestamps[timestamps.len() - 1];
        self.moments.extend(values);
        self.peaks.extend(values);
        Ok(())
    }

    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
        self.close_recording()?;
        self.meta = Some(meta.clone());
        Ok(())
    }

    fn finish(&mut self) -> Result<(), RadError> {
        self.close_recording()?;
        self.sink.finish()
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    (secs * 1_000_000.0).round().max(0.0) as u64
}

/// The declarative form of a [`StreamingPerplexity`] stage — the
/// `detect.perplexity` section of a scenario document:
///
/// ```json
/// {
///   "order": 3,
///   "policy": {"crossing": {"window": 64}},
///   "threshold": {"fixed": 5.0}
/// }
/// ```
///
/// `policy` is `"run_end"` (the default) or
/// `{"crossing": {"window": N}}`; `threshold` is `"calibrated"` (the
/// default — the fitted detector's own Jenks threshold),
/// `{"fixed": X}`, or `{"adaptive": {"capacity": N}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerplexitySpec {
    /// N-gram order the detector is fitted with.
    pub order: usize,
    /// When the stage raises alerts.
    pub policy: AlertPolicy,
    /// Threshold policy override.
    pub threshold: ThresholdSpec,
}

/// The `threshold` field of a [`PerplexitySpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdSpec {
    /// Keep the fitted detector's calibrated Jenks threshold.
    Calibrated,
    /// Replace it with a deployment-tuned fixed bar.
    Fixed(f64),
    /// Replace it with a [`WindowedJenks`] adaptive policy retaining
    /// this many recent scores.
    Adaptive(usize),
}

impl PerplexitySpec {
    const FIELDS: &'static [&'static str] = &["order", "policy", "threshold"];

    /// Builds the stage this spec describes over a fitted detector and
    /// alert sink. The detector must have been fitted with
    /// [`PerplexitySpec::order`] for the spec to be faithful; this is
    /// not checked here because [`FittedDetector`] does not expose its
    /// order — the scenario runner owns that invariant.
    pub fn build<A: AlertSink>(
        &self,
        detector: &FittedDetector<CommandType>,
        sink: A,
    ) -> StreamingPerplexity<A> {
        let stage = StreamingPerplexity::new(detector, self.policy, sink);
        match self.threshold {
            ThresholdSpec::Calibrated => stage,
            ThresholdSpec::Fixed(bar) => stage.with_fixed_threshold(bar),
            ThresholdSpec::Adaptive(capacity) => stage.with_adaptive_threshold(capacity),
        }
    }

    /// Parses the `perplexity` section of a scenario document. `ctx`
    /// is the dotted path of `value` for error messages.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on unknown fields, ill-typed values, a zero
    /// `order`, or a malformed policy/threshold variant.
    pub fn from_json(value: &serde_json::Value, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, Self::FIELDS)?;
        let order = spec::req_u64(map, ctx, "order")?;
        if order == 0 {
            return Err(RadError::spec(
                spec::path(ctx, "order"),
                "must be at least 1",
            ));
        }
        let order = usize::try_from(order)
            .map_err(|_| RadError::spec(spec::path(ctx, "order"), "exceeds usize range"))?;
        let policy = match map.get("policy") {
            None | Some(serde_json::Value::Null) => AlertPolicy::RunEnd,
            Some(v) => Self::policy_from_json(v, &spec::path(ctx, "policy"))?,
        };
        let threshold = match map.get("threshold") {
            None | Some(serde_json::Value::Null) => ThresholdSpec::Calibrated,
            Some(v) => Self::threshold_from_json(v, &spec::path(ctx, "threshold"))?,
        };
        Ok(PerplexitySpec {
            order,
            policy,
            threshold,
        })
    }

    fn policy_from_json(value: &serde_json::Value, ctx: &str) -> Result<AlertPolicy, RadError> {
        if let Some(name) = value.as_str() {
            return match name {
                "run_end" => Ok(AlertPolicy::RunEnd),
                other => Err(RadError::spec(
                    ctx,
                    format!("unknown policy `{other}` (accepted: run_end, {{\"crossing\": ...}})"),
                )),
            };
        }
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, &["crossing"])?;
        let crossing = spec::req(map, ctx, "crossing")?;
        let cctx = spec::path(ctx, "crossing");
        let cmap = spec::obj(crossing, &cctx)?;
        spec::known_fields(cmap, &cctx, &["window"])?;
        let window = spec::opt_u64(cmap, &cctx, "window")?.unwrap_or(0);
        let window = usize::try_from(window)
            .map_err(|_| RadError::spec(spec::path(&cctx, "window"), "exceeds usize range"))?;
        Ok(AlertPolicy::Crossing { window })
    }

    fn threshold_from_json(
        value: &serde_json::Value,
        ctx: &str,
    ) -> Result<ThresholdSpec, RadError> {
        if let Some(name) = value.as_str() {
            return match name {
                "calibrated" => Ok(ThresholdSpec::Calibrated),
                other => Err(RadError::spec(
                    ctx,
                    format!(
                        "unknown threshold `{other}` (accepted: calibrated, \
                         {{\"fixed\": ...}}, {{\"adaptive\": ...}})"
                    ),
                )),
            };
        }
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, &["fixed", "adaptive"])?;
        let fixed = map.get("fixed").filter(|v| !v.is_null());
        let adaptive = map.get("adaptive").filter(|v| !v.is_null());
        match (fixed, adaptive) {
            (Some(_), Some(_)) => Err(RadError::spec(
                ctx,
                "`fixed` and `adaptive` are mutually exclusive",
            )),
            (None, None) => Err(RadError::spec(
                ctx,
                "one of `fixed` or `adaptive` is required",
            )),
            (Some(v), None) => {
                let at = spec::path(ctx, "fixed");
                let bar = v
                    .as_f64()
                    .ok_or_else(|| RadError::spec(&at, format!("expected a number, got {v}")))?;
                if !bar.is_finite() || bar < 0.0 {
                    return Err(RadError::spec(
                        at,
                        format!("threshold {bar} must be finite and non-negative"),
                    ));
                }
                Ok(ThresholdSpec::Fixed(bar))
            }
            (None, Some(v)) => {
                let actx = spec::path(ctx, "adaptive");
                let amap = spec::obj(v, &actx)?;
                spec::known_fields(amap, &actx, &["capacity"])?;
                let capacity = spec::req_u64(amap, &actx, "capacity")?;
                if capacity == 0 {
                    return Err(RadError::spec(
                        spec::path(&actx, "capacity"),
                        "must be at least 1",
                    ));
                }
                let capacity = usize::try_from(capacity).map_err(|_| {
                    RadError::spec(spec::path(&actx, "capacity"), "exceeds usize range")
                })?;
                Ok(ThresholdSpec::Adaptive(capacity))
            }
        }
    }

    /// Serializes the spec back to its JSON form, every field explicit.
    pub fn to_json(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        map.insert("order".into(), serde_json::Value::from(self.order as u64));
        let policy = match self.policy {
            AlertPolicy::RunEnd => serde_json::Value::from("run_end"),
            AlertPolicy::Crossing { window } => {
                let mut cmap = serde_json::Map::new();
                cmap.insert("window".into(), serde_json::Value::from(window as u64));
                let mut pmap = serde_json::Map::new();
                pmap.insert("crossing".into(), serde_json::Value::Object(cmap));
                serde_json::Value::Object(pmap)
            }
        };
        map.insert("policy".into(), policy);
        let threshold = match self.threshold {
            ThresholdSpec::Calibrated => serde_json::Value::from("calibrated"),
            ThresholdSpec::Fixed(bar) => {
                let mut tmap = serde_json::Map::new();
                tmap.insert("fixed".into(), serde_json::Value::from(bar));
                serde_json::Value::Object(tmap)
            }
            ThresholdSpec::Adaptive(capacity) => {
                let mut amap = serde_json::Map::new();
                amap.insert("capacity".into(), serde_json::Value::from(capacity as u64));
                let mut tmap = serde_json::Map::new();
                tmap.insert("adaptive".into(), serde_json::Value::Object(amap));
                serde_json::Value::Object(tmap)
            }
        };
        map.insert("threshold".into(), threshold);
        serde_json::Value::Object(map)
    }
}

/// The declarative form of a [`StreamingPowerStats`] stage — the
/// `detect.power` section of a scenario document:
///
/// ```json
/// {"lane": "robot_current", "min_prominence": 0.05, "rms_threshold": 0.6}
/// ```
///
/// `lane` is a snake-case name from [`lane::NAMES`] or a raw index;
/// absent it defaults to `robot_current`.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerStatsSpec {
    /// Monitored lane index.
    pub lane: usize,
    /// Extremum prominence filter.
    pub min_prominence: f64,
    /// RMS alarm threshold.
    pub rms_threshold: f64,
}

impl PowerStatsSpec {
    const FIELDS: &'static [&'static str] = &["lane", "min_prominence", "rms_threshold"];

    /// Builds the stage this spec describes over an alert sink.
    pub fn build<A: AlertSink>(&self, sink: A) -> StreamingPowerStats<A> {
        StreamingPowerStats::new(self.lane, self.min_prominence, self.rms_threshold, sink)
    }

    /// Parses the `power` section of a scenario document. `ctx` is the
    /// dotted path of `value` for error messages.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on unknown fields, an unknown lane name, an
    /// out-of-range lane index, or non-finite thresholds.
    pub fn from_json(value: &serde_json::Value, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, Self::FIELDS)?;
        let lane_at = spec::path(ctx, "lane");
        let lane = match map.get("lane") {
            None | Some(serde_json::Value::Null) => lane::ROBOT_CURRENT,
            Some(v) => {
                if let Some(name) = v.as_str() {
                    lane::by_name(name).ok_or_else(|| {
                        RadError::spec(&lane_at, format!("unknown lane name `{name}`"))
                    })?
                } else {
                    let idx = v.as_u64().ok_or_else(|| {
                        RadError::spec(
                            &lane_at,
                            format!("expected a lane name or non-negative index, got {v}"),
                        )
                    })?;
                    let idx = usize::try_from(idx)
                        .map_err(|_| RadError::spec(&lane_at, "exceeds usize range"))?;
                    if idx >= rad_power::PowerSample::FIELD_COUNT {
                        return Err(RadError::spec(
                            &lane_at,
                            format!(
                                "lane {idx} out of range (layout has {} lanes)",
                                rad_power::PowerSample::FIELD_COUNT
                            ),
                        ));
                    }
                    idx
                }
            }
        };
        let min_prominence = spec::opt_f64(map, ctx, "min_prominence")?.unwrap_or(0.0);
        let rms_threshold = spec::opt_f64(map, ctx, "rms_threshold")?.unwrap_or(f64::INFINITY);
        if !min_prominence.is_finite() || min_prominence < 0.0 {
            return Err(RadError::spec(
                spec::path(ctx, "min_prominence"),
                format!("{min_prominence} must be finite and non-negative"),
            ));
        }
        if rms_threshold.is_nan() {
            return Err(RadError::spec(
                spec::path(ctx, "rms_threshold"),
                "must not be NaN",
            ));
        }
        Ok(PowerStatsSpec {
            lane,
            min_prominence,
            rms_threshold,
        })
    }

    /// Serializes the spec back to its JSON form. The lane serializes
    /// as its name when one exists, else as its raw index.
    pub fn to_json(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        let lane_value = lane::NAMES
            .iter()
            .find(|&&(_, idx)| idx == self.lane)
            .map(|&(name, _)| serde_json::Value::from(name))
            .unwrap_or_else(|| serde_json::Value::from(self.lane as u64));
        map.insert("lane".into(), lane_value);
        map.insert(
            "min_prominence".into(),
            serde_json::Value::from(self.min_prominence),
        );
        map.insert(
            "rms_threshold".into(),
            serde_json::Value::from(self.rms_threshold),
        );
        serde_json::Value::Object(map)
    }
}
