//! N-gram language models and perplexity (§V-B, RQ2).
//!
//! Given training sequences, the model estimates
//! `P(c_i | c_{i-n+1..i-1})` from n-gram and context counts, and scores
//! a new sequence by perplexity — the geometric-mean inverse
//! probability per transition. Lower perplexity means more typical;
//! anomalies score high.
//!
//! The paper leaves smoothing implicit (its corpus covers every n-gram
//! it scores); a reproduction cannot, so [`Smoothing`] makes the choice
//! explicit and the ablation bench compares the variants.
//!
//! Two layers: [`InternedLm`] works on dense [`TokenId`] sequences and
//! packed keys (no per-call allocation for orders ≤
//! [`crate::intern::PACKED_ORDER`]); [`CommandLm`] wraps it with a
//! [`Vocab`] so callers keep the token-typed API. Scoring through the
//! wrapper reuses a thread-local id buffer, so it is allocation-free
//! after warmup.

use std::cell::RefCell;
use std::hash::Hash;

use rad_core::RadError;

use crate::intern::{FxHashMap, Key, TokenId, Vocab};

thread_local! {
    /// Reusable id buffer for the token-typed scoring paths. Per
    /// thread so `CommandLm` scoring stays `&self` and can run from
    /// parallel cross-validation workers without locking.
    static SCORE_SCRATCH: RefCell<Vec<TokenId>> = const { RefCell::new(Vec::new()) };
}

/// How unseen n-grams are assigned probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoothing {
    /// Unseen transitions get a fixed floor probability. Simple and
    /// aggressive: one unseen transition dominates a short sequence's
    /// score, which is exactly the behaviour an anomaly detector wants.
    EpsilonFloor(f64),
    /// Add-k (Laplace for k = 1) smoothing over the observed
    /// vocabulary.
    AddK(f64),
}

impl Default for Smoothing {
    fn default() -> Self {
        Smoothing::EpsilonFloor(1e-6)
    }
}

/// An n-gram language model over already-interned token ids.
///
/// This is the engine behind [`CommandLm`]. Use it directly when the
/// corpus is interned once up front — e.g. cross-validation, where
/// each fold trains on a subset of the same interned corpus and
/// re-tokenizing per fold would dominate the run time.
#[derive(Debug, Clone)]
pub struct InternedLm {
    n: usize,
    ngram_counts: FxHashMap<Key, u64>,
    context_counts: FxHashMap<Key, u64>,
    vocabulary_size: usize,
    smoothing: Smoothing,
    /// Scoring fast path for [`Smoothing::EpsilonFloor`]: `ln(P)` of
    /// every observed n-gram, precomputed at fit time from the same
    /// `joint / ctx` division `probability` performs — so the sum in
    /// `log_probability` is bit-identical, at one table probe per
    /// window instead of two probes plus an `ln` call. `None` under
    /// add-k smoothing (whose unseen-n-gram probability depends on the
    /// context count, so misses cannot share one constant).
    log_probs: Option<FxHashMap<Key, f64>>,
    /// `ln(eps)`: the table-miss value for the fast path.
    ln_floor: f64,
}

impl InternedLm {
    /// Fits an order-`n` model on interned `training` sequences.
    ///
    /// The vocabulary size used by add-k smoothing is the number of
    /// distinct ids in `training` (including sequences too short to
    /// contribute n-grams), matching the token-typed behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `n < 2`, the training set is
    /// empty, or no training sequence is at least `n` tokens long.
    pub fn fit(n: usize, training: &[&[TokenId]], smoothing: Smoothing) -> Result<Self, RadError> {
        if n < 2 {
            return Err(RadError::Analysis(
                "language model order must be >= 2".into(),
            ));
        }
        if training.is_empty() {
            return Err(RadError::Analysis("empty training set".into()));
        }
        let mut ngram_counts: FxHashMap<Key, u64> = FxHashMap::default();
        let mut seen = Vec::new();
        let mut vocabulary_size = 0usize;
        let mut usable = false;
        for seq in training {
            for id in *seq {
                let idx = id.index();
                if idx >= seen.len() {
                    seen.resize(idx + 1, false);
                }
                if !seen[idx] {
                    seen[idx] = true;
                    vocabulary_size += 1;
                }
            }
            if seq.len() < n {
                continue;
            }
            usable = true;
            for window in seq.windows(n) {
                *ngram_counts.entry(Key::from_ids(window)).or_insert(0) += 1;
            }
        }
        if !usable {
            return Err(RadError::Analysis(format!(
                "no training sequence has at least {n} tokens"
            )));
        }
        // A context's count is the sum of its continuations' counts,
        // so it can be folded out of the (much smaller) distinct-n-gram
        // table instead of costing a second map probe per window.
        let mut context_counts: FxHashMap<Key, u64> = FxHashMap::default();
        for (key, &joint) in &ngram_counts {
            *context_counts.entry(key.prefix(n - 1)).or_insert(0) += joint;
        }
        let (log_probs, ln_floor) = match smoothing {
            Smoothing::EpsilonFloor(eps) => {
                let mut table = FxHashMap::default();
                table.reserve(ngram_counts.len());
                for (key, &joint) in &ngram_counts {
                    // Every stored n-gram contributed to its context's
                    // count, so the context lookup cannot miss.
                    let ctx = context_counts[&key.prefix(n - 1)];
                    table.insert(key.clone(), (joint as f64 / ctx as f64).ln());
                }
                (Some(table), eps.ln())
            }
            Smoothing::AddK(_) => (None, 0.0),
        };
        Ok(InternedLm {
            n,
            ngram_counts,
            context_counts,
            vocabulary_size,
            smoothing,
            log_probs,
            ln_floor,
        })
    }

    /// Model order (2 = bigram).
    pub fn order(&self) -> usize {
        self.n
    }

    /// Size of the training vocabulary.
    pub fn vocabulary_size(&self) -> usize {
        self.vocabulary_size
    }

    /// Number of times `context` was observed in training (zero for
    /// unseen contexts).
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != order - 1`.
    pub fn context_count(&self, context: &[TokenId]) -> u64 {
        assert_eq!(
            context.len(),
            self.n - 1,
            "context length must be order - 1"
        );
        self.context_counts
            .get(&Key::from_ids(context))
            .copied()
            .unwrap_or(0)
    }

    /// `P(next | context)` under the fitted counts and smoothing.
    ///
    /// Builds both lookup keys on the stack for orders ≤
    /// [`crate::intern::PACKED_ORDER`]: no allocation per call.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != order - 1`.
    pub fn probability(&self, context: &[TokenId], next: TokenId) -> f64 {
        assert_eq!(
            context.len(),
            self.n - 1,
            "context length must be order - 1"
        );
        let joint = self
            .ngram_counts
            .get(&Key::from_context_and_next(context, next))
            .copied()
            .unwrap_or(0) as f64;
        let ctx = self
            .context_counts
            .get(&Key::from_ids(context))
            .copied()
            .unwrap_or(0) as f64;
        match self.smoothing {
            Smoothing::EpsilonFloor(eps) => {
                if joint == 0.0 || ctx == 0.0 {
                    eps
                } else {
                    joint / ctx
                }
            }
            Smoothing::AddK(k) => {
                let v = self.vocabulary_size as f64;
                (joint + k) / (ctx + k * v)
            }
        }
    }

    /// Log-probability (natural log) of an id sequence under the
    /// model: the sum over its `len - n + 1` transitions.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `sequence` is shorter than the
    /// model order (no transition to score).
    pub fn log_probability(&self, sequence: &[TokenId]) -> Result<f64, RadError> {
        if sequence.len() < self.n {
            return Err(RadError::Analysis(format!(
                "sequence of {} tokens is shorter than model order {}",
                sequence.len(),
                self.n
            )));
        }
        if let Some(table) = &self.log_probs {
            return Ok(sequence
                .windows(self.n)
                .map(|w| {
                    table
                        .get(&Key::from_ids(w))
                        .copied()
                        .unwrap_or(self.ln_floor)
                })
                .sum());
        }
        Ok(sequence
            .windows(self.n)
            .map(|w| self.probability(&w[..self.n - 1], w[self.n - 1]).ln())
            .sum())
    }

    /// Log-probability (natural log) of a single transition, given as
    /// one full order-`n` window of ids — the incremental unit the
    /// streaming detectors accumulate.
    ///
    /// Uses the same precomputed table (and the same `ln` arithmetic)
    /// as [`InternedLm::log_probability`], so summing this over a
    /// sequence's windows left-to-right is **bit-identical** to the
    /// batch score. That identity is what pins streaming == batch in
    /// `tests/streaming_equivalence.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != order`.
    pub fn window_log_prob(&self, window: &[TokenId]) -> f64 {
        assert_eq!(window.len(), self.n, "window length must equal order");
        if let Some(table) = &self.log_probs {
            return table
                .get(&Key::from_ids(window))
                .copied()
                .unwrap_or(self.ln_floor);
        }
        self.probability(&window[..self.n - 1], window[self.n - 1])
            .ln()
    }

    /// Perplexity of an id sequence: `exp(-logP / transitions)`, the
    /// normalized inverse probability of §V-B. Lower is more typical.
    ///
    /// # Errors
    ///
    /// Propagates [`InternedLm::log_probability`]'s error on too-short
    /// sequences.
    pub fn perplexity(&self, sequence: &[TokenId]) -> Result<f64, RadError> {
        // Score first: the length guard lives there, and the
        // subtraction below would underflow on a sequence shorter
        // than `order - 1` tokens.
        let logp = self.log_probability(sequence)?;
        let transitions = (sequence.len() + 1 - self.n) as f64;
        Ok((-logp / transitions).exp())
    }
}

/// A fitted n-gram language model over tokens of type `T`.
///
/// # Examples
///
/// ```
/// use rad_analysis::{CommandLm, Smoothing};
///
/// let training = vec![vec!["A", "B", "A", "B", "A"], vec!["A", "B", "A"]];
/// let lm = CommandLm::fit(2, &training, Smoothing::default())?;
/// // "A B" is the dominant transition; "B B" was never seen.
/// assert!(lm.probability(&["A"], &"B") > 0.9);
/// assert!(lm.probability(&["B"], &"B") < 0.01);
/// # Ok::<(), rad_core::RadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CommandLm<T> {
    vocab: Vocab<T>,
    inner: InternedLm,
}

impl<T: Clone + Eq + Hash + Ord> CommandLm<T> {
    /// Fits an order-`n` model on `training` sequences. Accepts any
    /// slice-of-sequences shape (`Vec<Vec<T>>`, `&[&[T]]`, ...); each
    /// token is interned exactly once across the whole corpus.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `n < 2`, the training set is
    /// empty, or no training sequence is at least `n` tokens long.
    pub fn fit<S: AsRef<[T]>>(
        n: usize,
        training: &[S],
        smoothing: Smoothing,
    ) -> Result<Self, RadError> {
        let mut vocab = Vocab::new();
        let mut interned: Vec<Vec<TokenId>> = Vec::with_capacity(training.len());
        for seq in training {
            let mut ids = Vec::new();
            vocab.intern_into(seq.as_ref(), &mut ids);
            interned.push(ids);
        }
        let refs: Vec<&[TokenId]> = interned.iter().map(Vec::as_slice).collect();
        let inner = InternedLm::fit(n, &refs, smoothing)?;
        Ok(CommandLm { vocab, inner })
    }

    /// Model order (2 = bigram).
    pub fn order(&self) -> usize {
        self.inner.order()
    }

    /// Size of the training vocabulary.
    pub fn vocabulary_size(&self) -> usize {
        self.inner.vocabulary_size()
    }

    /// The vocabulary the model interned its training tokens into.
    pub fn vocab(&self) -> &Vocab<T> {
        &self.vocab
    }

    /// The underlying id-level model.
    pub fn interned(&self) -> &InternedLm {
        &self.inner
    }

    /// Number of times `context` was observed in training (zero for
    /// unseen contexts). The program synthesizer uses this to detect
    /// dead ends.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != order - 1`.
    pub fn context_count(&self, context: &[T]) -> u64 {
        assert_eq!(
            context.len(),
            self.inner.order() - 1,
            "context length must be order - 1"
        );
        SCORE_SCRATCH.with(|cell| {
            let mut ids = cell.borrow_mut();
            ids.clear();
            ids.extend(context.iter().map(|t| self.vocab.get_or_pad(t)));
            self.inner.context_count(&ids)
        })
    }

    /// `P(next | context)` under the fitted counts and smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != order - 1`.
    pub fn probability(&self, context: &[T], next: &T) -> f64 {
        assert_eq!(
            context.len(),
            self.inner.order() - 1,
            "context length must be order - 1"
        );
        let next_id = self.vocab.get_or_pad(next);
        SCORE_SCRATCH.with(|cell| {
            let mut ids = cell.borrow_mut();
            ids.clear();
            ids.extend(context.iter().map(|t| self.vocab.get_or_pad(t)));
            self.inner.probability(&ids, next_id)
        })
    }

    /// Log-probability (natural log) of a sequence under the model:
    /// the sum over its `len - n + 1` transitions.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `sequence` is shorter than the
    /// model order (no transition to score).
    pub fn log_probability(&self, sequence: &[T]) -> Result<f64, RadError> {
        SCORE_SCRATCH.with(|cell| {
            let mut ids = cell.borrow_mut();
            ids.clear();
            ids.extend(sequence.iter().map(|t| self.vocab.get_or_pad(t)));
            self.inner.log_probability(&ids)
        })
    }

    /// Perplexity of a sequence: `exp(-logP / transitions)`, the
    /// normalized inverse probability of §V-B. Lower is more typical.
    ///
    /// # Errors
    ///
    /// Propagates [`CommandLm::log_probability`]'s error on too-short
    /// sequences.
    pub fn perplexity(&self, sequence: &[T]) -> Result<f64, RadError> {
        SCORE_SCRATCH.with(|cell| {
            let mut ids = cell.borrow_mut();
            ids.clear();
            ids.extend(sequence.iter().map(|t| self.vocab.get_or_pad(t)));
            self.inner.perplexity(&ids)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab_training() -> Vec<Vec<&'static str>> {
        vec![vec!["A", "B", "A", "B", "A", "B"], vec!["B", "A", "B", "A"]]
    }

    #[test]
    fn probabilities_normalize_over_seen_vocabulary() {
        // With add-k smoothing, sum over vocabulary must be exactly 1.
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::AddK(1.0)).unwrap();
        let total: f64 = ["A", "B"].iter().map(|t| lm.probability(&["A"], t)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsmoothed_estimates_match_counts() {
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::EpsilonFloor(1e-9)).unwrap();
        // After "A": always "B" (5 of 5 transitions).
        assert!((lm.probability(&["A"], &"B") - 1.0).abs() < 1e-12);
        assert_eq!(lm.probability(&["A"], &"A"), 1e-9);
    }

    #[test]
    fn unseen_tokens_hit_the_smoothing_floor() {
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::EpsilonFloor(1e-9)).unwrap();
        // Neither "Z" as next nor "Z" as context was ever interned.
        assert_eq!(lm.probability(&["A"], &"Z"), 1e-9);
        assert_eq!(lm.probability(&["Z"], &"A"), 1e-9);
        assert_eq!(lm.context_count(&["Z"]), 0);
    }

    #[test]
    fn typical_sequences_score_lower_perplexity_than_anomalies() {
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::default()).unwrap();
        let typical = lm.perplexity(&["A", "B", "A", "B"]).unwrap();
        let weird = lm.perplexity(&["A", "A", "B", "B"]).unwrap();
        assert!(weird > typical * 10.0, "typical {typical}, weird {weird}");
    }

    #[test]
    fn perplexity_is_length_normalized() {
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::default()).unwrap();
        let short = lm.perplexity(&["A", "B", "A"]).unwrap();
        let long = lm.perplexity(&["A", "B", "A", "B", "A", "B", "A"]).unwrap();
        assert!(
            (short - long).abs() < 1e-9,
            "pure repetitions of the same transition tie"
        );
    }

    #[test]
    fn trigram_model_uses_two_token_contexts() {
        let training = vec![vec!["X", "Y", "Z", "X", "Y", "Z", "X", "Y", "Z"]];
        let lm = CommandLm::fit(3, &training, Smoothing::default()).unwrap();
        assert!(lm.probability(&["X", "Y"], &"Z") > 0.99);
        assert!(lm.perplexity(&["X", "Y", "Z", "X", "Y"]).unwrap() < 1.1);
    }

    #[test]
    fn fit_validates_inputs() {
        assert!(CommandLm::<&str>::fit(1, &ab_training(), Smoothing::default()).is_err());
        let empty: Vec<Vec<&str>> = Vec::new();
        assert!(CommandLm::<&str>::fit(2, &empty, Smoothing::default()).is_err());
        assert!(CommandLm::fit(4, &[vec!["A", "B"]], Smoothing::default()).is_err());
    }

    #[test]
    fn scoring_too_short_sequences_errors() {
        let lm = CommandLm::fit(
            3,
            &[vec!["A", "B", "C", "A", "B", "C"]],
            Smoothing::default(),
        )
        .unwrap();
        assert!(lm.perplexity(&["A", "B"]).is_err());
        // Shorter than order - 1: the error path again, never an
        // underflow in the transition count (regression).
        assert!(lm.perplexity(&["A"]).is_err());
        assert!(lm.perplexity(&[]).is_err());
    }

    #[test]
    fn perplexity_matches_hand_computation() {
        // Training: A->B 3 times, A->A 1 time (counts 3 and 1).
        let training = vec![
            vec!["A", "B"],
            vec!["A", "B"],
            vec!["A", "B"],
            vec!["A", "A"],
        ];
        let lm = CommandLm::fit(2, &training, Smoothing::EpsilonFloor(1e-6)).unwrap();
        // P(B|A) = 3/4, P(A|A) = 1/4.
        let seq = ["A", "B"];
        let expected = (0.75f64).powf(-1.0); // exp(-ln(0.75)/1)
        assert!((lm.perplexity(&seq).unwrap() - expected).abs() < 1e-12);
        let seq2 = ["A", "A", "B"];
        // transitions: A->A (0.25), A->B (0.75); ppl = (0.25*0.75)^(-1/2)
        let expected2 = (0.25f64 * 0.75).powf(-0.5);
        assert!((lm.perplexity(&seq2).unwrap() - expected2).abs() < 1e-12);
    }

    #[test]
    fn interned_lm_agrees_with_wrapper() {
        let training = ab_training();
        let lm = CommandLm::fit(2, &training, Smoothing::default()).unwrap();
        let vocab = lm.vocab();
        let ids: Vec<TokenId> = ["A", "B", "A", "B"]
            .iter()
            .map(|t| vocab.get(t).unwrap())
            .collect();
        let direct = lm.interned().perplexity(&ids).unwrap();
        let wrapped = lm.perplexity(&["A", "B", "A", "B"]).unwrap();
        assert_eq!(direct, wrapped, "same counts, same arithmetic");
    }
}
