//! N-gram language models and perplexity (§V-B, RQ2).
//!
//! Given training sequences, the model estimates
//! `P(c_i | c_{i-n+1..i-1})` from n-gram and context counts, and scores
//! a new sequence by perplexity — the geometric-mean inverse
//! probability per transition. Lower perplexity means more typical;
//! anomalies score high.
//!
//! The paper leaves smoothing implicit (its corpus covers every n-gram
//! it scores); a reproduction cannot, so [`Smoothing`] makes the choice
//! explicit and the ablation bench compares the variants.

use std::collections::HashMap;
use std::hash::Hash;

use rad_core::RadError;

/// How unseen n-grams are assigned probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoothing {
    /// Unseen transitions get a fixed floor probability. Simple and
    /// aggressive: one unseen transition dominates a short sequence's
    /// score, which is exactly the behaviour an anomaly detector wants.
    EpsilonFloor(f64),
    /// Add-k (Laplace for k = 1) smoothing over the observed
    /// vocabulary.
    AddK(f64),
}

impl Default for Smoothing {
    fn default() -> Self {
        Smoothing::EpsilonFloor(1e-6)
    }
}

/// A fitted n-gram language model over tokens of type `T`.
///
/// # Examples
///
/// ```
/// use rad_analysis::{CommandLm, Smoothing};
///
/// let training = vec![vec!["A", "B", "A", "B", "A"], vec!["A", "B", "A"]];
/// let lm = CommandLm::fit(2, &training, Smoothing::default())?;
/// // "A B" is the dominant transition; "B B" was never seen.
/// assert!(lm.probability(&["A"], &"B") > 0.9);
/// assert!(lm.probability(&["B"], &"B") < 0.01);
/// # Ok::<(), rad_core::RadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CommandLm<T> {
    n: usize,
    ngram_counts: HashMap<Vec<T>, u64>,
    context_counts: HashMap<Vec<T>, u64>,
    vocabulary_size: usize,
    smoothing: Smoothing,
}

impl<T: Clone + Eq + Hash + Ord> CommandLm<T> {
    /// Fits an order-`n` model on `training` sequences.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `n < 2`, the training set is
    /// empty, or no training sequence is at least `n` tokens long.
    pub fn fit(n: usize, training: &[Vec<T>], smoothing: Smoothing) -> Result<Self, RadError> {
        if n < 2 {
            return Err(RadError::Analysis(
                "language model order must be >= 2".into(),
            ));
        }
        if training.is_empty() {
            return Err(RadError::Analysis("empty training set".into()));
        }
        let mut ngram_counts: HashMap<Vec<T>, u64> = HashMap::new();
        let mut context_counts: HashMap<Vec<T>, u64> = HashMap::new();
        let mut vocabulary = std::collections::BTreeSet::new();
        let mut usable = false;
        for seq in training {
            for t in seq {
                vocabulary.insert(t.clone());
            }
            if seq.len() < n {
                continue;
            }
            usable = true;
            for window in seq.windows(n) {
                *ngram_counts.entry(window.to_vec()).or_insert(0) += 1;
                *context_counts.entry(window[..n - 1].to_vec()).or_insert(0) += 1;
            }
        }
        if !usable {
            return Err(RadError::Analysis(format!(
                "no training sequence has at least {n} tokens"
            )));
        }
        Ok(CommandLm {
            n,
            ngram_counts,
            context_counts,
            vocabulary_size: vocabulary.len(),
            smoothing,
        })
    }

    /// Model order (2 = bigram).
    pub fn order(&self) -> usize {
        self.n
    }

    /// Size of the training vocabulary.
    pub fn vocabulary_size(&self) -> usize {
        self.vocabulary_size
    }

    /// Number of times `context` was observed in training (zero for
    /// unseen contexts). The program synthesizer uses this to detect
    /// dead ends.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != order - 1`.
    pub fn context_count(&self, context: &[T]) -> u64 {
        assert_eq!(
            context.len(),
            self.n - 1,
            "context length must be order - 1"
        );
        self.context_counts.get(context).copied().unwrap_or(0)
    }

    /// `P(next | context)` under the fitted counts and smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != order - 1`.
    pub fn probability(&self, context: &[T], next: &T) -> f64 {
        assert_eq!(
            context.len(),
            self.n - 1,
            "context length must be order - 1"
        );
        let mut ngram: Vec<T> = context.to_vec();
        ngram.push(next.clone());
        let joint = self.ngram_counts.get(&ngram).copied().unwrap_or(0) as f64;
        let ctx = self.context_counts.get(context).copied().unwrap_or(0) as f64;
        match self.smoothing {
            Smoothing::EpsilonFloor(eps) => {
                if joint == 0.0 || ctx == 0.0 {
                    eps
                } else {
                    joint / ctx
                }
            }
            Smoothing::AddK(k) => {
                let v = self.vocabulary_size as f64;
                (joint + k) / (ctx + k * v)
            }
        }
    }

    /// Log-probability (natural log) of a sequence under the model:
    /// the sum over its `len - n + 1` transitions.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `sequence` is shorter than the
    /// model order (no transition to score).
    pub fn log_probability(&self, sequence: &[T]) -> Result<f64, RadError> {
        if sequence.len() < self.n {
            return Err(RadError::Analysis(format!(
                "sequence of {} tokens is shorter than model order {}",
                sequence.len(),
                self.n
            )));
        }
        Ok(sequence
            .windows(self.n)
            .map(|w| self.probability(&w[..self.n - 1], &w[self.n - 1]).ln())
            .sum())
    }

    /// Perplexity of a sequence: `exp(-logP / transitions)`, the
    /// normalized inverse probability of §V-B. Lower is more typical.
    ///
    /// # Errors
    ///
    /// Propagates [`CommandLm::log_probability`]'s error on too-short
    /// sequences.
    pub fn perplexity(&self, sequence: &[T]) -> Result<f64, RadError> {
        let transitions = (sequence.len() + 1 - self.n) as f64;
        let logp = self.log_probability(sequence)?;
        Ok((-logp / transitions).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab_training() -> Vec<Vec<&'static str>> {
        vec![vec!["A", "B", "A", "B", "A", "B"], vec!["B", "A", "B", "A"]]
    }

    #[test]
    fn probabilities_normalize_over_seen_vocabulary() {
        // With add-k smoothing, sum over vocabulary must be exactly 1.
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::AddK(1.0)).unwrap();
        let total: f64 = ["A", "B"].iter().map(|t| lm.probability(&["A"], t)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsmoothed_estimates_match_counts() {
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::EpsilonFloor(1e-9)).unwrap();
        // After "A": always "B" (5 of 5 transitions).
        assert!((lm.probability(&["A"], &"B") - 1.0).abs() < 1e-12);
        assert_eq!(lm.probability(&["A"], &"A"), 1e-9);
    }

    #[test]
    fn typical_sequences_score_lower_perplexity_than_anomalies() {
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::default()).unwrap();
        let typical = lm.perplexity(&["A", "B", "A", "B"]).unwrap();
        let weird = lm.perplexity(&["A", "A", "B", "B"]).unwrap();
        assert!(weird > typical * 10.0, "typical {typical}, weird {weird}");
    }

    #[test]
    fn perplexity_is_length_normalized() {
        let lm = CommandLm::fit(2, &ab_training(), Smoothing::default()).unwrap();
        let short = lm.perplexity(&["A", "B", "A"]).unwrap();
        let long = lm.perplexity(&["A", "B", "A", "B", "A", "B", "A"]).unwrap();
        assert!(
            (short - long).abs() < 1e-9,
            "pure repetitions of the same transition tie"
        );
    }

    #[test]
    fn trigram_model_uses_two_token_contexts() {
        let training = vec![vec!["X", "Y", "Z", "X", "Y", "Z", "X", "Y", "Z"]];
        let lm = CommandLm::fit(3, &training, Smoothing::default()).unwrap();
        assert!(lm.probability(&["X", "Y"], &"Z") > 0.99);
        assert!(lm.perplexity(&["X", "Y", "Z", "X", "Y"]).unwrap() < 1.1);
    }

    #[test]
    fn fit_validates_inputs() {
        assert!(CommandLm::<&str>::fit(1, &ab_training(), Smoothing::default()).is_err());
        assert!(CommandLm::<&str>::fit(2, &[], Smoothing::default()).is_err());
        assert!(CommandLm::fit(4, &[vec!["A", "B"]], Smoothing::default()).is_err());
    }

    #[test]
    fn scoring_too_short_sequences_errors() {
        let lm = CommandLm::fit(
            3,
            &[vec!["A", "B", "C", "A", "B", "C"]],
            Smoothing::default(),
        )
        .unwrap();
        assert!(lm.perplexity(&["A", "B"]).is_err());
    }

    #[test]
    fn perplexity_matches_hand_computation() {
        // Training: A->B 3 times, A->A 1 time (counts 3 and 1).
        let training = vec![
            vec!["A", "B"],
            vec!["A", "B"],
            vec!["A", "B"],
            vec!["A", "A"],
        ];
        let lm = CommandLm::fit(2, &training, Smoothing::EpsilonFloor(1e-6)).unwrap();
        // P(B|A) = 3/4, P(A|A) = 1/4.
        let seq = ["A", "B"];
        let expected = (0.75f64).powf(-1.0); // exp(-ln(0.75)/1)
        assert!((lm.perplexity(&seq).unwrap() - expected).abs() < 1e-12);
        let seq2 = ["A", "A", "B"];
        // transitions: A->A (0.25), A->B (0.75); ppl = (0.25*0.75)^(-1/2)
        let expected2 = (0.25f64 * 0.75).powf(-0.5);
        assert!((lm.perplexity(&seq2).unwrap() - expected2).abs() < 1e-12);
    }
}
