//! Property tests pinning the incremental streaming kernels to their
//! retained batch oracles: the sliding-window scorer against a
//! from-scratch rescore of the retained transitions, the windowed
//! Jenks policy against a full re-fit on the ring's contents, and the
//! online TF-IDF accumulator against `transform`.
//!
//! Case counts honour `PROPTEST_CASES` (the CI streaming-conformance
//! job deepens them to 512).

use proptest::prelude::*;
use rad_analysis::streaming::WindowedJenks;
use rad_analysis::{jenks_two_class, PerplexityDetector, TfIdf};

/// A small fitted detector over a 6-letter alphabet. The training
/// corpus is fixed; only the probed stream varies per case.
fn detector(order: usize) -> rad_analysis::detector::FittedDetector<u8> {
    let train: Vec<Vec<u8>> = (0..6u8)
        .map(|i| (0..20).map(|j| (i + j) % 6).collect())
        .collect();
    PerplexityDetector::new(order)
        .fit(&train, &train)
        .expect("fixed corpus fits")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With an unbounded window, a completed stream's perplexity is
    /// bit-identical to the batch score of the whole sequence — the
    /// push path never pops, so its log-sum is the batch fold.
    #[test]
    fn unbounded_stream_scorer_is_bit_identical_to_batch(
        tokens in proptest::collection::vec(0u8..8, 0..60),
        order in 2usize..4,
    ) {
        let det = detector(order);
        let mut scorer = det.stream(0);
        let mut last = None;
        for &t in &tokens {
            last = scorer.push(t);
        }
        match det.score(&tokens) {
            Ok(batch) => {
                let streamed = last.expect("scored sequence has perplexity");
                prop_assert_eq!(streamed.to_bits(), batch.to_bits());
            }
            // Too short to score: the stream must agree there was
            // nothing to judge.
            Err(_) => prop_assert!(last.is_none()),
        }
    }

    /// A bounded window holds exactly the last `window` transitions
    /// (push/pop round-trip), and its perplexity at every step equals
    /// a from-scratch rescore of those retained transitions.
    #[test]
    fn bounded_stream_scorer_matches_retained_rescore(
        tokens in proptest::collection::vec(0u8..8, 0..60),
        order in 2usize..4,
        window in 1usize..10,
    ) {
        let det = detector(order);
        let mut scorer = det.stream(window);
        let mut history: Vec<u8> = Vec::new();
        for &t in &tokens {
            let streamed = scorer.push(t);
            history.push(t);

            // The retained transitions, recomputed from scratch.
            let total = history.len().saturating_sub(order - 1);
            let retained = total.min(window);
            prop_assert_eq!(scorer.transitions(), retained);
            if retained == 0 {
                prop_assert!(streamed.is_none());
                continue;
            }
            let logs: Vec<f64> = history
                .windows(order)
                .skip(total - retained)
                .map(|w| det.lm().probability(&w[..order - 1], &w[order - 1]).ln())
                .collect();
            let oracle = (-logs.iter().sum::<f64>() / retained as f64).exp();
            let streamed = streamed.expect("transitions retained");
            // += / -= leaves rounding residue relative to a fresh
            // fold; the drift must stay at noise level.
            prop_assert!(
                (streamed - oracle).abs() <= 1e-9 * oracle.abs().max(1.0),
                "streamed {streamed} vs oracle {oracle}"
            );
        }
    }

    /// After every observation the windowed Jenks threshold equals a
    /// from-scratch fit on exactly the scores the ring retains.
    #[test]
    fn windowed_jenks_equals_a_from_scratch_refit(
        scores in proptest::collection::vec(0.01f64..500.0, 1..40),
        capacity in 1usize..12,
    ) {
        let mut windowed = WindowedJenks::new(capacity, 1.0);
        let mut oracle_scores: Vec<f64> = Vec::new();
        let mut oracle_threshold = 1.0f64;
        for &s in &scores {
            windowed.observe(s);
            oracle_scores.push(s);
            if oracle_scores.len() > capacity {
                oracle_scores.remove(0);
            }
            if oracle_scores.len() < 2 {
                oracle_threshold = oracle_scores[0] * 3.0;
            } else {
                let logs: Vec<f64> = oracle_scores.iter().map(|x| x.ln()).collect();
                if let Ok(t) = jenks_two_class(&logs) {
                    oracle_threshold = t.exp();
                }
            }
            prop_assert_eq!(
                windowed.threshold().to_bits(),
                oracle_threshold.to_bits(),
                "threshold diverged from re-fit"
            );
            prop_assert_eq!(windowed.retained().collect::<Vec<f64>>(), oracle_scores.clone());
        }
    }

    /// The online TF-IDF accumulator equals `transform` bit for bit on
    /// arbitrary documents, out-of-vocabulary tokens included.
    #[test]
    fn tfidf_accumulator_equals_transform(
        corpus in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 1..25),
            2..10,
        ),
        probe in proptest::collection::vec(0u8..9, 0..40),
    ) {
        let model = TfIdf::fit(&corpus).expect("non-empty corpus fits");
        let mut acc = model.accumulator();
        for t in &probe {
            acc.observe(t);
        }
        let streamed = acc.vector();
        let batch = model.transform(&probe);
        prop_assert_eq!(streamed.len(), batch.len());
        for (s, b) in streamed.iter().zip(&batch) {
            prop_assert_eq!(s.to_bits(), b.to_bits());
        }
    }
}
