//! Property tests on the statistical models.

#![allow(clippy::needless_range_loop)] // matrix checks read best indexed

use std::collections::HashMap;

use proptest::prelude::*;
use rad_analysis::{
    jenks_breaks, CommandLm, NgramCounter, ReferenceLm, ReferenceNgramCounter, Smoothing, TfIdf,
};

/// A corpus of short sentences over a small alphabet: enough token
/// reuse that n-grams repeat, enough variety that tables differ run
/// to run.
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..6, 0..25), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// N-gram totals equal the sum of per-sentence window counts.
    #[test]
    fn ngram_totals_are_window_counts(
        sentences in proptest::collection::vec(
            proptest::collection::vec(0u8..5, 0..30),
            1..10,
        ),
        n in 1usize..5,
    ) {
        let mut counter = NgramCounter::new(n);
        for s in &sentences {
            counter.observe(s);
        }
        let expected: usize =
            sentences.iter().map(|s| s.len().saturating_sub(n - 1)).sum();
        prop_assert_eq!(counter.total() as usize, expected);
    }

    /// top_k never exceeds k and is sorted by descending count.
    #[test]
    fn top_k_is_sorted_and_bounded(
        tokens in proptest::collection::vec(0u8..6, 2..80),
        k in 1usize..20,
    ) {
        let mut counter = NgramCounter::new(2);
        counter.observe(&tokens);
        let top = counter.top_k(k);
        prop_assert!(top.len() <= k);
        for pair in top.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1);
        }
    }

    /// Jenks classes are contiguous in sorted order and cover all
    /// values: class boundaries are increasing indices.
    #[test]
    fn jenks_breaks_are_ordered_indices(
        values in proptest::collection::vec(-1e3f64..1e3, 3..50),
        k in 2usize..4,
    ) {
        prop_assume!(values.len() >= k);
        let (sorted, breaks) = jenks_breaks(&values, k).unwrap();
        prop_assert_eq!(breaks.len(), k - 1);
        let mut prev = 0;
        for b in &breaks {
            prop_assert!(*b > prev || prev == 0, "breaks not increasing");
            prop_assert!(*b >= 1 && *b < sorted.len());
            prev = *b;
        }
    }

    /// Splicing a never-seen token into a training-covered sequence
    /// strictly increases its perplexity (the anomaly-detection core
    /// property).
    #[test]
    fn unseen_tokens_strictly_raise_perplexity(
        seq in proptest::collection::vec(0u8..4, 4..40),
        at in 1usize..38,
    ) {
        let lm = CommandLm::fit(2, std::slice::from_ref(&seq), Smoothing::EpsilonFloor(1e-9)).unwrap();
        let own = lm.perplexity(&seq).unwrap();
        let mut poisoned = seq.clone();
        let at = at.min(poisoned.len() - 1);
        poisoned.insert(at, 99); // token 99 never occurs in training
        let worse = lm.perplexity(&poisoned).unwrap();
        prop_assert!(worse > own, "poisoned {worse} not above own {own}");
    }

    /// The interned counter and the token-keyed reference agree on
    /// every count: same totals, same distinct table, same count for
    /// each stored n-gram, across random orders 1..=4.
    #[test]
    fn interned_counts_match_reference(
        sentences in corpus_strategy(),
        n in 1usize..5,
    ) {
        let mut interned = NgramCounter::new(n);
        let mut reference = ReferenceNgramCounter::new(n);
        for s in &sentences {
            interned.observe(s);
            reference.observe(s);
        }
        prop_assert_eq!(interned.total(), reference.total());
        prop_assert_eq!(interned.distinct(), reference.distinct());
        let table: HashMap<Vec<u8>, u64> = interned.iter().collect();
        for (gram, count) in reference.iter() {
            prop_assert_eq!(table.get(gram).copied(), Some(count));
        }
        // Spot-check the miss path too: a gram with a never-seen token.
        prop_assert_eq!(interned.count(&vec![99u8; n]), reference.count(&vec![99u8; n]));
    }

    /// Partial-selection top_k returns the exact ordered list the
    /// reference's full sort produces — same deterministic
    /// count-descending, token-ascending tie-break — for every k.
    #[test]
    fn interned_top_k_matches_reference(
        sentences in corpus_strategy(),
        n in 1usize..5,
        k in 0usize..30,
    ) {
        let mut interned = NgramCounter::new(n);
        let mut reference = ReferenceNgramCounter::new(n);
        for s in &sentences {
            interned.observe(s);
            reference.observe(s);
        }
        prop_assert_eq!(interned.top_k(k), reference.top_k(k));
    }

    /// The interned language model reproduces the reference's
    /// perplexities to within 1e-9 for random orders 2..=4 under both
    /// smoothing schemes, on scoring sequences that mix seen and
    /// unseen tokens.
    #[test]
    fn interned_perplexity_matches_reference(
        sentences in corpus_strategy(),
        score in proptest::collection::vec(0u8..9, 4..30),
        n in 2usize..5,
        add_k in prop_oneof![Just(false), Just(true)],
    ) {
        prop_assume!(sentences.iter().any(|s| s.len() >= n));
        let smoothing = if add_k {
            Smoothing::AddK(0.5)
        } else {
            Smoothing::EpsilonFloor(1e-8)
        };
        let interned = CommandLm::fit(n, &sentences, smoothing).unwrap();
        let reference = ReferenceLm::fit(n, &sentences, smoothing).unwrap();
        if score.len() >= n {
            let a = interned.perplexity(&score).unwrap();
            let b = reference.perplexity(&score).unwrap();
            prop_assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "interned {a} vs reference {b}"
            );
        }
        // Per-transition probabilities agree too, not just aggregates.
        for window in score.windows(n).take(8) {
            let (ctx, next) = window.split_at(n - 1);
            let a = interned.probability(ctx, &next[0]);
            let b = reference.probability(ctx, &next[0]);
            prop_assert!((a - b).abs() <= 1e-12, "p interned {a} vs reference {b}");
        }
    }

    /// TF-IDF transform of a fitted document reproduces its fitted
    /// vector.
    #[test]
    fn transform_is_consistent_with_fit(
        docs in proptest::collection::vec(
            proptest::collection::vec("[a-e]", 1..20),
            1..8,
        ),
        pick in 0usize..8,
    ) {
        prop_assume!(pick < docs.len());
        let model = TfIdf::fit(&docs).unwrap();
        let v = model.transform(&docs[pick]);
        for (a, b) in v.iter().zip(&model.vectors()[pick]) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
