//! The RAD benchmark harness.
//!
//! One binary per table/figure of the paper (see `src/bin/`):
//!
//! | target | regenerates |
//! |---|---|
//! | `fig4_response_times` | Fig. 4 — N9 `ARM` response-time box plots (DIRECT/REMOTE/CLOUD) |
//! | `fig5a_command_distribution` | Fig. 5(a) — command-wise trace counts |
//! | `fig5b_top_ngrams` | Fig. 5(b) — top-10 2/3/4/5-grams |
//! | `fig6_tfidf_similarity` | Fig. 6 — 25×25 TF-IDF cosine-similarity matrix |
//! | `table1_perplexity_ids` | Table I — perplexity IDS metrics (bigram/trigram/four-gram) |
//! | `fig7a_segment_profiles` | Fig. 7(a) — per-leg joint-current signatures |
//! | `fig7b_solids_invariance` | Fig. 7(b) — current invariance across solids |
//! | `fig7c_velocity_sweep` | Fig. 7(c) — velocity sweep |
//! | `fig7d_payload_sweep` | Fig. 7(d) — payload sweep |
//!
//! Criterion benches (`benches/`) cover the RPC substrate, the
//! analysis pipeline, power synthesis, and the DESIGN.md ablations.
//!
//! This library hosts the small statistics/rendering helpers the
//! binaries share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Five-number summary of a sample (the box-plot numbers of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Count of points above `q3 + 1.5 * iqr` (upper outliers).
    pub upper_outliers: usize,
}

impl BoxStats {
    /// Computes box-plot statistics of `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from(values: &[f64]) -> BoxStats {
        assert!(!values.is_empty(), "need at least one value");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let q = |p: f64| -> f64 {
            let pos = p * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        let q1 = q(0.25);
        let q3 = q(0.75);
        let iqr = q3 - q1;
        let fence = q3 + 1.5 * iqr;
        BoxStats {
            min: sorted[0],
            q1,
            median: q(0.5),
            q3,
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            upper_outliers: sorted.iter().filter(|v| **v > fence).count(),
        }
    }
}

/// Renders a numeric series as a one-line unicode sparkline — the
/// terminal stand-in for the figure curves.
pub fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in series {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if hi > lo { hi - lo } else { 1.0 };
    series
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Splits a command dataset into per-session sentences: a gap of more
/// than 30 simulated minutes between consecutive traces starts a new
/// session. N-grams must not straddle two lab sessions, so this is the
/// tokenization step shared by the Fig. 5(b) binary and the
/// performance benches.
pub fn session_corpus(command: &rad_store::CommandDataset) -> Vec<Vec<&'static str>> {
    let mut sentences: Vec<Vec<&'static str>> = Vec::new();
    let mut current: Vec<&'static str> = Vec::new();
    let mut last_ts = None;
    for trace in command.traces() {
        if let Some(prev) = last_ts {
            if trace
                .timestamp()
                .saturating_duration_since(prev)
                .as_secs_f64()
                > 1800.0
            {
                sentences.push(std::mem::take(&mut current));
            }
        }
        current.push(trace.command_type().mnemonic());
        last_ts = Some(trace.timestamp());
    }
    sentences.push(current);
    sentences
}

/// Downsamples a series to at most `max_len` points by striding (for
/// printable sparklines).
pub fn downsample(series: &[f64], max_len: usize) -> Vec<f64> {
    assert!(max_len > 0, "max_len must be positive");
    if series.len() <= max_len {
        return series.to_vec();
    }
    let stride = series.len() as f64 / max_len as f64;
    (0..max_len)
        .map(|i| series[(i as f64 * stride) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_a_known_sample() {
        let values = [1.0, 2.0, 3.0, 4.0, 100.0];
        let s = BoxStats::from(&values);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.upper_outliers, 1, "100 sits far above the upper fence");
        assert!((s.mean - 22.0).abs() < 1e-12);
    }

    #[test]
    fn quartiles_interpolate() {
        let values = [10.0, 20.0, 30.0, 40.0];
        let s = BoxStats::from(&values);
        assert!((s.q1 - 17.5).abs() < 1e-12);
        assert!((s.q3 - 32.5).abs() < 1e-12);
        assert!((s.median - 25.0).abs() < 1e-12);
    }

    #[test]
    fn sparkline_spans_the_range() {
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn downsample_preserves_short_series() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(downsample(&s, 10), s.to_vec());
        assert_eq!(downsample(&s, 2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_sample_panics() {
        let _ = BoxStats::from(&[]);
    }
}
