//! Performance report: interned pipeline vs the token-keyed reference.
//!
//! Measures, with plain wall-clock timers:
//!
//! * fit+score (order 3) and count+top-k over the Fig. 5(b) session
//!   corpus — optimized [`rad_analysis`] types vs their
//!   [`rad_analysis::reference`] twins;
//! * the Table I trigram 5-fold cross-validation — parallel
//!   `PerplexityDetector::evaluate` vs the sequential fold loop;
//! * multi-seed campaign synthesis — `CampaignBuilder::build_many` vs
//!   a sequential loop of `build()`.
//!
//! Results print as a table and are written to `BENCH_analysis.json`
//! at the repository root (the file the EXPERIMENTS.md "Performance"
//! section quotes).

use std::time::Instant;

use rad_analysis::{
    CommandLm, CrossValidation, NgramCounter, PerplexityDetector, ReferenceLm,
    ReferenceNgramCounter, Smoothing,
};
use rad_bench::session_corpus;
use rad_core::CommandType;
use rad_workloads::CampaignBuilder;

/// Milliseconds for one repetition: the minimum over `reps` timed runs
/// after one warmup run. The minimum is far more stable than the mean
/// on a shared box — scheduler noise only ever adds time.
fn time_ms<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Entry {
    name: &'static str,
    baseline_ms: f64,
    optimized_ms: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.optimized_ms
    }
}

fn main() {
    println!("perf_report: measuring interned pipeline vs reference...");
    let campaign = CampaignBuilder::new(42).scale(0.25).build();
    let corpus = session_corpus(campaign.command());
    let tokens: usize = corpus.iter().map(Vec::len).sum();
    println!("corpus: {} sessions, {tokens} commands", corpus.len());
    let scorable: Vec<&Vec<&'static str>> = corpus.iter().filter(|s| s.len() >= 3).collect();

    let labelled: Vec<(Vec<CommandType>, bool)> = CampaignBuilder::new(42)
        .supervised_only()
        .build()
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| (seq, meta.label().is_anomalous()))
        .collect();

    let mut entries = Vec::new();

    let reference_fit_score = time_ms(20, || {
        let lm = ReferenceLm::fit(3, &corpus, Smoothing::default()).unwrap();
        let total: f64 = scorable.iter().map(|s| lm.perplexity(s).unwrap()).sum();
        assert!(total.is_finite());
    });
    let interned_fit_score = time_ms(20, || {
        let lm = CommandLm::fit(3, &corpus, Smoothing::default()).unwrap();
        let total: f64 = scorable.iter().map(|s| lm.perplexity(s).unwrap()).sum();
        assert!(total.is_finite());
    });
    entries.push(Entry {
        name: "fit_score_order3",
        baseline_ms: reference_fit_score,
        optimized_ms: interned_fit_score,
    });

    let reference_topk = time_ms(20, || {
        let mut counter = ReferenceNgramCounter::new(3);
        for s in &corpus {
            counter.observe(s);
        }
        assert_eq!(counter.top_k(10).len(), 10);
    });
    let interned_topk = time_ms(20, || {
        let mut counter = NgramCounter::new(3);
        for s in &corpus {
            counter.observe(s);
        }
        assert_eq!(counter.top_k(10).len(), 10);
    });
    entries.push(Entry {
        name: "count_topk_order3",
        baseline_ms: reference_topk,
        optimized_ms: interned_topk,
    });

    let sequential_cv = time_ms(40, || {
        let cv = CrossValidation::new(labelled.len(), 5, 0).unwrap();
        let mut scores = vec![0.0f64; labelled.len()];
        for fold in cv.folds() {
            let training: Vec<Vec<CommandType>> =
                fold.train.iter().map(|&i| labelled[i].0.clone()).collect();
            let lm = CommandLm::fit(3, &training, Smoothing::default()).unwrap();
            for &i in &fold.test {
                scores[i] = lm.perplexity(&labelled[i].0).unwrap();
            }
        }
    });
    let parallel_cv = time_ms(40, || {
        PerplexityDetector::new(3)
            .evaluate(&labelled, 5, 0)
            .unwrap();
    });
    entries.push(Entry {
        name: "cv_trigram_5fold",
        baseline_ms: sequential_cv,
        optimized_ms: parallel_cv,
    });

    let seeds: Vec<u64> = (0..8).collect();
    let builder = CampaignBuilder::new(0).supervised_only();
    let sequential_campaigns = time_ms(3, || {
        let campaigns: Vec<_> = seeds
            .iter()
            .map(|&seed| builder.clone().with_seed(seed).build())
            .collect();
        assert_eq!(campaigns.len(), seeds.len());
    });
    let parallel_campaigns = time_ms(3, || {
        assert_eq!(builder.build_many(&seeds).len(), seeds.len());
    });
    entries.push(Entry {
        name: "campaign_build_8_seeds",
        baseline_ms: sequential_campaigns,
        optimized_ms: parallel_campaigns,
    });

    println!();
    println!(
        "{:<24} {:>14} {:>14} {:>9}",
        "stage", "baseline (ms)", "optimized (ms)", "speedup"
    );
    for e in &entries {
        println!(
            "{:<24} {:>14.3} {:>14.3} {:>8.2}x",
            e.name,
            e.baseline_ms,
            e.optimized_ms,
            e.speedup()
        );
    }

    let json = render_json(&corpus.len(), tokens, &entries);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_analysis.json");
    std::fs::write(&path, json).expect("write BENCH_analysis.json");
    println!();
    println!("wrote {}", path.display());
}

fn render_json(sessions: &usize, tokens: usize, entries: &[Entry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"corpus\": {\n");
    out.push_str(&format!("    \"sessions\": {sessions},\n"));
    out.push_str(&format!("    \"commands\": {tokens},\n"));
    out.push_str("    \"campaign\": \"seed 42, scale 0.25\"\n  },\n");
    out.push_str("  \"measurements\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", e.name));
        out.push_str(&format!("      \"baseline_ms\": {:.3},\n", e.baseline_ms));
        out.push_str(&format!("      \"optimized_ms\": {:.3},\n", e.optimized_ms));
        out.push_str(&format!("      \"speedup\": {:.2}\n", e.speedup()));
        out.push_str(if i + 1 == entries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
