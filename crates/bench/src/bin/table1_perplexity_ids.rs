//! Table I — perplexity-based anomaly detection under 5-fold cross
//! validation with Jenks two-class thresholding.
//!
//! The paper's shape to reproduce: **recall 1.0 for every model
//! order** (all three anomalies caught), a non-trivial number of
//! false positives, and accuracy/precision/F1 in the same band
//! (paper: accuracy 64 % / 84 % / 80 % for bigram / trigram /
//! four-gram).

use rad_analysis::PerplexityDetector;
use rad_core::CommandType;
use rad_workloads::CampaignBuilder;

fn main() {
    println!("Table I reproduction: perplexity IDS over the 25 supervised runs");
    let campaign = CampaignBuilder::new(42).supervised_only().build();
    let labelled: Vec<(Vec<CommandType>, bool)> = campaign
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| (seq, meta.label().is_anomalous()))
        .collect();

    type PaperRow = (usize, f64, f64, f64, f64, (u64, u64, u64, u64));
    let paper: [PaperRow; 3] = [
        (2, 64.0, 67.85, 0.25, 0.40, (3, 9, 13, 0)),
        (3, 84.0, 85.71, 0.43, 0.60, (3, 4, 18, 0)),
        (4, 80.0, 82.14, 0.38, 0.54, (3, 5, 17, 0)),
    ];

    println!();
    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>8} {:>7} {:>14} {:>14}",
        "model", "accuracy", "(paper)", "w.accuracy", "precision", "F1", "TP(TN)", "FP(FN)"
    );
    for (n, p_acc, _p_wacc, _p_prec, _p_f1, (p_tp, p_fp, p_tn, p_fn)) in paper {
        let detector = PerplexityDetector::new(n);
        let report = detector
            .evaluate(&labelled, 5, 0)
            .expect("25 runs split into 5 folds");
        let cm = report.confusion;
        println!(
            "{:<10} {:>8.1}% {:>8.1}% {:>9.2}% {:>9.2} {:>7.2} {:>8}({:<3}) {:>8}({:<3})",
            format!("{n}-gram"),
            cm.accuracy() * 100.0,
            p_acc,
            cm.weighted_accuracy() * 100.0,
            cm.precision(),
            cm.f1(),
            cm.true_positives(),
            cm.true_negatives(),
            cm.false_positives(),
            cm.false_negatives(),
        );
        assert_eq!(
            cm.recall(),
            1.0,
            "the paper's headline property: every anomaly is caught"
        );
        let _ = (p_tp, p_fp, p_tn, p_fn);
    }
    println!();
    println!("paper confusion counts for reference: bigram TP3 FP9 TN13 FN0,");
    println!("trigram TP3 FP4 TN18 FN0, four-gram TP3 FP5 TN17 FN0.");
    println!("recall = 1.0 in every row, matching the paper.");
}
