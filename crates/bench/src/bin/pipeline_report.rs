//! Trace data-plane report: the columnar/streaming pipeline against
//! the row-oriented path it replaced, on the synthesize → store →
//! tokenize workload (plus CSV export as an extra stage).
//!
//! Two implementations of the same pipeline run over the same
//! synthetic trace log (plain wall-clock timers, minimum over reps,
//! like `store_report`):
//!
//! * **rows** — the pre-refactor shape: storage clones owned
//!   `TraceObject`s one call at a time, the per-run tokenization
//!   rescans (and re-materializes) the whole log once per supervised
//!   run, and every token goes through the stringify → re-intern
//!   round trip (mnemonic `String` → vocabulary lookup);
//! * **columnar** — the `TraceBatch` plane: chunked batches append
//!   column-wise, runs group in one pass over the run-id column, and
//!   token ids come straight off the dense command-token-id column.
//!
//! Both paths produce identical token streams (asserted). Peak
//! working-set is reported as rows resident at a hand-off: the row
//! path holds the whole log, the columnar path holds one chunk.
//! Results print as a table and are written to `BENCH_pipeline.json`
//! at the repository root (the file EXPERIMENTS.md quotes).
//!
//! Scale with `PIPELINE_TRACES` (default 1,000,000; CI smoke uses a
//! smaller count).

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::time::Instant;

use rad_core::{
    Command, CommandType, DeviceId, Label, ProcedureKind, RunId, SimDuration, SimInstant,
    SliceSource, TraceBatch, TraceId, TraceObject, TraceSource, Value,
};
use rad_store::csv::{traces_to_csv, write_traces_csv};
use rad_store::CommandDataset;

const CHUNK_ROWS: usize = 4096;
/// Supervised runs in the synthetic campaign — the paper's 25.
const RUNS: usize = 25;

/// Milliseconds for one repetition: the minimum over `reps` timed runs
/// after one warmup run.
fn time_ms<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// A deterministic synthetic trace log exercising every column:
/// all 52 command types, args, sparse exceptions, and `RUNS`
/// supervised runs of equal size.
fn synthesize(n: usize) -> Vec<TraceObject> {
    let run_len = n.div_ceil(RUNS).max(1);
    (0..n)
        .map(|i| {
            let ct = CommandType::from_token_id(i % 52).unwrap();
            let mut b = TraceObject::builder(
                TraceId(i as u64),
                SimInstant::from_micros(i as u64 * 250),
                DeviceId::primary(ct.device()),
                Command::new(ct, vec![Value::Int(i as i64 % 1000)]),
            )
            .return_value(Value::Bool(true))
            .response_time(SimDuration::from_micros(180 + (i as u64 % 40)));
            if i % 997 == 0 {
                b = b.exception("synthetic fault");
            }
            b = b.run(
                ProcedureKind::JoystickMovements,
                RunId((i / run_len) as u32),
                Label::Benign,
            );
            b.build()
        })
        .collect()
}

/// The pre-refactor per-run tokenization: one full rescan and
/// re-materialization of the log per supervised run, then the
/// stringify → re-intern round trip for every token.
fn tokenize_rows(traces: &[TraceObject], runs: usize) -> Vec<Vec<u32>> {
    let mut vocab: HashMap<String, u32> = HashMap::new();
    (0..runs)
        .map(|run| {
            let run = RunId(run as u32);
            let mut matching: Vec<TraceObject> = traces
                .iter()
                .filter(|t| t.run_id() == Some(run))
                .cloned()
                .collect();
            matching.sort_by_key(|t| t.timestamp());
            matching
                .iter()
                .map(|t| {
                    let token = t.command_type().mnemonic().to_string();
                    let next = vocab.len() as u32;
                    *vocab.entry(token).or_insert(next)
                })
                .collect()
        })
        .collect()
}

/// The columnar tokenization: group rows in one pass over the run-id
/// column, then read token ids off the dense command-token column.
/// The vocabulary map only reconciles dense ids with the row path's
/// first-seen numbering so the outputs compare equal.
fn tokenize_columnar(batch: &TraceBatch, runs: usize) -> Vec<Vec<u32>> {
    let timestamps = batch.timestamps_us();
    let tokens = batch.command_token_ids();
    let mut by_run: Vec<Vec<usize>> = vec![Vec::new(); runs];
    for (i, run) in batch.run_ids().iter().enumerate() {
        if let Some(r) = *run {
            by_run[r.0 as usize].push(i);
        }
    }
    let mut dense_to_out = [u32::MAX; 52];
    let mut next = 0u32;
    by_run
        .into_iter()
        .map(|mut rows| {
            rows.sort_by_key(|&i| timestamps[i]);
            rows.into_iter()
                .map(|i| {
                    let slot = &mut dense_to_out[tokens[i] as usize];
                    if *slot == u32::MAX {
                        *slot = next;
                        next += 1;
                    }
                    *slot
                })
                .collect()
        })
        .collect()
}

/// Counts bytes without retaining them — the export stage's output is
/// measured, not stored.
struct CountingWrite {
    bytes: u64,
}

impl Write for CountingWrite {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Stage {
    name: &'static str,
    rows_ms: f64,
    columnar_ms: f64,
}

impl Stage {
    fn speedup(&self) -> f64 {
        self.rows_ms / self.columnar_ms
    }
}

fn main() {
    let n: usize = std::env::var("PIPELINE_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    println!("pipeline_report: {n} traces, {RUNS} runs, chunk {CHUNK_ROWS} rows...");

    let traces = synthesize(n);

    // ---- store: log → dataset ----
    // Rows: clone every object into the dataset one call at a time.
    // Columnar: chunk the log into batches and append column-wise.
    let rows_store = time_ms(3, || {
        let mut ds = CommandDataset::new();
        for t in &traces {
            ds.push_trace(t.clone());
        }
        assert_eq!(ds.len(), n);
    });
    let columnar_store = time_ms(3, || {
        let mut ds = CommandDataset::new();
        let mut source = SliceSource::new(&traces, CHUNK_ROWS);
        while let Some(batch) = source.next_batch().unwrap() {
            ds.insert_batch(batch);
        }
        assert_eq!(ds.len(), n);
    });

    // The stored dataset the downstream stages read from.
    let mut dataset = CommandDataset::new();
    {
        let mut source = SliceSource::new(&traces, CHUNK_ROWS);
        while let Some(batch) = source.next_batch().unwrap() {
            dataset.insert_batch(batch);
        }
    }

    // ---- tokenize: dataset → per-run token-id sequences ----
    let expected = tokenize_rows(&traces, RUNS);
    let rows_tokenize = time_ms(3, || {
        let got = tokenize_rows(&traces, RUNS);
        assert_eq!(got.len(), RUNS);
    });
    let columnar_tokenize = time_ms(3, || {
        let got = tokenize_columnar(dataset.batch(), RUNS);
        assert_eq!(got, expected, "tokenize paths diverged");
    });

    // ---- export: dataset → CSV bytes (extra stage, not in the
    // acceptance path) ----
    let mut expected_bytes = 0u64;
    let rows_export = time_ms(3, || {
        let csv = traces_to_csv(&dataset.traces());
        expected_bytes = csv.len() as u64;
    });
    let columnar_export = time_ms(3, || {
        let mut out = CountingWrite { bytes: 0 };
        write_traces_csv(&mut out, dataset.batch()).unwrap();
        assert_eq!(out.bytes, expected_bytes, "export paths diverged");
    });

    let stages = [
        Stage {
            name: "store",
            rows_ms: rows_store,
            columnar_ms: columnar_store,
        },
        Stage {
            name: "tokenize",
            rows_ms: rows_tokenize,
            columnar_ms: columnar_tokenize,
        },
        Stage {
            name: "export_csv",
            rows_ms: rows_export,
            columnar_ms: columnar_export,
        },
    ];

    // The acceptance path is synthesize → store → tokenize; export
    // rides along as an informative extra.
    let path_rows = rows_store + rows_tokenize;
    let path_columnar = columnar_store + columnar_tokenize;

    println!();
    println!(
        "{:<12} {:>12} {:>14} {:>9}",
        "stage", "rows (ms)", "columnar (ms)", "speedup"
    );
    for s in &stages {
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>8.2}x",
            s.name,
            s.rows_ms,
            s.columnar_ms,
            s.speedup()
        );
    }
    println!(
        "{:<12} {:>12.1} {:>14.1} {:>8.2}x",
        "store+tok",
        path_rows,
        path_columnar,
        path_rows / path_columnar
    );
    println!();
    println!(
        "peak hand-off working set: rows path {} rows, columnar path {} rows",
        n,
        CHUNK_ROWS.min(n)
    );

    let mut out = String::from("{\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"traces\": {n},\n"));
    out.push_str(&format!("    \"runs\": {RUNS},\n"));
    out.push_str(&format!("    \"chunk_rows\": {CHUNK_ROWS},\n"));
    out.push_str(&format!("    \"csv_bytes\": {expected_bytes}\n"));
    out.push_str("  },\n");
    out.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("      \"rows_ms\": {:.3},\n", s.rows_ms));
        out.push_str(&format!("      \"columnar_ms\": {:.3},\n", s.columnar_ms));
        out.push_str(&format!("      \"speedup\": {:.2}\n", s.speedup()));
        out.push_str(if i + 1 == stages.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"synthesize_store_tokenize\": {\n");
    out.push_str(&format!("    \"rows_ms\": {path_rows:.3},\n"));
    out.push_str(&format!("    \"columnar_ms\": {path_columnar:.3},\n"));
    out.push_str(&format!(
        "    \"speedup\": {:.2}\n",
        path_rows / path_columnar
    ));
    out.push_str("  },\n");
    out.push_str("  \"peak_handoff_rows\": {\n");
    out.push_str(&format!("    \"rows_path\": {n},\n"));
    out.push_str(&format!("    \"columnar_path\": {}\n", CHUNK_ROWS.min(n)));
    out.push_str("  }\n}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_pipeline.json");
    fs::write(&path, out).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());
}
