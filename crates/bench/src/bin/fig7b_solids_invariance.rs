//! Fig. 7(b) — the same P2 subsequence run with three different
//! solids (NABH4 / CSTI / GENTISTIC).
//!
//! The paper's claim to reproduce: the current profiles do *not* vary
//! with the solid (pairwise Pearson correlation > 0.97), supporting
//! the conclusion that the power variation comes from the trajectory,
//! not the chemistry. Different solids only change which powder the
//! Quantos doses; the pick-place-return trajectory (and the ~25 g vial
//! payload) is the same.

use rad_bench::{downsample, sparkline};
use rad_power::{signal, TrajectorySegment, Ur3e};
use rad_workloads::SOLIDS;

/// The Fig. 7(b) subsequence: pick the vial from the rack, place it in
/// the Quantos, return to home (legs L0→L1→L2→L3, then back L3→L4→L5).
fn subsequence() -> Vec<TrajectorySegment> {
    (0..5)
        .map(|i| TrajectorySegment::joint_move(Ur3e::named_pose(i), Ur3e::named_pose(i + 1), 1.0))
        .collect()
}

fn main() {
    println!("Fig. 7(b) reproduction: joint-1 current across solids");
    let arm = Ur3e::new();
    // Each solid run is a different lab session: a different noise seed
    // and a slightly different vial mass (solids have different
    // densities; a filled 20 mL vial stays ~25 g either way).
    let payloads = [0.0251, 0.0249, 0.0252];
    let profiles: Vec<Vec<f64>> = SOLIDS
        .iter()
        .zip(payloads)
        .enumerate()
        .map(|(i, (_, payload))| {
            arm.current_profile(&subsequence(), payload, 300 + i as u64)
                .joint_current(1)
        })
        .collect();

    println!();
    for (solid, series) in SOLIDS.iter().zip(&profiles) {
        println!("{:<10} {}", solid, sparkline(&downsample(series, 60)));
    }

    println!();
    println!("pairwise Pearson correlation (paper: exceeds 0.97):");
    let mut min_r: f64 = 1.0;
    for i in 0..SOLIDS.len() {
        for j in i + 1..SOLIDS.len() {
            let r = signal::pearson(&profiles[i], &profiles[j]).expect("equal-length profiles");
            min_r = min_r.min(r);
            println!("  {:<10} vs {:<10} r = {r:.4}", SOLIDS[i], SOLIDS[j]);
        }
    }
    assert!(
        min_r > 0.97,
        "solid identity must not change the current profile"
    );
    println!();
    println!("minimum correlation {min_r:.4} > 0.97 — the trajectory, not the");
    println!("solid, determines the power profile.");
}
