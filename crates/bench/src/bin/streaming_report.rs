//! Streaming detection-plane report: the sink-stage detectors at wire
//! speed, against their batch counterparts.
//!
//! A perplexity detector is fitted from a synthetic campaign's benign
//! supervised runs, then measured on two workloads built from the same
//! grammar (plain wall-clock timers, minimum over reps, like
//! `segment_report`):
//!
//! * **wire** — one long ambient trace stream (grammar-consistent
//!   traffic with periodic anomalous bursts) through
//!   [`StreamingPerplexity`] in real-time `Crossing` mode: rows/s,
//!   alerts raised, alerts/s, and the *peak resident window state* in
//!   bytes. The peak is self-checked to be identical on a short prefix
//!   of the stream — memory is bounded by the window, not the trace
//!   count (the acceptance criterion `BENCH_streaming.json` evidences).
//! * **overhead** — the same run-structured corpus scored both ways:
//!   batch `FittedDetector::score` per run vs one streaming `RunEnd`
//!   pass over the interleaved rows. Per-run scores are self-checked
//!   bit-identical; the ratio is the cost of scoring *as rows arrive*
//!   instead of after the fact.
//!
//! Results print as a table and are written to `BENCH_streaming.json`
//! at the repository root (the file EXPERIMENTS.md quotes). Scale with
//! `STREAMING_TRACES` (default 1,000,000; CI smoke uses a smaller
//! count).

use std::fs;
use std::time::Instant;

use rad_analysis::{AlertPolicy, StreamingPerplexity};
use rad_core::sink::SliceSource;
use rad_core::{
    Command, CommandType, DeviceId, Label, ProcedureKind, RunId, SimInstant, TraceId, TraceObject,
    TraceSink, TraceSource,
};
use rad_workloads::{fit_detector, CampaignBuilder};

/// Rows per accepted batch — the granularity a tracer tee hands over.
const CHUNK: usize = 4096;

/// Sliding window (in transitions) of the real-time stage.
const WINDOW: usize = 256;

/// One anomalous burst is injected every this many wire-stream rows.
const BURST_EVERY: usize = 10_000;

/// Length of each anomalous burst, in rows.
const BURST_LEN: usize = 32;

/// The wire alarm bar. The detector's Jenks calibration splits the
/// benign score clusters, so its threshold (~1.86 here) lands *inside*
/// the benign range — fine for run-end triage, hopeless as an ambient
/// alarm. The wire workload does what a deployment does: raises the
/// bar above the observed ambient baseline (~2.6 for the in-grammar
/// walk) and far below a burst spike (a 32-row unseen burst in a
/// 256-window scores ~14 under the 1e-6 epsilon floor).
const WIRE_THRESHOLD: f64 = 4.0;

/// Milliseconds for one repetition: the minimum over `reps` timed runs
/// after one warmup run.
fn time_ms<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// `n` rows of ambient wire traffic with a [`BURST_LEN`]-row anomalous
/// burst (commands stepping across the whole alphabet, so almost every
/// trigram is unseen) every [`BURST_EVERY`] rows. No run ids — the
/// stage scores it as one ambient stream, the pure windowed real-time
/// mode.
///
/// The ambient rows are a *greedy in-grammar walk*: from each bigram
/// context, the most frequent observed successor (ties to the lowest
/// token id). Naively tiling benign runs end to end would create
/// unseen "seam" trigrams at every boundary, holding the windowed
/// perplexity above the calibrated threshold permanently — the
/// edge-triggered alert would fire once and never re-arm. The walk
/// keeps every ambient transition inside the training grammar, so the
/// baseline is quiet and each burst is a clean threshold crossing.
fn wire_stream(benign: &[Vec<CommandType>], n: usize) -> Vec<TraceObject> {
    use std::collections::HashMap;
    let mut counts: HashMap<(CommandType, CommandType, CommandType), u64> = HashMap::new();
    for seq in benign {
        for w in seq.windows(3) {
            *counts.entry((w[0], w[1], w[2])).or_insert(0) += 1;
        }
    }
    let mut successor: HashMap<(CommandType, CommandType), (CommandType, u64)> = HashMap::new();
    for (&(a, b, c), &count) in &counts {
        let entry = successor.entry((a, b)).or_insert((c, 0));
        if count > entry.1 || (count == entry.1 && c.token_id() < entry.0.token_id()) {
            *entry = (c, count);
        }
    }
    let seed = benign
        .iter()
        .find(|s| s.len() >= 2)
        .expect("campaign produced a scoreable run");
    let mut context = (seed[0], seed[1]);
    let mut restart = 0usize; // rows of reseeding left to emit
    (0..n)
        .map(|i| {
            let ct = if i % BURST_EVERY < BURST_LEN {
                restart = 2; // reseed the walk once the burst ends
                CommandType::from_token_id((i * 7) % CommandType::all().len())
                    .expect("token id in range")
            } else if restart > 0 {
                restart -= 1;
                if restart == 1 {
                    seed[0]
                } else {
                    seed[1]
                }
            } else {
                successor.get(&context).map(|&(c, _)| c).unwrap_or(seed[0])
            };
            context = (context.1, ct);
            TraceObject::builder(
                TraceId(i as u64),
                SimInstant::from_micros(i as u64 * 250),
                DeviceId::primary(ct.device()),
                Command::nullary(ct),
            )
            .build()
        })
        .collect()
}

/// `n` rows of run-structured traffic: the benign runs tiled until the
/// row budget is spent, one run id per tiled sequence — the workload
/// both the batch scorer and the `RunEnd` stage judge run by run.
fn run_stream(benign: &[Vec<CommandType>], n: usize) -> (Vec<TraceObject>, Vec<Vec<CommandType>>) {
    let mut traces = Vec::with_capacity(n);
    let mut sequences = Vec::new();
    let mut id = 0u64;
    let mut run = 0u32;
    while traces.len() < n {
        let sequence = &benign[run as usize % benign.len()];
        for &ct in sequence {
            traces.push(
                TraceObject::builder(
                    TraceId(id),
                    SimInstant::from_micros(id * 250),
                    DeviceId::primary(ct.device()),
                    Command::nullary(ct),
                )
                .run(ProcedureKind::Unknown, RunId(run), Label::Unknown)
                .build(),
            );
            id += 1;
        }
        sequences.push(sequence.clone());
        run += 1;
    }
    (traces, sequences)
}

/// Drives `traces` through a fresh [`WIRE_THRESHOLD`]-barred stage
/// under `policy`, returning `(alerts raised, peak resident state
/// bytes)`.
fn drive(
    detector: &rad_analysis::detector::FittedDetector<CommandType>,
    policy: AlertPolicy,
    traces: &[TraceObject],
) -> (usize, usize) {
    let mut stage =
        StreamingPerplexity::new(detector, policy, Vec::new()).with_fixed_threshold(WIRE_THRESHOLD);
    let mut source = SliceSource::new(traces, CHUNK);
    let mut peak = 0usize;
    while let Some(batch) = source.next_batch().expect("slice source") {
        stage.accept(&batch).expect("stage accepts");
        peak = peak.max(stage.resident_state_bytes());
    }
    stage.finish().expect("stage finishes");
    (stage.into_sink().len(), peak)
}

fn main() {
    let n: usize = std::env::var("STREAMING_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    println!("streaming_report: {n} traces, window {WINDOW}, chunk {CHUNK}...");

    let dataset = CampaignBuilder::new(5).supervised_only().build();
    let detector = fit_detector(&dataset, 3).expect("campaign fits a detector");
    let benign: Vec<Vec<CommandType>> = dataset
        .command()
        .supervised_sequences()
        .into_iter()
        .filter(|(meta, _)| !meta.label().is_anomalous())
        .map(|(_, seq)| seq)
        .collect();

    // ---- wire: real-time crossing mode over the ambient stream ----
    let wire = wire_stream(&benign, n);
    let policy = AlertPolicy::Crossing { window: WINDOW };
    let (alerts, peak_bytes) = drive(&detector, policy, &wire);
    // Edge-triggered crossings: exactly one alert per injected burst
    // (the window drains long before the next burst re-arms it).
    assert_eq!(
        alerts,
        n.div_ceil(BURST_EVERY),
        "one alert per anomalous burst"
    );

    // Bounded-memory self-check: the peak over a short prefix equals
    // the peak over the whole stream. State scales with the window and
    // the open-run count (one ambient run here), never the row count.
    let prefix_rows = (4 * CHUNK).min(wire.len());
    let (_, prefix_peak) = drive(&detector, policy, &wire[..prefix_rows]);
    assert_eq!(
        peak_bytes, prefix_peak,
        "resident state grew with stream length"
    );

    let wire_ms = time_ms(3, || {
        let (got, _) = drive(&detector, policy, &wire);
        assert_eq!(got, alerts, "alert count is deterministic");
    });
    let wire_rows_per_s = n as f64 / (wire_ms / 1e3);
    let alerts_per_s = alerts as f64 / (wire_ms / 1e3);

    // ---- overhead: batch scoring vs the RunEnd streaming pass ----
    let (run_traces, sequences) = run_stream(&benign, n);
    let batch_scores: Vec<f64> = sequences
        .iter()
        .map(|seq| detector.score(seq).expect("benign runs score"))
        .collect();
    let batch_ms = time_ms(3, || {
        for seq in &sequences {
            let _ = detector.score(seq).expect("benign runs score");
        }
    });

    // Self-check: the streaming pass reproduces every batch score bit
    // for bit (the conformance suite's guarantee, re-verified here on
    // the bench corpus).
    let mut stage = StreamingPerplexity::new(&detector, AlertPolicy::RunEnd, Vec::new());
    let mut source = SliceSource::new(&run_traces, CHUNK);
    while let Some(batch) = source.next_batch().expect("slice source") {
        stage.accept(&batch).expect("stage accepts");
    }
    stage.finish().expect("stage finishes");
    assert_eq!(stage.completed_runs().len(), batch_scores.len());
    for (score, batch) in stage.completed_runs().iter().zip(&batch_scores) {
        assert_eq!(
            score.score.to_bits(),
            batch.to_bits(),
            "streaming != batch on run {:?}",
            score.run_id
        );
    }

    let streaming_ms = time_ms(3, || {
        let mut stage = StreamingPerplexity::new(&detector, AlertPolicy::RunEnd, Vec::new());
        let mut source = SliceSource::new(&run_traces, CHUNK);
        while let Some(batch) = source.next_batch().expect("slice source") {
            stage.accept(&batch).expect("stage accepts");
        }
        stage.finish().expect("stage finishes");
    });
    let overhead = streaming_ms / batch_ms;
    let streaming_rows_per_s = run_traces.len() as f64 / (streaming_ms / 1e3);

    println!();
    println!("{:<28} {:>12} {:>16}", "workload", "ms", "rows/s");
    println!(
        "{:<28} {:>12.1} {:>16.0}",
        "wire (crossing w=256)", wire_ms, wire_rows_per_s
    );
    println!(
        "{:<28} {:>12.1} {:>16.0}",
        "streaming (run-end)", streaming_ms, streaming_rows_per_s
    );
    println!(
        "{:<28} {:>12.1} {:>16}",
        "batch (score per run)", batch_ms, "-"
    );
    println!();
    println!("wire alerts: {alerts} ({alerts_per_s:.0} alerts/s at this rate)");
    println!("peak resident window state: {peak_bytes} bytes (bounded by window, not rows)");
    println!(
        "streaming vs batch overhead: {overhead:.2}x over {} runs",
        sequences.len()
    );

    let mut out = String::from("{\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"traces\": {n},\n"));
    out.push_str(&format!("    \"chunk\": {CHUNK},\n"));
    out.push_str(&format!("    \"window\": {WINDOW},\n"));
    out.push_str(&format!("    \"runs\": {}\n", sequences.len()));
    out.push_str("  },\n");
    out.push_str("  \"wire\": {\n");
    out.push_str(&format!("    \"ms\": {wire_ms:.3},\n"));
    out.push_str(&format!("    \"rows_per_s\": {wire_rows_per_s:.0},\n"));
    out.push_str(&format!("    \"alerts\": {alerts},\n"));
    out.push_str(&format!("    \"alerts_per_s\": {alerts_per_s:.1},\n"));
    out.push_str(&format!("    \"peak_resident_bytes\": {peak_bytes}\n"));
    out.push_str("  },\n");
    out.push_str("  \"overhead\": {\n");
    out.push_str(&format!("    \"batch_ms\": {batch_ms:.3},\n"));
    out.push_str(&format!("    \"streaming_ms\": {streaming_ms:.3},\n"));
    out.push_str(&format!(
        "    \"streaming_rows_per_s\": {streaming_rows_per_s:.0},\n"
    ));
    out.push_str(&format!("    \"ratio\": {overhead:.3}\n"));
    out.push_str("  }\n}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_streaming.json");
    fs::write(&path, out).expect("write BENCH_streaming.json");
    println!("wrote {}", path.display());
}
