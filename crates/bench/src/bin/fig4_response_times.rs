//! Fig. 4 — response-time box plots for the N9 `ARM` command.
//!
//! Six joystick button-press sequences are replayed in each deployment
//! mode. The paper reports: DIRECT and REMOTE both under 10 ms on
//! average, REMOTE ≈ DIRECT + ~2 ms with occasional spikes past 30 ms,
//! and the Azure CLOUD replay (footnote 1) around 60 ms — an order of
//! magnitude above local modes, an order of magnitude below robot
//! motion times.

use rad_bench::BoxStats;
use rad_core::{CommandType, TraceMode};
use rad_middlebox::{Middlebox, ModeConfig};
use rad_workloads::{procedures, Session};

fn arm_response_times_ms(mode: TraceMode, sequence: usize) -> Vec<f64> {
    let seed = 1000 + sequence as u64;
    let middlebox = Middlebox::new(seed).with_modes(ModeConfig::all(mode));
    let mut session = Session::with_middlebox(middlebox, seed);
    procedures::joystick_session(&mut session, 12 + sequence * 2)
        .expect("joystick sequences run clean");
    let (dataset, _) = session.finish();
    dataset
        .traces()
        .iter()
        .filter(|t| t.command_type() == CommandType::Arm)
        .map(|t| t.response_time().as_millis_f64())
        .collect()
}

fn main() {
    println!("Fig. 4 reproduction: N9 ARM response times (ms) per joystick sequence");
    println!(
        "{:<10} {:<4} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>9}",
        "mode", "seq", "min", "q1", "med", "q3", "max", "mean", ">30ms"
    );
    let mut means = std::collections::BTreeMap::new();
    for mode in [TraceMode::Direct, TraceMode::Remote, TraceMode::Cloud] {
        let mut all = Vec::new();
        for sequence in 0..6 {
            let samples = arm_response_times_ms(mode, sequence);
            let stats = BoxStats::from(&samples);
            let spikes = samples.iter().filter(|v| **v > 30.0).count();
            println!(
                "{:<10} {:<4} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>9}",
                mode.to_string(),
                sequence,
                stats.min,
                stats.q1,
                stats.median,
                stats.q3,
                stats.max,
                stats.mean,
                spikes
            );
            all.extend(samples);
        }
        means.insert(mode.to_string(), BoxStats::from(&all).mean);
    }
    let direct = means["DIRECT"];
    let remote = means["REMOTE"];
    let cloud = means["CLOUD"];
    println!();
    println!("overall means: DIRECT {direct:.2} ms, REMOTE {remote:.2} ms, CLOUD {cloud:.2} ms");
    println!("REMOTE - DIRECT = {:.2} ms (paper: ~2 ms)", remote - direct);
    println!(
        "CLOUD / local ≈ {:.1}x (paper: ~an order of magnitude, ~60 ms)",
        cloud / remote
    );
}
