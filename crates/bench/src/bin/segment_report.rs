//! Segment-store report: sealed columnar segments against the
//! document store they compact, on the seal → scan → query workload.
//!
//! A deterministic synthetic trace log is sealed into binary segments
//! and the same log is loaded into a [`DocumentStore`] as JSON
//! documents (the WAL/checkpoint representation). Plain wall-clock
//! timers (minimum over reps, like `store_report`) then measure:
//!
//! * **seal** — encoding the whole log into segments, and the resulting
//!   on-disk bytes against the serialized-JSON bytes of the same rows;
//! * **full scan** — decoding every segment back into one
//!   [`TraceBatch`];
//! * **device query** — a device-filtered read: zone-map-pruned
//!   segment scan vs [`DocumentStore::find`] over the JSON documents.
//!
//! The log is clustered so each device occupies contiguous stretches
//! of capture time aligned with the segment size — the shape a real
//! campaign produces (procedures drive one device at a time) and the
//! shape zone maps exist to exploit. Both query paths must agree on
//! the matching row count (asserted). Results print as a table and are
//! written to `BENCH_segments.json` at the repository root (the file
//! EXPERIMENTS.md quotes).
//!
//! Scale with `SEGMENT_TRACES` (default 1,000,000; CI smoke uses a
//! smaller count).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use rad_core::{
    Command, CommandType, DeviceId, DeviceKind, Label, ProcedureKind, RunId, SimDuration,
    SimInstant, TraceBatch, TraceId, TraceObject, Value,
};
use rad_store::{DocumentStore, Filter, SegmentOptions, SegmentSet, SegmentWriter, TraceQuery};

/// Supervised runs in the synthetic campaign — the paper's 25.
const RUNS: usize = 25;

/// Milliseconds for one repetition: the minimum over `reps` timed runs
/// after one warmup run.
fn time_ms<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rad-segment-report-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deterministic synthetic trace log exercising every column, with
/// capture time clustered by device: each stretch of
/// `rows_per_segment` rows stays on one device, like a campaign whose
/// procedures drive one instrument at a time. Sealed with the default
/// options, every segment is device-homogeneous, so zone maps carry
/// real pruning power.
fn synthesize(n: usize, rows_per_segment: usize) -> Vec<TraceObject> {
    // Command types grouped by the device that owns them.
    let by_device: Vec<Vec<CommandType>> = DeviceKind::all()
        .iter()
        .map(|&kind| {
            (0..52)
                .map(|t| CommandType::from_token_id(t).unwrap())
                .filter(|ct| ct.device() == kind)
                .collect()
        })
        .collect();
    // Segment-aligned stretches at full scale; at smoke scale the
    // stretch shrinks so every device still appears in the log.
    let stretch = rows_per_segment.min(n.div_ceil(by_device.len())).max(1);
    let run_len = n.div_ceil(RUNS).max(1);
    (0..n)
        .map(|i| {
            let group = &by_device[(i / stretch) % by_device.len()];
            let ct = group[i % group.len()];
            let mut b = TraceObject::builder(
                TraceId(i as u64),
                SimInstant::from_micros(i as u64 * 250),
                DeviceId::primary(ct.device()),
                Command::new(ct, vec![Value::Int(i as i64 % 1000)]),
            )
            .return_value(Value::Bool(true))
            .response_time(SimDuration::from_micros(180 + (i as u64 % 40)));
            if i % 997 == 0 {
                b = b.exception("synthetic fault");
            }
            b = b.run(
                ProcedureKind::JoystickMovements,
                RunId((i / run_len) as u32),
                Label::Benign,
            );
            b.build()
        })
        .collect()
}

fn dir_bytes(dir: &PathBuf) -> u64 {
    fs::read_dir(dir)
        .expect("read segment dir")
        .map(|e| e.expect("dir entry").metadata().expect("metadata").len())
        .sum()
}

fn main() {
    let n: usize = std::env::var("SEGMENT_TRACES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let options = SegmentOptions::default();
    println!(
        "segment_report: {n} traces, {} rows/segment...",
        options.rows_per_segment
    );

    let traces = synthesize(n, options.rows_per_segment);
    let mut batch = TraceBatch::with_capacity(n);
    for t in &traces {
        batch.push_owned(t.clone());
    }

    // ---- seal: batch → segment files ----
    let seal_dir = tmpdir("seal");
    let seal_ms = time_ms(3, || {
        let _ = fs::remove_dir_all(&seal_dir);
        let mut writer = SegmentWriter::create(&seal_dir, options).expect("create writer");
        writer.seal_traces(&batch).expect("seal");
    });
    let segment_bytes = dir_bytes(&seal_dir);
    let set = SegmentSet::open(&seal_dir).expect("open segment set");
    assert_eq!(set.trace_rows(), n as u64, "sealed rows");

    // The JSON representation the document store persists (WAL frames
    // and checkpoints serialize documents this way).
    let docs: Vec<serde_json::Value> = traces
        .iter()
        .map(|t| serde_json::to_value(t).expect("traces serialize"))
        .collect();
    let json_bytes: u64 = docs
        .iter()
        .map(|d| serde_json::to_string(d).expect("docs serialize").len() as u64)
        .sum();

    let store = DocumentStore::new();
    for doc in &docs {
        store.insert("traces", doc.clone()).expect("insert doc");
    }
    drop(docs);

    // ---- full scan: every segment → one batch ----
    let full_scan_ms = time_ms(5, || {
        let got = set.read_all().expect("scan").into_batch();
        assert_eq!(got.len(), n, "full scan row count");
    });

    // ---- device query: pruned segment scan vs DocumentStore::find ----
    let target = DeviceKind::Tecan;
    let query = TraceQuery::new().device(target);
    let expected = query.matching_rows(&batch).len();
    assert!(expected > 0, "the clustered log covers every device");

    let probe = set.query(&query).expect("device query");
    let (scanned, pruned) = (probe.scanned(), probe.pruned());
    let segment_query_ms = time_ms(5, || {
        let scan = set.query(&query).expect("device query");
        assert_eq!(scan.rows(), expected as u64, "segment query row count");
    });

    let filter = Filter::eq("device.kind", serde_json::json!(format!("{target:?}")));
    let docstore_find_ms = time_ms(5, || {
        let hits = store.find("traces", &filter);
        assert_eq!(hits.len(), expected, "document query row count");
    });

    let size_reduction = json_bytes as f64 / segment_bytes as f64;
    let query_speedup = docstore_find_ms / segment_query_ms;
    let seal_rows_per_s = n as f64 / (seal_ms / 1e3);
    let scan_rows_per_s = n as f64 / (full_scan_ms / 1e3);

    println!();
    println!("{:<22} {:>14} {:>16}", "stage", "ms", "rows/s");
    println!("{:<22} {:>14.1} {:>16.0}", "seal", seal_ms, seal_rows_per_s);
    println!(
        "{:<22} {:>14.1} {:>16.0}",
        "full_scan", full_scan_ms, scan_rows_per_s
    );
    println!();
    println!(
        "size: segments {} MiB vs JSON {} MiB ({size_reduction:.2}x smaller)",
        segment_bytes / (1024 * 1024),
        json_bytes / (1024 * 1024),
    );
    println!(
        "device query ({target:?}, {expected} rows): segments {segment_query_ms:.1} ms \
         ({scanned} scanned, {pruned} pruned) vs DocumentStore::find {docstore_find_ms:.1} ms \
         = {query_speedup:.2}x"
    );

    let mut out = String::from("{\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"traces\": {n},\n"));
    out.push_str(&format!(
        "    \"rows_per_segment\": {},\n",
        options.rows_per_segment
    ));
    out.push_str(&format!("    \"segments\": {},\n", set.len()));
    out.push_str(&format!("    \"segment_bytes\": {segment_bytes},\n"));
    out.push_str(&format!("    \"json_bytes\": {json_bytes},\n"));
    out.push_str(&format!("    \"size_reduction\": {size_reduction:.2}\n"));
    out.push_str("  },\n");
    out.push_str("  \"stages\": [\n");
    out.push_str("    {\n");
    out.push_str("      \"name\": \"seal\",\n");
    out.push_str(&format!("      \"ms\": {seal_ms:.3},\n"));
    out.push_str(&format!("      \"rows_per_s\": {seal_rows_per_s:.0}\n"));
    out.push_str("    },\n");
    out.push_str("    {\n");
    out.push_str("      \"name\": \"full_scan\",\n");
    out.push_str(&format!("      \"ms\": {full_scan_ms:.3},\n"));
    out.push_str(&format!("      \"rows_per_s\": {scan_rows_per_s:.0}\n"));
    out.push_str("    }\n");
    out.push_str("  ],\n");
    out.push_str("  \"device_query\": {\n");
    out.push_str(&format!("    \"device\": \"{target:?}\",\n"));
    out.push_str(&format!("    \"matching_rows\": {expected},\n"));
    out.push_str(&format!("    \"segments_scanned\": {scanned},\n"));
    out.push_str(&format!("    \"segments_pruned\": {pruned},\n"));
    out.push_str(&format!("    \"segments_ms\": {segment_query_ms:.3},\n"));
    out.push_str(&format!(
        "    \"docstore_find_ms\": {docstore_find_ms:.3},\n"
    ));
    out.push_str(&format!("    \"speedup\": {query_speedup:.2}\n"));
    out.push_str("  }\n}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_segments.json");
    fs::write(&path, out).expect("write BENCH_segments.json");
    println!("wrote {}", path.display());

    let _ = fs::remove_dir_all(&seal_dir);
}
