//! Fig. 7(a) — joint-1 current profiles for the five `move_joints`
//! legs of procedure P2 (L0→L1 … L4→L5).
//!
//! The paper's observations to reproduce: each leg has a *unique*
//! current signature, and those signatures are *identical across
//! iterations* of the experiment — the command type alone does not
//! determine the profile, the trajectory does.

use rad_bench::{downsample, sparkline};
use rad_power::{signal, TrajectorySegment, Ur3e};

fn leg(i: usize) -> TrajectorySegment {
    TrajectorySegment::joint_move(Ur3e::named_pose(i), Ur3e::named_pose(i + 1), 1.0)
}

fn main() {
    println!("Fig. 7(a) reproduction: joint-1 current per P2 move_joints leg");
    let arm = Ur3e::new();

    let iteration_a: Vec<Vec<f64>> = (0..5)
        .map(|i| arm.current_profile(&[leg(i)], 0.025, 100).joint_current(1))
        .collect();
    let iteration_b: Vec<Vec<f64>> = (0..5)
        .map(|i| arm.current_profile(&[leg(i)], 0.025, 200).joint_current(1))
        .collect();

    println!();
    for (i, series) in iteration_a.iter().enumerate() {
        let stats = signal::peak_to_peak(series);
        println!(
            "L{}-L{}  {:<56} ticks={:<4} p2p={:.2} A",
            i,
            i + 1,
            sparkline(&downsample(series, 56)),
            series.len(),
            stats
        );
    }

    println!();
    println!("repeatability (same leg, independent runs) vs distinctness (other legs):");
    for (i, run) in iteration_b.iter().enumerate() {
        let own = signal::shape_correlation(run, &iteration_a[i]).expect("non-degenerate profiles");
        let best_other = (0..5)
            .filter(|j| *j != i)
            .map(|j| signal::shape_correlation(run, &iteration_a[j]).expect("non-degenerate"))
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  leg L{}-L{}: self r = {own:.3}, best other-leg r = {best_other:.3}  -> {}",
            i,
            i + 1,
            if own > best_other {
                "identifiable"
            } else {
                "CONFUSED"
            }
        );
        assert!(own > best_other, "every leg must match itself best");
    }
    println!();
    println!("paper: \"the current trace for each command instance is unique and");
    println!("these unique patterns remain identical across multiple iterations\"");
}
