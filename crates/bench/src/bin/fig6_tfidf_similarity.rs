//! Fig. 6 — pairwise TF-IDF cosine similarity of the 25 supervised
//! runs.
//!
//! The paper's block structure to reproduce:
//! - ids 0–11 (P4, joystick) mutually very similar;
//! - run 12 (a P1) closer to the joystick runs than to other P1 runs
//!   (it used the joystick heavily and never reached the
//!   Quantos/Tecan phase);
//! - runs 13–16 (P1) mutually similar, mostly above 0.8 — including
//!   the anomalous run 16, which crashed only after dosing began;
//! - runs 17–18 (both truncated P2 runs) similar to each other but
//!   dissimilar from the complete runs 19–20;
//! - runs 21–24 (P3) mutually similar in the 0.9–0.99 band, including
//!   the anomalous run 22 (crash at the very end).

use rad_analysis::TfIdf;
use rad_core::CommandType;
use rad_workloads::CampaignBuilder;

fn shade(v: f64) -> char {
    match v {
        v if v >= 0.9 => '█',
        v if v >= 0.8 => '▓',
        v if v >= 0.65 => '▒',
        v if v >= 0.5 => '░',
        _ => '·',
    }
}

fn block_stats(
    m: &[Vec<f64>],
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> (f64, f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut n = 0.0;
    for i in rows {
        for j in cols.clone() {
            if i == j {
                continue;
            }
            lo = lo.min(m[i][j]);
            hi = hi.max(m[i][j]);
            sum += m[i][j];
            n += 1.0;
        }
    }
    (lo, sum / n, hi)
}

fn main() {
    println!("Fig. 6 reproduction: 25x25 TF-IDF cosine similarity");
    let campaign = CampaignBuilder::new(42).supervised_only().build();
    let sequences = campaign.command().supervised_sequences();
    let documents: Vec<Vec<CommandType>> = sequences.iter().map(|(_, s)| s.clone()).collect();
    let model = TfIdf::fit(&documents).expect("25 non-empty documents");
    let m = model.similarity_matrix();

    println!();
    println!(
        "     {}",
        (0..25)
            .map(|j| format!("{:>2}", j % 10))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for (i, row) in m.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|v| format!(" {}", shade(*v))).collect();
        let label = sequences[i].0.kind().paper_id();
        println!("{i:>2} {label:<3}{}", cells.join(" "));
    }

    println!();
    println!("block summaries (min / mean / max off-diagonal):");
    let p4 = block_stats(&m, 0..12, 0..12);
    println!(
        "  P4 joystick block (0-11):      {:.2} / {:.2} / {:.2}  (paper: all quite similar)",
        p4.0, p4.1, p4.2
    );
    let r12_joy: f64 = (0..12).map(|j| m[12][j]).sum::<f64>() / 12.0;
    let r12_p1: f64 = (13..17).map(|j| m[12][j]).sum::<f64>() / 4.0;
    println!(
        "  run 12 vs P4 mean {:.2}, vs other P1 mean {:.2}  (paper: joystick-like)",
        r12_joy, r12_p1
    );
    let p1 = block_stats(&m, 13..17, 13..17);
    println!(
        "  P1 block (13-16):              {:.2} / {:.2} / {:.2}  (paper: mostly above 0.8)",
        p1.0, p1.1, p1.2
    );
    println!(
        "  17 vs 18: {:.2}  (paper: > 0.9, both truncated)",
        m[17][18]
    );
    println!(
        "  17/18 vs 19/20: {:.2} {:.2} {:.2} {:.2}  (paper: ~0.58)",
        m[17][19], m[17][20], m[18][19], m[18][20]
    );
    println!(
        "  19 vs 20: {:.2}  (paper: complete normal executions)",
        m[19][20]
    );
    let p3 = block_stats(&m, 21..25, 21..25);
    println!(
        "  P3 block (21-24):              {:.2} / {:.2} / {:.2}  (paper: 0.9-0.99)",
        p3.0, p3.1, p3.2
    );
}
