//! Fig. 7(c) — P5: the same move executed at 100 / 200 / 250 mm/s.
//!
//! The paper's observations to reproduce: the traces share the same
//! shape (same number of peaks, similar slopes), the amplitudes are
//! proportional to the velocity, and the 100 mm/s curve is
//! "stretched" — lower velocity means more ticks to cover the same
//! trajectory.

use rad_bench::{downsample, sparkline};
use rad_power::{signal, TrajectorySegment, Ur3e, Ur3eDynamics};

fn tour(v_mm_s: f64) -> [TrajectorySegment; 3] {
    // P5 tours three poses so the profile has several peaks, as in the
    // figure; the 240 mm lever maps linear tool speed to joint cruise
    // speed.
    let v = v_mm_s / 240.0;
    [
        TrajectorySegment::joint_move(Ur3e::named_pose(0), Ur3e::named_pose(2), v),
        TrajectorySegment::joint_move(Ur3e::named_pose(2), Ur3e::named_pose(4), v),
        TrajectorySegment::joint_move(Ur3e::named_pose(4), Ur3e::named_pose(0), v),
    ]
}

fn main() {
    println!("Fig. 7(c) reproduction: joint-1 current at different velocities");
    let arm = Ur3e::new();
    // A gravity-only twin isolates the velocity-dependent (dynamic)
    // part of each profile: the posture-driven baseline is identical
    // across velocities, so the amplitude claim is about the swings on
    // top of it.
    let mut static_params = Ur3eDynamics::new();
    static_params.inertial_term = false;
    static_params.friction_term = false;
    let gravity_only = Ur3e::with_dynamics(static_params);
    let velocities_mm_s = [100.0, 200.0, 250.0];
    let profiles: Vec<Vec<f64>> = velocities_mm_s
        .iter()
        .enumerate()
        .map(|(i, v)| {
            arm.current_profile(&tour(*v), 0.0, 500 + i as u64)
                .joint_current(1)
        })
        .collect();
    let dynamic_parts: Vec<Vec<f64>> = velocities_mm_s
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let full = arm
                .current_profile(&tour(*v), 0.0, 500 + i as u64)
                .joint_current(1);
            let base = gravity_only
                .current_profile(&tour(*v), 0.0, 500 + i as u64)
                .joint_current(1);
            full.iter().zip(base).map(|(f, b)| f - b).collect()
        })
        .collect();

    println!();
    for (v, series) in velocities_mm_s.iter().zip(&profiles) {
        println!(
            "{:>4} mm/s  {:<60} ticks={:<4} p2p={:.2} A  extrema={}",
            v,
            sparkline(&downsample(series, 58)),
            series.len(),
            signal::peak_to_peak(series),
            signal::extrema_count(series, 0.15),
        );
    }

    let slow = &profiles[0];
    let mid = &profiles[1];
    let fast = &profiles[2];
    println!();
    println!("checks:");
    assert!(slow.len() > mid.len() && mid.len() > fast.len());
    println!(
        "  duration: {} > {} > {} ticks — the 100 mm/s curve is stretched",
        slow.len(),
        mid.len(),
        fast.len()
    );
    let (a1, a2, a3) = (
        signal::peak_to_peak(&dynamic_parts[0]),
        signal::peak_to_peak(&dynamic_parts[1]),
        signal::peak_to_peak(&dynamic_parts[2]),
    );
    assert!(a1 < a2 && a2 < a3);
    println!(
        "  dynamic amplitude (profile minus gravity baseline): \
{a1:.2} < {a2:.2} < {a3:.2} A — grows with velocity"
    );
    let shape = signal::shape_correlation(slow, fast).expect("non-degenerate profiles");
    println!("  shape correlation 100 vs 250 mm/s (after stretch-normalizing): {shape:.3}");
    assert!(shape > 0.9, "the curves share a shape once stretched");
}
