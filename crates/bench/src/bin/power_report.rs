//! Power data-plane report: the columnar `PowerBlock` pipeline
//! against the row-oriented path it replaced, on the synthesize →
//! correlate workload the power experiments actually run (plus
//! resample, peak extraction, and CSV export as extra stages).
//!
//! Two implementations of the same analysis run over the same
//! multi-run telemetry campaign (plain wall-clock timers, minimum
//! over reps, like `pipeline_report`):
//!
//! * **rows** — the pre-refactor shape: synthesis materializes one
//!   122-field `PowerSample` struct per tick, every analysis gathers
//!   a joint's current by striding across those structs, correlation
//!   runs the two-pass Pearson per pair, and peak extraction makes
//!   four separate passes;
//! * **columnar** — the `PowerBlock` plane: the fused writer scatters
//!   straight into contiguous lanes (evaluating the dynamics once per
//!   tick), correlation reuses per-run moments across all pairs of
//!   zero-copy lane slices, peaks come from one fused pass, and CSV
//!   streams without materializing rows.
//!
//! Both paths produce identical numbers (asserted; synthesis is
//! bit-identical by the golden tests). The headline gate is the
//! `synth+correlate` composite: ISSUE.md requires ≥2x at ≥10⁶ ticks.
//! Results print as a table and are written to `BENCH_power.json` at
//! the repository root (the file EXPERIMENTS.md quotes).
//!
//! Scale with `POWER_TICKS` (default 1,000,000; CI smoke uses a
//! smaller count).

use std::fs;
use std::io::Write;
use std::time::Instant;

use rad_power::{
    signal, CurrentProfile, PowerSample, ProfileRequest, TrajectorySegment, Ur3e,
    DEFAULT_CHUNK_TICKS, TICK_SECONDS,
};
use rad_store::csv::{power_to_csv, write_power_csv};

/// Telemetry runs in the synthetic campaign — the paper's 25
/// supervised runs.
const RUNS: usize = 25;
/// Joint whose current lane the single-channel stages read (the
/// shoulder, the paper's most informative channel).
const JOINT: usize = 1;
/// All six joint channels, correlated run-against-run like Fig. 7.
const JOINTS: usize = 6;
/// Points every run is resampled to before shape comparison.
const RESAMPLE_POINTS: usize = 4096;
/// Runs exported in the CSV stage (export is formatting-bound; a few
/// runs measure it without dominating the report).
const EXPORT_RUNS: usize = 2;

/// Milliseconds for one repetition: the minimum over `reps` timed runs
/// after one warmup run.
fn time_ms<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Builds `RUNS` profile requests totalling at least `target_ticks`:
/// slow cycles through the named poses, with per-run payload and seed
/// variation so no two runs share a noise stream. Every run executes
/// the same trajectory (iterations of one procedure, like Fig. 7a's
/// repeated solubility runs), so all runs have the same tick count.
fn requests(target_ticks: usize) -> Vec<ProfileRequest> {
    let per_run = target_ticks.div_ceil(RUNS);
    (0..RUNS)
        .map(|run| {
            let mut segments = Vec::new();
            let mut ticks = 0usize;
            let mut leg = 0usize;
            while ticks < per_run {
                let from = Ur3e::named_pose(leg % 6);
                let to = Ur3e::named_pose((leg + 1) % 6);
                let seg = TrajectorySegment::joint_move(from, to, 0.05);
                ticks += (seg.duration() / TICK_SECONDS).ceil() as usize + 1;
                segments.push(seg);
                leg += 1;
            }
            ProfileRequest {
                segments,
                payload_kg: 0.25 * (run % 4) as f64,
                seed: 0xBEEF + run as u64,
            }
        })
        .collect()
}

/// The pre-refactor gather: one joint's current, striding across the
/// 122-field row structs exactly as `joint_current` did.
fn gather_joint(samples: &[PowerSample], joint: usize) -> Vec<f64> {
    samples.iter().map(|s| s.current_actual[joint]).collect()
}

/// Counts bytes without retaining them — the export stage's output is
/// measured, not stored.
struct CountingWrite {
    bytes: u64,
}

impl Write for CountingWrite {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Stage {
    name: &'static str,
    rows_ms: f64,
    columnar_ms: f64,
}

impl Stage {
    fn speedup(&self) -> f64 {
        self.rows_ms / self.columnar_ms
    }
}

fn main() {
    let target: usize = std::env::var("POWER_TICKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let reqs = requests(target);
    println!("power_report: target {target} ticks, {RUNS} runs...");

    let arm = Ur3e::new();

    // Materialize both representations once for the analysis stages.
    let profiles: Vec<CurrentProfile> = reqs
        .iter()
        .map(|r| arm.current_profile(&r.segments, r.payload_kg, r.seed))
        .collect();
    let row_profiles: Vec<Vec<PowerSample>> = reqs
        .iter()
        .map(|r| arm.current_profile_rows(&r.segments, r.payload_kg, r.seed))
        .collect();
    let ticks: usize = profiles.iter().map(CurrentProfile::len).sum();
    // Equal-length runs keep the per-pair shape_correlation baseline
    // and the matrix kernel numerically comparable (the old API's
    // resample-to-min-length is the identity).
    assert!(
        profiles.iter().all(|p| p.len() == profiles[0].len()),
        "runs must be equal length"
    );
    println!("synthesized {ticks} ticks ({} per run avg)", ticks / RUNS);

    // ---- synth: trajectory → telemetry ----
    // Rows: one PowerSample struct per tick, dynamics evaluated twice
    // (torques, then currents). Columnar: fused scatter into lanes.
    let rows_synth = time_ms(2, || {
        let synthesized: Vec<Vec<PowerSample>> = reqs
            .iter()
            .map(|r| arm.current_profile_rows(&r.segments, r.payload_kg, r.seed))
            .collect();
        let total: usize = synthesized.iter().map(Vec::len).sum();
        assert_eq!(total, ticks);
    });
    let columnar_synth = time_ms(2, || {
        let synthesized = arm.current_profiles_par(&reqs);
        let total: usize = synthesized.iter().map(CurrentProfile::len).sum();
        assert_eq!(total, ticks);
    });

    // ---- correlate: all run pairs, all six joints (Fig. 7 style) ----
    // Rows: gather each run's joint current off the structs, then the
    // old per-pair `shape_correlation` — which resamples BOTH series
    // inside the pair loop (an identity resample here, but the old
    // API paid it every time) before the two-pass Pearson. Columnar:
    // zero-copy lane slices into the moment-reusing matrix kernel.
    let pairs = RUNS * (RUNS - 1) / 2;
    let mut rows_matrix = Vec::new();
    let rows_correlate = time_ms(2, || {
        rows_matrix.clear();
        for joint in 0..JOINTS {
            let gathered: Vec<Vec<f64>> = row_profiles
                .iter()
                .map(|s| gather_joint(s, joint))
                .collect();
            for i in 0..RUNS {
                for j in i + 1..RUNS {
                    rows_matrix.push(
                        signal::reference::shape_correlation(&gathered[i], &gathered[j]).unwrap(),
                    );
                }
            }
        }
    });
    let mut columnar_matrix = Vec::new();
    let columnar_correlate = time_ms(2, || {
        columnar_matrix.clear();
        for joint in 0..JOINTS {
            let lanes: Vec<&[f64]> = profiles.iter().map(|p| p.current_lane(joint)).collect();
            let matrix = signal::pearson_matrix(&lanes).unwrap();
            for (i, row) in matrix.iter().enumerate() {
                columnar_matrix.extend_from_slice(&row[i + 1..]);
            }
        }
    });
    assert_eq!(rows_matrix.len(), pairs * JOINTS);
    for (a, b) in rows_matrix.iter().zip(&columnar_matrix) {
        assert!((a - b).abs() < 1e-9, "correlation divergence: {a} vs {b}");
    }

    // ---- synth+correlate: the composite the ISSUE gates on ----
    let rows_composite = time_ms(2, || {
        let synthesized: Vec<Vec<PowerSample>> = reqs
            .iter()
            .map(|r| arm.current_profile_rows(&r.segments, r.payload_kg, r.seed))
            .collect();
        let mut acc = 0.0f64;
        for joint in 0..JOINTS {
            let gathered: Vec<Vec<f64>> =
                synthesized.iter().map(|s| gather_joint(s, joint)).collect();
            for i in 0..RUNS {
                for j in i + 1..RUNS {
                    acc +=
                        signal::reference::shape_correlation(&gathered[i], &gathered[j]).unwrap();
                }
            }
        }
        assert!(acc.is_finite());
    });
    let columnar_composite = time_ms(2, || {
        let synthesized = arm.current_profiles_par(&reqs);
        let mut acc = 0.0f64;
        for joint in 0..JOINTS {
            let lanes: Vec<&[f64]> = synthesized.iter().map(|p| p.current_lane(joint)).collect();
            let matrix = signal::pearson_matrix(&lanes).unwrap();
            for (i, row) in matrix.iter().enumerate() {
                acc += row[i + 1..].iter().sum::<f64>();
            }
        }
        assert!(acc.is_finite());
    });

    // ---- resample: every run to a common grid ----
    let rows_resample = time_ms(3, || {
        let mut total = 0usize;
        for samples in &row_profiles {
            let series = gather_joint(samples, JOINT);
            total += signal::reference::resample(&series, RESAMPLE_POINTS).len();
        }
        assert_eq!(total, RUNS * RESAMPLE_POINTS);
    });
    let columnar_resample = time_ms(3, || {
        let mut buf = Vec::new();
        let mut total = 0usize;
        for p in &profiles {
            signal::resample_into(p.current_lane(JOINT), RESAMPLE_POINTS, &mut buf);
            total += buf.len();
        }
        assert_eq!(total, RUNS * RESAMPLE_POINTS);
    });

    // ---- peaks: per-run current-signature statistics ----
    let rows_peaks = time_ms(3, || {
        let mut acc = 0.0f64;
        for samples in &row_profiles {
            let series = gather_joint(samples, JOINT);
            acc += signal::reference::extrema_count(&series, 0.05) as f64;
            acc += signal::reference::peak_to_peak(&series);
            acc += signal::reference::mean_abs(&series);
            acc += signal::reference::rms(&series);
        }
        assert!(acc.is_finite());
    });
    let columnar_peaks = time_ms(3, || {
        let mut acc = 0.0f64;
        for p in &profiles {
            let stats = signal::peak_stats(p.current_lane(JOINT), 0.05);
            acc += stats.extrema as f64 + stats.peak_to_peak + stats.mean_abs + stats.rms;
        }
        assert!(acc.is_finite());
    });

    // ---- export: profiles → RAD power CSV ----
    let mut csv_bytes = 0u64;
    let rows_export = time_ms(2, || {
        csv_bytes = 0;
        for samples in row_profiles.iter().take(EXPORT_RUNS) {
            csv_bytes += power_to_csv(samples).len() as u64;
        }
    });
    let columnar_export = time_ms(2, || {
        let mut sink = CountingWrite { bytes: 0 };
        for p in profiles.iter().take(EXPORT_RUNS) {
            write_power_csv(&mut sink, p.block()).unwrap();
        }
        assert_eq!(sink.bytes, csv_bytes);
    });

    let stages = [
        Stage {
            name: "synth",
            rows_ms: rows_synth,
            columnar_ms: columnar_synth,
        },
        Stage {
            name: "correlate",
            rows_ms: rows_correlate,
            columnar_ms: columnar_correlate,
        },
        Stage {
            name: "resample",
            rows_ms: rows_resample,
            columnar_ms: columnar_resample,
        },
        Stage {
            name: "peaks",
            rows_ms: rows_peaks,
            columnar_ms: columnar_peaks,
        },
        Stage {
            name: "export_csv",
            rows_ms: rows_export,
            columnar_ms: columnar_export,
        },
    ];

    println!();
    println!(
        "{:<14} {:>12} {:>14} {:>9}",
        "stage", "rows (ms)", "columnar (ms)", "speedup"
    );
    for s in &stages {
        println!(
            "{:<14} {:>12.1} {:>14.1} {:>8.2}x",
            s.name,
            s.rows_ms,
            s.columnar_ms,
            s.speedup()
        );
    }
    println!(
        "{:<14} {:>12.1} {:>14.1} {:>8.2}x",
        "synth+corr",
        rows_composite,
        columnar_composite,
        rows_composite / columnar_composite
    );
    println!();
    println!(
        "peak hand-off working set: rows path {} ticks, columnar path {} ticks",
        ticks / RUNS,
        DEFAULT_CHUNK_TICKS
    );

    let mut out = String::from("{\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"ticks\": {ticks},\n"));
    out.push_str(&format!("    \"runs\": {RUNS},\n"));
    out.push_str(&format!("    \"pairs\": {pairs},\n"));
    out.push_str(&format!("    \"export_runs\": {EXPORT_RUNS},\n"));
    out.push_str(&format!("    \"csv_bytes\": {csv_bytes}\n"));
    out.push_str("  },\n");
    out.push_str("  \"stages\": [\n");
    for (i, s) in stages.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("      \"rows_ms\": {:.3},\n", s.rows_ms));
        out.push_str(&format!("      \"columnar_ms\": {:.3},\n", s.columnar_ms));
        out.push_str(&format!("      \"speedup\": {:.2}\n", s.speedup()));
        out.push_str(if i + 1 == stages.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"synth_correlate\": {\n");
    out.push_str(&format!("    \"rows_ms\": {rows_composite:.3},\n"));
    out.push_str(&format!("    \"columnar_ms\": {columnar_composite:.3},\n"));
    out.push_str(&format!(
        "    \"speedup\": {:.2}\n",
        rows_composite / columnar_composite
    ));
    out.push_str("  },\n");
    out.push_str("  \"peak_handoff_ticks\": {\n");
    out.push_str(&format!("    \"rows_path\": {},\n", ticks / RUNS));
    out.push_str(&format!("    \"columnar_path\": {DEFAULT_CHUNK_TICKS}\n"));
    out.push_str("  }\n}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_power.json");
    fs::write(&path, out).expect("write BENCH_power.json");
    println!("wrote {}", path.display());
}
