//! Synthesizes the full RAD bundle and writes it to disk — the
//! "open-source the dataset" deliverable, regenerable at any scale.
//!
//! ```sh
//! cargo run -p rad-bench --release --bin export_rad -- [dir] [scale]
//! ```
//!
//! Defaults: `./rad-dataset`, scale 0.1 (≈12.9 k trace objects). Pass
//! scale `1.0` for the full 128,785-trace corpus.

use std::path::PathBuf;

use rad_store::export_rad;
use rad_workloads::CampaignBuilder;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = PathBuf::from(args.next().unwrap_or_else(|| "rad-dataset".into()));
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.1);

    println!("synthesizing a {scale}x campaign...");
    let campaign = CampaignBuilder::new(42).scale(scale).build();
    let (commands, power, journal) = campaign.into_parts();
    println!(
        "  {} trace objects, {} runs ({} supervised), {} power recordings",
        commands.len(),
        commands.runs().len(),
        journal.len(),
        power.recordings().len()
    );

    // The paper stores only a fraction of quiescent power entries.
    let compact = power.compacted(false);
    println!(
        "  power entries: {} raw -> {} after the quiescent-storage policy",
        power.total_entries(),
        compact.total_entries()
    );

    let files = export_rad(&commands, &compact, &dir).expect("bundle writes cleanly");
    println!("wrote {files} files under {}", dir.display());
    println!("  commands.csv  runs.csv  power/*.csv  MANIFEST.json");
}
