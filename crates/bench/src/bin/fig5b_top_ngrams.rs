//! Fig. 5(b) — the top ten bigrams, trigrams, four-grams and
//! five-grams of the command dataset.
//!
//! The paper's headline n-grams are C9 polling patterns
//! (`ARM MVNG`, `MVNG MVNG`, `CURR MOVE`, ...) and Tecan `Q` runs —
//! both artifacts of the Hein stack's busy-wait loops, which the
//! simulated workloads reproduce.

use rad_analysis::NgramCounter;
use rad_bench::session_corpus;
use rad_workloads::CampaignBuilder;

fn main() {
    println!("Fig. 5(b) reproduction: synthesizing the campaign corpus...");
    // A 25%-scale campaign has the same n-gram mix at a quarter the
    // wall-clock; pass --full for the whole corpus.
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1.0 } else { 0.25 };
    let campaign = CampaignBuilder::new(42).scale(scale).build();

    // Per-run sentences: n-grams must not straddle two lab sessions.
    let command = campaign.command();
    let sentences = session_corpus(command);
    println!(
        "{} sessions, {} commands total",
        sentences.len(),
        command.len()
    );

    for n in 2..=5 {
        let mut counter = NgramCounter::new(n);
        for sentence in &sentences {
            counter.observe(sentence);
        }
        println!();
        println!(
            "== top 10 {n}-grams (of {} distinct) ==",
            counter.distinct()
        );
        for (gram, count) in counter.top_k(10) {
            println!("  {:<52} {count:>8}", gram.join(" "));
        }
    }
}
