//! Fig. 7(d) — P6: the same move carrying 20 g / 500 g / 1000 g.
//!
//! The paper's observation to reproduce: lifting heavier objects draws
//! more power. Weights are never command arguments — they are an
//! artifact of what the arm grabbed — so a power-based IDS sees them
//! while a command-based IDS cannot.

use rad_bench::{downsample, sparkline};
use rad_power::{signal, TrajectorySegment, Ur3e};

fn main() {
    println!("Fig. 7(d) reproduction: joint-1 current at different payloads");
    let arm = Ur3e::new();
    let payloads_g = [20.0, 500.0, 1000.0];
    let profiles: Vec<Vec<f64>> = payloads_g
        .iter()
        .enumerate()
        .map(|(i, grams)| {
            let out = TrajectorySegment::joint_move(Ur3e::named_pose(1), Ur3e::named_pose(2), 0.8);
            let back = TrajectorySegment::joint_move(Ur3e::named_pose(2), Ur3e::named_pose(1), 0.8);
            // Joint 1 (shoulder lift) carries the gravity load, so the
            // payload shifts the whole profile, as in the figure.
            arm.current_profile(&[out, back], grams / 1000.0, 700 + i as u64)
                .joint_current(1)
        })
        .collect();

    println!();
    let mut means = Vec::new();
    for (grams, series) in payloads_g.iter().zip(&profiles) {
        let mean = signal::mean_abs(series);
        means.push(mean);
        println!(
            "{:>5} g  {:<60} mean|I|={mean:.2} A  p2p={:.2} A",
            grams,
            sparkline(&downsample(series, 58)),
            signal::peak_to_peak(series),
        );
    }

    println!();
    assert!(means[0] < means[1] && means[1] < means[2]);
    println!(
        "mean |current|: {:.2} < {:.2} < {:.2} A — heavier payloads draw more power,",
        means[0], means[1], means[2]
    );
    println!("and the payload never appears in any command argument.");
}
