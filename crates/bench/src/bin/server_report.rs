//! Lab-service report: the `radd` server plane under concurrent
//! tenants, over real TCP.
//!
//! Three headline numbers, written to `BENCH_server.json` at the
//! repository root:
//!
//! * **sessions/s** — short-lived sessions (connect, `Hello`, `Bye`)
//!   against one tenant, back to back: the admission + handshake cost.
//! * **p99 issue latency** — `SERVER_TENANTS` concurrent tenants each
//!   issue `SERVER_CMDS` commands on their own rig; per-issue wire
//!   round-trip latency is merged across tenants and summarized at
//!   p50/p99.
//! * **drain flush time** — the graceful drain (stop accepting, flush
//!   and checkpoint every tenant's durable store) with all tenants'
//!   rows still buffered.
//!
//! Scale with `SERVER_TENANTS` (default 4), `SERVER_CMDS` (default
//! 200), and `SERVER_SESSIONS` (default 64; CI smoke uses less).

use std::fs;
use std::time::{Duration, Instant};

use rad_core::{Command, CommandType};
use rad_middlebox::rpc::RetryPolicy;
use rad_middlebox::server::{LabService, ServerConfig, SocketTransport};
use rad_workloads::RemoteSession;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A retry policy that will not time out a loaded debug-build server.
fn policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(30),
        ..RetryPolicy::default()
    }
}

fn command(i: usize) -> Command {
    if i == 0 {
        Command::nullary(CommandType::InitC9)
    } else {
        Command::nullary(CommandType::Mvng)
    }
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let tenants = env_usize("SERVER_TENANTS", 4);
    let cmds = env_usize("SERVER_CMDS", 200);
    let sessions = env_usize("SERVER_SESSIONS", 64);

    let data_dir = std::env::temp_dir().join(format!("rad-server-report-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let handle = LabService::new(ServerConfig {
        max_sessions: tenants.max(1),
        backlog: tenants.max(1),
        seed: 42,
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    })
    .serve_tcp("127.0.0.1:0")
    .expect("serve");
    let addr = handle.local_addr().expect("addr").to_string();

    // ---- sessions/s: handshake-only sessions, back to back ----
    let started = Instant::now();
    for _ in 0..sessions {
        let transport = SocketTransport::connect_tcp(&addr).expect("connect");
        let session = RemoteSession::connect(transport, "handshake", policy()).expect("hello");
        session.bye().expect("bye");
    }
    let sessions_per_s = sessions as f64 / started.elapsed().as_secs_f64();

    // ---- p99 issue latency at N concurrent tenants ----
    let started = Instant::now();
    let legs: Vec<_> = (0..tenants)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let transport = SocketTransport::connect_tcp(&addr).expect("connect");
                let mut session =
                    RemoteSession::connect(transport, &format!("tenant-{t}"), policy())
                        .expect("hello");
                let mut lat_us = Vec::with_capacity(cmds);
                for i in 0..cmds {
                    let cmd = command(i);
                    let at = Instant::now();
                    session.issue(&cmd).expect("issue").expect("no fault");
                    lat_us.push(at.elapsed().as_micros() as u64);
                }
                session.bye().expect("bye");
                lat_us
            })
        })
        .collect();
    let mut lat_us: Vec<u64> = legs
        .into_iter()
        .flat_map(|leg| leg.join().expect("tenant leg"))
        .collect();
    let issue_wall = started.elapsed();
    lat_us.sort_unstable();
    let issues_total = lat_us.len();
    let p50 = percentile_us(&lat_us, 0.50);
    let p99 = percentile_us(&lat_us, 0.99);
    let mean = if lat_us.is_empty() {
        0.0
    } else {
        lat_us.iter().sum::<u64>() as f64 / lat_us.len() as f64
    };
    let issues_per_s = issues_total as f64 / issue_wall.as_secs_f64();

    // ---- graceful drain with every tenant's rows still buffered ----
    let report = handle.drain().expect("drain");
    let drain_ms = report.flush_time.as_secs_f64() * 1e3;
    let rows_flushed: u64 = report.tenants.iter().map(|t| t.rows_flushed).sum();
    let _ = std::fs::remove_dir_all(&data_dir);

    println!(
        "{:<32} {:>14}",
        "sessions/s (hello+bye)",
        format!("{sessions_per_s:.0}")
    );
    println!(
        "{:<32} {:>14}",
        format!("issues/s ({tenants} tenants)"),
        format!("{issues_per_s:.0}")
    );
    println!("{:<32} {:>11} us", "issue latency p50", p50);
    println!("{:<32} {:>11} us", "issue latency p99", p99);
    println!("{:<32} {:>11.1} us", "issue latency mean", mean);
    println!("{:<32} {:>11.1} ms", "drain flush", drain_ms);
    println!(
        "tenants drained: {} ({} rows durable); {}",
        report.tenants.len(),
        rows_flushed,
        report.stats
    );
    assert_eq!(
        report.stats.issues, issues_total as u64,
        "every timed issue executed exactly once"
    );

    let mut out = String::from("{\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"tenants\": {tenants},\n"));
    out.push_str(&format!("    \"commands_per_tenant\": {cmds},\n"));
    out.push_str(&format!("    \"handshake_sessions\": {sessions}\n"));
    out.push_str("  },\n");
    out.push_str(&format!("  \"sessions_per_s\": {sessions_per_s:.1},\n"));
    out.push_str("  \"issue\": {\n");
    out.push_str(&format!("    \"total\": {issues_total},\n"));
    out.push_str(&format!("    \"per_s\": {issues_per_s:.0},\n"));
    out.push_str(&format!("    \"p50_us\": {p50},\n"));
    out.push_str(&format!("    \"p99_us\": {p99},\n"));
    out.push_str(&format!("    \"mean_us\": {mean:.1}\n"));
    out.push_str("  },\n");
    out.push_str("  \"drain\": {\n");
    out.push_str(&format!("    \"flush_ms\": {drain_ms:.3},\n"));
    out.push_str(&format!("    \"tenants\": {},\n", report.tenants.len()));
    out.push_str(&format!("    \"rows_flushed\": {rows_flushed}\n"));
    out.push_str("  }\n}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_server.json");
    fs::write(&path, out).expect("write BENCH_server.json");
    println!("wrote {}", path.display());
}
