//! Extension: every detector in the workspace on the Table I task.
//!
//! The paper evaluates only its perplexity models; this harness puts
//! the whole zoo side by side under the identical 5-fold protocol —
//! the three n-gram orders, the parameter-aware variant (future work:
//! "bring command arguments into the fold"), a from-scratch HMM
//! (future work: sequence models beyond n-grams), and the three
//! baselines. The ordering, not the absolute numbers, is the result —
//! see the closing commentary the binary prints.
//!
//! Every configuration is independent, so they evaluate concurrently
//! on scoped threads; results are joined in the fixed declaration
//! order, keeping the printed table identical to the sequential run.

use rad_analysis::{
    evaluate_classifier, labelled_runs, CommandTokenizer, ConfusionMatrix, HmmDetector,
    ParamTokenizer, PerplexityDetector, RareCommandDetector, RunLengthDetector,
    TransitionAllowlist,
};
use rad_core::CommandType;
use rad_workloads::CampaignBuilder;

type Row = (String, ConfusionMatrix);

fn main() {
    println!("Detector comparison on the 25 supervised runs (5-fold CV, seed 0)");
    let campaign = CampaignBuilder::new(42).supervised_only().build();
    let command_runs: Vec<(Vec<CommandType>, bool)> =
        labelled_runs(campaign.command(), &CommandTokenizer);
    let param_runs: Vec<(Vec<String>, bool)> = labelled_runs(campaign.command(), &ParamTokenizer);

    let configs: Vec<Box<dyn FnOnce() -> Row + Send>> = vec![
        Box::new(|| perplexity_row(2, &command_runs, "perplexity 2-gram")),
        Box::new(|| perplexity_row(3, &command_runs, "perplexity 3-gram")),
        Box::new(|| perplexity_row(4, &command_runs, "perplexity 4-gram")),
        Box::new(|| perplexity_row(3, &param_runs, "perplexity 3-gram+params")),
        Box::new(|| {
            let mut hmm = HmmDetector::new(6, 30, 2.0);
            classifier_row(&mut hmm, &command_runs, "hmm (6 states)")
        }),
        Box::new(|| {
            let mut allow = TransitionAllowlist::new();
            classifier_row(&mut allow, &command_runs, "transition allowlist")
        }),
        Box::new(|| {
            let mut rare = RareCommandDetector::new(1e-4);
            classifier_row(&mut rare, &command_runs, "rare-command")
        }),
        Box::new(|| {
            let mut length = RunLengthDetector::new(2.0);
            classifier_row(&mut length, &command_runs, "run-length")
        }),
    ];
    let rows: Vec<Row> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = configs.into_iter().map(|cfg| s.spawn(cfg)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("detector worker panicked"))
            .collect()
    });

    println!();
    println!(
        "{:<26} {:>7} {:>9} {:>10} {:>6} {:>12}",
        "detector", "recall", "accuracy", "precision", "F1", "TP/FP/TN/FN"
    );
    for (name, cm) in &rows {
        println!(
            "{:<26} {:>6.0}% {:>8.0}% {:>10.2} {:>6.2} {:>4}/{}/{}/{}",
            name,
            cm.recall() * 100.0,
            cm.accuracy() * 100.0,
            cm.precision(),
            cm.f1(),
            cm.true_positives(),
            cm.false_positives(),
            cm.true_negatives(),
            cm.false_negatives(),
        );
    }
    println!();
    println!("reading: the n-gram perplexity family keeps perfect recall at");
    println!("every order. The parameter-aware variant collapses on 20 training");
    println!("runs (nearly every argument bucket is out-of-vocabulary, so all");
    println!("runs look equally alien) — the paper's future-work item needs a");
    println!("much larger corpus. The HMM underfits this corpus; rare-command");
    println!("and run-length miss content anomalies. The mined allowlist ties");
    println!("perplexity *here* because synthetic benign runs are uniform, but");
    println!("over-alarms badly on adversarial traffic (see attack_benchmark).");
}

fn perplexity_row<T: Clone + Eq + std::hash::Hash + Ord>(
    order: usize,
    runs: &[(Vec<T>, bool)],
    name: &str,
) -> Row {
    let report = PerplexityDetector::new(order)
        .evaluate(runs, 5, 0)
        .expect("evaluation runs clean");
    (name.to_string(), report.confusion)
}

fn classifier_row<T, C>(classifier: &mut C, runs: &[(Vec<T>, bool)], name: &str) -> Row
where
    T: Clone + Ord + std::hash::Hash,
    C: rad_analysis::RunClassifier<T>,
{
    let cm = evaluate_classifier(classifier, runs, 5, 0).expect("evaluation runs clean");
    (name.to_string(), cm)
}
