//! Extension: every detector in the workspace on the Table I task.
//!
//! The paper evaluates only its perplexity models; this harness puts
//! the whole zoo side by side under the identical 5-fold protocol —
//! the three n-gram orders, the parameter-aware variant (future work:
//! "bring command arguments into the fold"), a from-scratch HMM
//! (future work: sequence models beyond n-grams), and the three
//! baselines. The ordering, not the absolute numbers, is the result —
//! see the closing commentary the binary prints.

use rad_analysis::{
    evaluate_classifier, labelled_runs, CommandTokenizer, HmmDetector, ParamTokenizer,
    PerplexityDetector, RareCommandDetector, RunLengthDetector, TransitionAllowlist,
};
use rad_core::CommandType;
use rad_workloads::CampaignBuilder;

fn main() {
    println!("Detector comparison on the 25 supervised runs (5-fold CV, seed 0)");
    let campaign = CampaignBuilder::new(42).supervised_only().build();
    let command_runs: Vec<(Vec<CommandType>, bool)> =
        labelled_runs(campaign.command(), &CommandTokenizer);
    let param_runs: Vec<(Vec<String>, bool)> = labelled_runs(campaign.command(), &ParamTokenizer);

    println!();
    println!(
        "{:<26} {:>7} {:>9} {:>10} {:>6} {:>12}",
        "detector", "recall", "accuracy", "precision", "F1", "TP/FP/TN/FN"
    );
    let mut rows: Vec<(String, rad_analysis::ConfusionMatrix)> = Vec::new();

    for n in [2usize, 3, 4] {
        let report = PerplexityDetector::new(n)
            .evaluate(&command_runs, 5, 0)
            .expect("evaluation runs clean");
        rows.push((format!("perplexity {n}-gram"), report.confusion));
    }
    let report = PerplexityDetector::new(3)
        .evaluate(&param_runs, 5, 0)
        .expect("evaluation runs clean");
    rows.push(("perplexity 3-gram+params".into(), report.confusion));

    let mut hmm = HmmDetector::new(6, 30, 2.0);
    rows.push((
        "hmm (6 states)".into(),
        evaluate_classifier(&mut hmm, &command_runs, 5, 0).expect("evaluation runs clean"),
    ));
    let mut allow = TransitionAllowlist::new();
    rows.push((
        "transition allowlist".into(),
        evaluate_classifier(&mut allow, &command_runs, 5, 0).expect("evaluation runs clean"),
    ));
    let mut rare = RareCommandDetector::new(1e-4);
    rows.push((
        "rare-command".into(),
        evaluate_classifier(&mut rare, &command_runs, 5, 0).expect("evaluation runs clean"),
    ));
    let mut length = RunLengthDetector::new(2.0);
    rows.push((
        "run-length".into(),
        evaluate_classifier(&mut length, &command_runs, 5, 0).expect("evaluation runs clean"),
    ));

    for (name, cm) in &rows {
        println!(
            "{:<26} {:>6.0}% {:>8.0}% {:>10.2} {:>6.2} {:>4}/{}/{}/{}",
            name,
            cm.recall() * 100.0,
            cm.accuracy() * 100.0,
            cm.precision(),
            cm.f1(),
            cm.true_positives(),
            cm.false_positives(),
            cm.true_negatives(),
            cm.false_negatives(),
        );
    }
    println!();
    println!("reading: the n-gram perplexity family keeps perfect recall at");
    println!("every order. The parameter-aware variant collapses on 20 training");
    println!("runs (nearly every argument bucket is out-of-vocabulary, so all");
    println!("runs look equally alien) — the paper's future-work item needs a");
    println!("much larger corpus. The HMM underfits this corpus; rare-command");
    println!("and run-length miss content anomalies. The mined allowlist ties");
    println!("perplexity *here* because synthetic benign runs are uniform, but");
    println!("over-alarms badly on adversarial traffic (see attack_benchmark).");
}
