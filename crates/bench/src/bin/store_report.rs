//! Durability report: WAL append/replay throughput and per-crash-site
//! recovery accounting.
//!
//! Measures, with plain wall-clock timers (minimum over reps, like
//! `perf_report`):
//!
//! * WAL append throughput at the default batched fsync cadence and at
//!   sync-every-record, plus replay (recovery) throughput over the
//!   same log;
//! * for every [`CrashSite`], a seeded [`DurableStore`] workload
//!   killed mid-flight and reopened: how many acknowledged documents
//!   survive, how many are lost (the synced-but-unacknowledged tail),
//!   and whether anything was invented (never).
//!
//! Results print as tables and are written to `BENCH_store.json` at
//! the repository root (the file the EXPERIMENTS.md "Recovery"
//! experiment quotes).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use rad_store::wal::{CrashPlan, CrashSite, Wal, WalOptions};
use rad_store::{DurableOptions, DurableStore};
use serde_json::json;

const WAL_RECORDS: usize = 10_000;
const WAL_PAYLOAD: usize = 256;
const DURABLE_DOCS: u64 = 1_000;

/// Milliseconds for one repetition: the minimum over `reps` timed runs
/// after one warmup run.
fn time_ms<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rad-store-report-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

struct WalEntry {
    name: &'static str,
    ms: f64,
    records: usize,
    bytes: usize,
}

impl WalEntry {
    fn records_per_s(&self) -> f64 {
        self.records as f64 / (self.ms / 1e3)
    }
    fn mb_per_s(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0) / (self.ms / 1e3)
    }
}

/// Appends `WAL_RECORDS` fixed-size payloads and syncs once at the end.
fn append_run(dir: &PathBuf, sync_every: u64) {
    let _ = fs::remove_dir_all(dir);
    let options = WalOptions {
        segment_bytes: 1024 * 1024,
        sync_every,
    };
    let (mut wal, _, _) = Wal::open(dir, options, None).expect("open wal");
    let payload = vec![0xA5u8; WAL_PAYLOAD];
    for _ in 0..WAL_RECORDS {
        wal.append(&payload).expect("append");
    }
    wal.sync().expect("sync");
}

struct RecoveryRow {
    site: CrashSite,
    occurrence: u64,
    attempted: u64,
    acknowledged: u64,
    recovered: u64,
}

impl RecoveryRow {
    fn lost(&self) -> u64 {
        self.acknowledged.saturating_sub(self.recovered)
    }
}

/// Runs a durable-store insert workload into a crash at `site`, then
/// reopens and counts what disk gives back.
fn recovery_row(site: CrashSite, occurrence: u64) -> RecoveryRow {
    let dir = tmpdir(&format!("recovery-{site}"));
    let options = || DurableOptions {
        wal: WalOptions {
            segment_bytes: 16 * 1024,
            sync_every: 8,
        },
        checkpoint_every_ops: Some(64),
        crash_plan: None,
    };

    let mut crashed = options();
    crashed.crash_plan = Some(CrashPlan::at(site, occurrence));
    let (store, _) = DurableStore::open(&dir, crashed).expect("open durable store");
    let mut attempted = 0u64;
    let mut acknowledged = 0u64;
    for i in 0..DURABLE_DOCS {
        attempted += 1;
        match store.insert("events", json!({ "i": i, "note": "crash workload" })) {
            Ok(_) => acknowledged += 1,
            Err(_) => break,
        }
    }
    assert!(
        acknowledged < DURABLE_DOCS,
        "{site}: the injected crash never fired"
    );
    drop(store);

    // The in-flight op may commit durably (e.g. via an auto-checkpoint)
    // before the crash surfaces, so recovery may return one record the
    // caller never saw acknowledged — but never more than attempted.
    let (store, report) = DurableStore::open(&dir, options()).expect("reopen after crash");
    let recovered = store.store().len() as u64;
    assert!(
        recovered <= attempted,
        "{site}: recovery invented records ({recovered} > {attempted})"
    );
    drop(store);
    drop(report);
    let _ = fs::remove_dir_all(&dir);
    RecoveryRow {
        site,
        occurrence,
        attempted,
        acknowledged,
        recovered,
    }
}

fn main() {
    println!("store_report: measuring WAL throughput and crash recovery...");

    // ---- WAL throughput ----
    let bytes = WAL_RECORDS * WAL_PAYLOAD;
    let dir = tmpdir("append");
    let mut entries = Vec::new();

    let batched = time_ms(5, || append_run(&dir, 64));
    entries.push(WalEntry {
        name: "append_sync_every_64",
        ms: batched,
        records: WAL_RECORDS,
        bytes,
    });

    let eager = time_ms(3, || append_run(&dir, 1));
    entries.push(WalEntry {
        name: "append_sync_every_1",
        ms: eager,
        records: WAL_RECORDS,
        bytes,
    });

    // Replay over the last written log (sync_every=1 run above).
    let replay_options = WalOptions {
        segment_bytes: 1024 * 1024,
        sync_every: 64,
    };
    let replay = time_ms(5, || {
        let (_wal, records, report) =
            Wal::open(&dir, replay_options.clone(), None).expect("replay");
        assert_eq!(records.len(), WAL_RECORDS);
        assert!(report.is_clean());
    });
    entries.push(WalEntry {
        name: "replay_recovery",
        ms: replay,
        records: WAL_RECORDS,
        bytes,
    });
    let _ = fs::remove_dir_all(&dir);

    println!();
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "stage", "ms", "records/s", "MB/s", "records"
    );
    for e in &entries {
        println!(
            "{:<22} {:>10.3} {:>12.0} {:>12.2} {:>10}",
            e.name,
            e.ms,
            e.records_per_s(),
            e.mb_per_s(),
            e.records
        );
    }

    // ---- Per-site crash recovery ----
    let rows: Vec<RecoveryRow> = [
        (CrashSite::MidRecord, 500),
        (CrashSite::PreFsync, 500),
        (CrashSite::MidRotation, 4),
        (CrashSite::MidCompaction, 4),
        (CrashSite::MidRename, 4),
    ]
    .into_iter()
    .map(|(site, occurrence)| recovery_row(site, occurrence))
    .collect();

    println!();
    println!(
        "{:<16} {:>10} {:>10} {:>13} {:>10} {:>6}",
        "crash site", "occurrence", "attempted", "acknowledged", "recovered", "lost"
    );
    for r in &rows {
        println!(
            "{:<16} {:>10} {:>10} {:>13} {:>10} {:>6}",
            r.site.to_string(),
            r.occurrence,
            r.attempted,
            r.acknowledged,
            r.recovered,
            r.lost()
        );
    }

    let json = render_json(&entries, &rows);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_store.json");
    fs::write(&path, json).expect("write BENCH_store.json");
    println!();
    println!("wrote {}", path.display());
}

fn render_json(entries: &[WalEntry], rows: &[RecoveryRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"wal_records\": {WAL_RECORDS},\n"));
    out.push_str(&format!("    \"wal_payload_bytes\": {WAL_PAYLOAD},\n"));
    out.push_str(&format!("    \"durable_docs\": {DURABLE_DOCS},\n"));
    out.push_str(
        "    \"durable_tuning\": \"segment 16 KiB, fsync every 8, checkpoint every 64 ops\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"wal\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", e.name));
        out.push_str(&format!("      \"ms\": {:.3},\n", e.ms));
        out.push_str(&format!(
            "      \"records_per_s\": {:.0},\n",
            e.records_per_s()
        ));
        out.push_str(&format!("      \"mb_per_s\": {:.2}\n", e.mb_per_s()));
        out.push_str(if i + 1 == entries.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovery\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"site\": \"{}\",\n", r.site));
        out.push_str(&format!("      \"occurrence\": {},\n", r.occurrence));
        out.push_str(&format!("      \"attempted\": {},\n", r.attempted));
        out.push_str(&format!("      \"acknowledged\": {},\n", r.acknowledged));
        out.push_str(&format!("      \"recovered\": {},\n", r.recovered));
        out.push_str(&format!("      \"lost\": {},\n", r.lost()));
        out.push_str("      \"invented\": 0\n");
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}
