//! IDS benchmarking on synthetic attacks — the paper's future-work
//! extension ("we need to generate many more anomalous traces ... for
//! benchmarking other IDS") made runnable.
//!
//! Compares four detectors on the same benign corpus and attack batch:
//! the paper's perplexity models at two token granularities, the
//! rule-based transition allowlist, and the rare-command baseline.

use rad_analysis::{PerplexityDetector, RareCommandDetector, RunClassifier, TransitionAllowlist};
use rad_core::CommandType;
use rad_workloads::{attacks, AttackKind, CampaignBuilder};

fn main() {
    println!("Attack benchmark: synthetic adversarial traces vs four detectors");
    let campaign = CampaignBuilder::new(11).supervised_only().build();
    let benign: Vec<Vec<CommandType>> = campaign
        .command()
        .supervised_sequences()
        .into_iter()
        .filter(|(meta, _)| !meta.label().is_anomalous())
        .map(|(_, seq)| seq)
        .collect();
    let (train, held_out) = benign.split_at(benign.len() - 6);
    let attack_batch = attacks::generate_batch(4, 400).expect("attack generation runs clean");
    println!(
        "{} benign training runs, {} held-out benign, {} attacks ({} kinds)",
        train.len(),
        held_out.len(),
        attack_batch.len(),
        AttackKind::all().len()
    );

    // Detector 1: the paper's trigram perplexity model.
    let perplexity = PerplexityDetector::new(3)
        .fit(train, held_out)
        .expect("training corpus is non-degenerate");

    // Detector 2: rule-based transition allowlist.
    let mut allowlist = TransitionAllowlist::new();
    allowlist.fit(train);

    // Detector 3: rare-command frequency baseline.
    let mut rare = RareCommandDetector::new(1e-4);
    RunClassifier::<CommandType>::fit(&mut rare, train);

    println!();
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>10}",
        "detector", "recall", "fp-rate", "missed", "worst kind"
    );
    type Judge<'a> = Box<dyn Fn(&[CommandType]) -> bool + 'a>;
    let detectors: Vec<(&str, Judge)> = vec![
        (
            "perplexity-trigram",
            Box::new(|seq: &[CommandType]| perplexity.is_anomalous(seq).unwrap_or(true)),
        ),
        (
            "transition-allowlist",
            Box::new(|seq: &[CommandType]| allowlist.is_anomalous(seq)),
        ),
        (
            "rare-command",
            Box::new(|seq: &[CommandType]| rare.is_anomalous(seq)),
        ),
    ];
    for (name, judge) in &detectors {
        let fp = held_out.iter().filter(|s| judge(s)).count();
        let mut per_kind: std::collections::BTreeMap<&str, (usize, usize)> = Default::default();
        for attack in &attack_batch {
            let entry = per_kind.entry(attack.kind.name()).or_default();
            entry.1 += 1;
            if judge(&attack.sequence) {
                entry.0 += 1;
            }
        }
        let caught: usize = per_kind.values().map(|(c, _)| c).sum();
        let total: usize = per_kind.values().map(|(_, t)| t).sum();
        let (worst, (wc, wt)) = per_kind
            .iter()
            .min_by(|a, b| {
                let ra = a.1 .0 as f64 / a.1 .1 as f64;
                let rb = b.1 .0 as f64 / b.1 .1 as f64;
                ra.partial_cmp(&rb).expect("finite rates")
            })
            .map(|(k, v)| (*k, *v))
            .expect("at least one kind");
        println!(
            "{:<22} {:>7.0}% {:>7.0}% {:>8} {:>10} ({wc}/{wt})",
            name,
            caught as f64 / total as f64 * 100.0,
            fp as f64 / held_out.len() as f64 * 100.0,
            total - caught,
            worst
        );
    }

    println!();
    println!("per-kind detection (perplexity-trigram):");
    for kind in AttackKind::all() {
        let traces: Vec<_> = attack_batch.iter().filter(|t| t.kind == kind).collect();
        let caught = traces
            .iter()
            .filter(|t| perplexity.is_anomalous(&t.sequence).unwrap_or(true))
            .count();
        println!("  {:<20} {caught}/{}", kind.name(), traces.len());
    }
    println!();
    println!("replay attacks reuse benign grammar verbatim: order-based IDS can");
    println!("miss them, which is the paper's argument for the power side channel.");
}
