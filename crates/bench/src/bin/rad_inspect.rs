//! `rad_inspect` — explore an exported RAD bundle from the command
//! line, the downstream-user tool for the open-sourced dataset.
//!
//! ```sh
//! cargo run -p rad-bench --release --bin rad_inspect -- <dir> <subcommand>
//! ```
//!
//! Subcommands:
//! - `summary`          counts per device, procedure, and label
//! - `runs`             the supervised-run table
//! - `ngrams [n]`       top 10 n-grams of the corpus (default n = 2)
//! - `score <run_id>`   leave-one-out perplexity of one run + anomaly
//!   localization (the three least-probable transitions)

use std::path::Path;
use std::process::ExitCode;

use rad_analysis::{NgramCounter, PerplexityDetector};
use rad_core::{CommandType, RunId};
use rad_store::import_commands;

fn usage() -> ExitCode {
    eprintln!("usage: rad_inspect <bundle-dir> summary|runs|ngrams [n]|score <run_id>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, rest) = match args.split_first() {
        Some((dir, rest)) if !rest.is_empty() => (dir.clone(), rest.to_vec()),
        _ => return usage(),
    };
    let dataset = match import_commands(Path::new(&dir)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("failed to read bundle at {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match rest[0].as_str() {
        "summary" => {
            println!(
                "{} trace objects, {} registered runs",
                dataset.len(),
                dataset.runs().len()
            );
            println!("\nper device:");
            for (device, count) in dataset.device_histogram() {
                println!("  {device:<8} {count:>8}");
            }
            let mut per_procedure = std::collections::BTreeMap::new();
            for t in dataset.traces() {
                *per_procedure
                    .entry(t.procedure().paper_id())
                    .or_insert(0u64) += 1;
            }
            println!("\nper procedure:");
            for (p, count) in per_procedure {
                println!("  {p:<8} {count:>8}");
            }
            let exceptions = dataset
                .traces()
                .iter()
                .filter(|t| t.exception().is_some())
                .count();
            println!("\nexceptions logged: {exceptions}");
            ExitCode::SUCCESS
        }
        "runs" => {
            println!(
                "{:<8} {:<4} {:<32} {:>9} note",
                "run", "proc", "label", "commands"
            );
            for run in dataset.runs() {
                let len = dataset.run_sequence(run.run_id()).len();
                println!(
                    "{:<8} {:<4} {:<32} {:>9} {}",
                    run.run_id().0,
                    run.kind().paper_id(),
                    run.label().to_string(),
                    len,
                    run.operator_note().unwrap_or("")
                );
            }
            ExitCode::SUCCESS
        }
        "ngrams" => {
            let n: usize = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
            if n == 0 || n > 8 {
                eprintln!("n must be in 1..=8");
                return ExitCode::FAILURE;
            }
            let mut counter = NgramCounter::new(n);
            // One sentence per run; unsupervised traffic forms its own
            // stream.
            let mut unknown: Vec<&str> = Vec::new();
            for run in dataset.runs() {
                let seq: Vec<&str> = dataset
                    .run_sequence(run.run_id())
                    .iter()
                    .map(|c| c.mnemonic())
                    .collect();
                counter.observe(&seq);
            }
            for t in dataset.traces().iter().filter(|t| t.run_id().is_none()) {
                unknown.push(t.command_type().mnemonic());
            }
            counter.observe(&unknown);
            println!("top 10 {n}-grams ({} distinct):", counter.distinct());
            for (gram, count) in counter.top_k(10) {
                println!("  {:<50} {count:>8}", gram.join(" "));
            }
            ExitCode::SUCCESS
        }
        "score" => {
            let Some(run_id) = rest.get(1).and_then(|s| s.parse().ok()).map(RunId) else {
                return usage();
            };
            let target = dataset.run_sequence(run_id);
            if target.len() < 3 {
                eprintln!("{run_id} has too few commands to score");
                return ExitCode::FAILURE;
            }
            // Leave-one-out: train on every other supervised run.
            let training: Vec<Vec<CommandType>> = dataset
                .supervised_runs()
                .iter()
                .filter(|r| r.run_id() != run_id)
                .map(|r| dataset.run_sequence(r.run_id()))
                .filter(|s| s.len() >= 3)
                .collect();
            if training.is_empty() {
                eprintln!("no other supervised runs to train on");
                return ExitCode::FAILURE;
            }
            let detector = PerplexityDetector::new(3)
                .fit(&training, &training)
                .expect("training corpus is non-degenerate");
            let score = detector.score(&target).expect("run is long enough");
            let alarm = score > detector.threshold();
            println!(
                "{run_id}: perplexity {score:.2} vs threshold {:.2} -> {}",
                detector.threshold(),
                if alarm { "ANOMALOUS" } else { "benign" }
            );
            println!("\nleast probable transitions:");
            for (index, p) in detector.localize(&target, 3).expect("run is long enough") {
                let ctx_start = index.saturating_sub(2);
                let window: Vec<&str> = target[ctx_start..=index]
                    .iter()
                    .map(|c| c.mnemonic())
                    .collect();
                println!(
                    "  at command {index:>4}: {:<40} p = {p:.2e}",
                    window.join(" ")
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
