//! Wire data-plane report: lock-step JSON versus the binary pipelined
//! wire (ISSUE PR 10), over real TCP with concurrent tenants.
//!
//! Four rows, written to `BENCH_wire.json` at the repository root:
//!
//! * **json / depth 1** — the PR 8 baseline: lock-step JSON frames,
//!   one round trip per command (`RemoteSession::issue`).
//! * **binary / depth 1, 8, 32** — the columnar binary codec driven
//!   through `issue_pipelined` with the given in-flight window; writes
//!   coalesce into one send per window.
//!
//! Latency for the pipelined rows is the *amortized* per-command cost
//! of a full window (window wall time / window size) — the number a
//! campaign actually pays per command, comparable to the lock-step
//! round trip.
//!
//! Scale with `WIRE_TENANTS` (default 4) and `WIRE_CMDS` (default
//! 200; CI smoke uses less).

use std::fs;
use std::time::{Duration, Instant};

use rad_core::{Command, CommandType};
use rad_middlebox::rpc::RetryPolicy;
use rad_middlebox::server::{LabService, ServerConfig, SocketTransport};
use rad_middlebox::WireCodecKind;
use rad_workloads::RemoteSession;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A retry policy that will not time out a loaded debug-build server.
fn policy() -> RetryPolicy {
    RetryPolicy {
        attempt_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(30),
        ..RetryPolicy::default()
    }
}

fn command(i: usize) -> Command {
    if i == 0 {
        Command::nullary(CommandType::InitC9)
    } else {
        Command::nullary(CommandType::Mvng)
    }
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Row {
    codec: WireCodecKind,
    depth: usize,
    per_s: f64,
    p50_us: u64,
    p99_us: u64,
    mean_us: f64,
}

/// Runs one matrix row: a fresh server, `tenants` concurrent client
/// legs, `cmds` commands each, over the given codec and window depth.
fn run_row(tenants: usize, cmds: usize, codec: WireCodecKind, depth: usize) -> Row {
    let handle = LabService::new(ServerConfig {
        max_sessions: tenants.max(1),
        backlog: tenants.max(1),
        seed: 42,
        ..ServerConfig::default()
    })
    .serve_tcp("127.0.0.1:0")
    .expect("serve");
    let addr = handle.local_addr().expect("addr").to_string();

    let started = Instant::now();
    let legs: Vec<_> = (0..tenants)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let transport = SocketTransport::connect_tcp(&addr).expect("connect");
                let mut session =
                    RemoteSession::connect_with(transport, &format!("tenant-{t}"), policy(), codec)
                        .expect("hello");
                let commands: Vec<Command> = (0..cmds).map(command).collect();
                let mut lat_us = Vec::with_capacity(cmds);
                if depth <= 1 && codec == WireCodecKind::Json {
                    for cmd in &commands {
                        let at = Instant::now();
                        session.issue(cmd).expect("issue").expect("no fault");
                        lat_us.push(at.elapsed().as_micros() as u64);
                    }
                } else {
                    let refs: Vec<&Command> = commands.iter().collect();
                    for window in refs.chunks(depth) {
                        let at = Instant::now();
                        let results = session
                            .issue_pipelined(window, depth)
                            .unwrap_or_else(|e| panic!("pipelined window failed: {}", e.error));
                        let amortized =
                            (at.elapsed().as_micros() as u64 / window.len().max(1) as u64).max(1);
                        for result in &results {
                            result.as_ref().expect("no fault");
                            lat_us.push(amortized);
                        }
                    }
                }
                session.bye().expect("bye");
                lat_us
            })
        })
        .collect();
    let mut lat_us: Vec<u64> = legs
        .into_iter()
        .flat_map(|leg| leg.join().expect("tenant leg"))
        .collect();
    let wall = started.elapsed();
    let report = handle.drain().expect("drain");
    assert_eq!(
        report.stats.issues,
        lat_us.len() as u64,
        "every timed issue executed exactly once"
    );

    lat_us.sort_unstable();
    let mean = if lat_us.is_empty() {
        0.0
    } else {
        lat_us.iter().sum::<u64>() as f64 / lat_us.len() as f64
    };
    Row {
        codec,
        depth,
        per_s: lat_us.len() as f64 / wall.as_secs_f64(),
        p50_us: percentile_us(&lat_us, 0.50),
        p99_us: percentile_us(&lat_us, 0.99),
        mean_us: mean,
    }
}

fn main() {
    let tenants = env_usize("WIRE_TENANTS", 4);
    let cmds = env_usize("WIRE_CMDS", 200);

    let rows: Vec<Row> = [
        (WireCodecKind::Json, 1usize),
        (WireCodecKind::Binary, 1),
        (WireCodecKind::Binary, 8),
        (WireCodecKind::Binary, 32),
    ]
    .into_iter()
    .map(|(codec, depth)| run_row(tenants, cmds, codec, depth))
    .collect();

    let baseline = rows[0].per_s;
    println!(
        "{:<24} {:>12} {:>9} {:>9} {:>9} {:>8}",
        "wire", "issues/s", "p50 us", "p99 us", "mean us", "speedup"
    );
    for row in &rows {
        println!(
            "{:<24} {:>12} {:>9} {:>9} {:>9.1} {:>7.2}x",
            format!("{} depth {}", row.codec.as_name(), row.depth),
            format!("{:.0}", row.per_s),
            row.p50_us,
            row.p99_us,
            row.mean_us,
            row.per_s / baseline.max(1.0)
        );
    }

    let mut out = String::from("{\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"tenants\": {tenants},\n"));
    out.push_str(&format!("    \"commands_per_tenant\": {cmds}\n"));
    out.push_str("  },\n");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"codec\": \"{}\",\n", row.codec.as_name()));
        out.push_str(&format!("      \"pipeline_depth\": {},\n", row.depth));
        out.push_str(&format!("      \"issues_per_s\": {:.0},\n", row.per_s));
        out.push_str(&format!("      \"p50_us\": {},\n", row.p50_us));
        out.push_str(&format!("      \"p99_us\": {},\n", row.p99_us));
        out.push_str(&format!("      \"mean_us\": {:.1},\n", row.mean_us));
        out.push_str(&format!(
            "      \"speedup_vs_json\": {:.2}\n",
            row.per_s / baseline.max(1.0)
        ));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_wire.json");
    fs::write(&path, out).expect("write BENCH_wire.json");
    println!("wrote {}", path.display());
}
