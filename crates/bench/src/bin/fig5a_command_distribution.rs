//! Fig. 5(a) — command-wise distribution of trace objects.
//!
//! Synthesizes the full-scale campaign (128,785 trace objects) and
//! prints the per-command counts grouped by device, plus the
//! per-device totals that appear in the figure's legend
//! (C9 93,231 / IKA 11,448 / Tecan 16,279 / Quantos 2,367 / UR3e 5,460).

use rad_bench::sparkline;
use rad_core::{CommandType, DeviceKind};
use rad_workloads::CampaignBuilder;

fn main() {
    println!("Fig. 5(a) reproduction: synthesizing the full three-month campaign...");
    let campaign = CampaignBuilder::new(42).build();
    let command_hist = campaign.command().command_histogram();
    let device_hist = campaign.command().device_histogram();

    println!(
        "total trace objects: {} (paper: 128,785)",
        campaign.command().len()
    );
    println!();
    for device in DeviceKind::all() {
        let total = device_hist.get(&device).copied().unwrap_or(0);
        println!(
            "== {} ({} trace objects; paper: {}) ==",
            device,
            total,
            device.paper_trace_count()
        );
        let mut rows: Vec<(CommandType, u64)> = CommandType::for_device(device)
            .into_iter()
            .map(|ct| (ct, command_hist.get(&ct).copied().unwrap_or(0)))
            .collect();
        rows.sort_by_key(|(_, count)| std::cmp::Reverse(*count));
        let counts: Vec<f64> = rows.iter().map(|(_, c)| *c as f64).collect();
        for ((ct, count), bar) in rows.iter().zip(sparkline(&counts).chars()) {
            println!(
                "  {bar} {:<28} ({:<28}) {count:>8}",
                ct.mnemonic(),
                ct.readable()
            );
        }
        println!();
    }
}
