//! Criterion benches for the power substrate: trajectory sampling,
//! dynamics evaluation, 25 Hz profile synthesis, and the signal
//! analyses of §VI.

use criterion::{criterion_group, criterion_main, Criterion};
use rad_power::{signal, TrajectorySegment, Ur3e, Ur3eDynamics};

fn leg() -> TrajectorySegment {
    TrajectorySegment::joint_move(Ur3e::named_pose(0), Ur3e::named_pose(2), 1.0)
}

fn bench_trajectory(c: &mut Criterion) {
    let seg = leg();
    c.bench_function("trajectory_sample_25hz", |b| b.iter(|| seg.sample_at(0.04)));
}

fn bench_dynamics(c: &mut Criterion) {
    let seg = leg();
    let points = seg.sample_at(0.04);
    let dynamics = Ur3eDynamics::new();
    c.bench_function("dynamics_currents_per_tick", |b| {
        b.iter(|| {
            points
                .iter()
                .map(|p| dynamics.currents(p, 0.5)[1])
                .sum::<f64>()
        })
    });
}

fn bench_profile(c: &mut Criterion) {
    let arm = Ur3e::new();
    c.bench_function("current_profile_one_leg", |b| {
        b.iter(|| arm.current_profile(&[leg()], 0.5, 7))
    });
}

fn bench_signal(c: &mut Criterion) {
    let arm = Ur3e::new();
    let a = arm.current_profile(&[leg()], 0.0, 1).joint_current(1);
    let b2 = arm.current_profile(&[leg()], 0.0, 2).joint_current(1);
    c.bench_function("pearson_correlation", |b| {
        b.iter(|| signal::pearson(&a, &b2).unwrap())
    });
    c.bench_function("shape_correlation_resampled", |b| {
        b.iter(|| signal::shape_correlation(&a, &b2).unwrap())
    });
}

criterion_group!(
    benches,
    bench_trajectory,
    bench_dynamics,
    bench_profile,
    bench_signal
);
criterion_main!(benches);
