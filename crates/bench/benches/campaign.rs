//! Criterion benches for dataset synthesis and the guard layer: how
//! fast the three-month campaign regenerates, and what the middlebox
//! policy check costs per command.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rad_core::{Command, CommandType};
use rad_middlebox::{GuardPolicy, GuardedMiddlebox, Middlebox};
use rad_workloads::CampaignBuilder;

fn bench_campaign_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_synthesis");
    group.sample_size(10);
    group.bench_function("supervised_only_25_runs", |b| {
        b.iter(|| CampaignBuilder::new(42).supervised_only().build())
    });
    group.bench_function("scale_0_10_13k_traces", |b| {
        b.iter(|| {
            CampaignBuilder::new(42)
                .scale(0.1)
                .power_experiments(false)
                .build()
        })
    });
    group.finish();
}

fn bench_guard_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("guard_overhead");
    let query = Command::nullary(CommandType::Mvng);
    group.bench_function("bare_middlebox_issue", |b| {
        b.iter_batched(
            || {
                let mut mb = Middlebox::new(0);
                mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
                mb
            },
            |mut mb| {
                for _ in 0..100 {
                    mb.issue(&query).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("guarded_middlebox_issue", |b| {
        b.iter_batched(
            || {
                let mut mb = GuardedMiddlebox::new(Middlebox::new(0), GuardPolicy::recommended());
                mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
                mb
            },
            |mut mb| {
                for _ in 0..100 {
                    mb.issue(&query).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_synthesis, bench_guard_overhead);
criterion_main!(benches);
