//! Criterion benches for the analysis pipeline: TF-IDF fitting, n-gram
//! language-model fitting and scoring, Jenks clustering, and the full
//! Table I evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use rad_analysis::{jenks_two_class, CommandLm, PerplexityDetector, Smoothing, TfIdf};
use rad_core::CommandType;
use rad_workloads::CampaignBuilder;

fn supervised() -> Vec<(Vec<CommandType>, bool)> {
    CampaignBuilder::new(42)
        .supervised_only()
        .build()
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| (seq, meta.label().is_anomalous()))
        .collect()
}

fn bench_tfidf(c: &mut Criterion) {
    let labelled = supervised();
    let docs: Vec<Vec<CommandType>> = labelled.iter().map(|(s, _)| s.clone()).collect();
    c.bench_function("tfidf_fit_25_runs", |b| {
        b.iter(|| TfIdf::fit(&docs).unwrap())
    });
    let model = TfIdf::fit(&docs).unwrap();
    c.bench_function("tfidf_similarity_matrix_25x25", |b| {
        b.iter(|| model.similarity_matrix())
    });
}

fn bench_lm(c: &mut Criterion) {
    let labelled = supervised();
    let docs: Vec<Vec<CommandType>> = labelled.iter().map(|(s, _)| s.clone()).collect();
    c.bench_function("lm_fit_trigram", |b| {
        b.iter(|| CommandLm::fit(3, &docs, Smoothing::default()).unwrap())
    });
    let lm = CommandLm::fit(3, &docs, Smoothing::default()).unwrap();
    let longest = docs.iter().max_by_key(|d| d.len()).unwrap();
    c.bench_function("lm_perplexity_longest_run", |b| {
        b.iter(|| lm.perplexity(longest).unwrap())
    });
}

fn bench_jenks(c: &mut Criterion) {
    let values: Vec<f64> = (0..200)
        .map(|i| {
            if i % 9 == 0 {
                40.0 + i as f64 * 0.01
            } else {
                2.0 + (i % 7) as f64 * 0.1
            }
        })
        .collect();
    c.bench_function("jenks_two_class_200", |b| {
        b.iter(|| jenks_two_class(&values).unwrap())
    });
}

fn bench_table1(c: &mut Criterion) {
    let labelled = supervised();
    c.bench_function("table1_full_evaluation_trigram", |b| {
        b.iter(|| {
            PerplexityDetector::new(3)
                .evaluate(&labelled, 5, 0)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_tfidf, bench_lm, bench_jenks, bench_table1);
criterion_main!(benches);
