//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! Each bench compares design variants on the same workload so the
//! cost/quality trade-offs are visible in one report:
//!
//! 1. token granularity — command-only vs parameter-aware tokens;
//! 2. smoothing — epsilon floor vs add-k;
//! 3. thresholding — Jenks natural breaks vs a fixed quantile;
//! 4. latency model — log-normal + tail vs constant (Fig. 4 whiskers);
//! 5. power model — full dynamics vs gravity-only.

use criterion::{criterion_group, criterion_main, Criterion};
use rad_analysis::{jenks_two_class, PerplexityDetector, Smoothing};
use rad_core::{CommandType, SimDuration, TraceMode};
use rad_middlebox::LatencyModel;
use rad_power::{TrajectorySegment, Ur3e, Ur3eDynamics};
use rad_workloads::CampaignBuilder;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_token_granularity(c: &mut Criterion) {
    let campaign = CampaignBuilder::new(42).supervised_only().build();
    let command_only: Vec<(Vec<String>, bool)> = campaign
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| {
            (
                seq.iter()
                    .map(|ct: &CommandType| ct.mnemonic().to_owned())
                    .collect(),
                meta.label().is_anomalous(),
            )
        })
        .collect();
    // Parameter-aware tokens: mnemonic + bucketed argument tokens, the
    // paper's "bring command arguments into the fold" future work.
    let param_aware: Vec<(Vec<String>, bool)> = campaign
        .command()
        .supervised_runs()
        .iter()
        .map(|meta| {
            let tokens = campaign
                .command()
                .traces()
                .iter()
                .filter(|t| t.run_id() == Some(meta.run_id()))
                .map(|t| {
                    let args: Vec<String> =
                        t.command().args().iter().map(|v| v.param_token()).collect();
                    format!("{}({})", t.command_type().mnemonic(), args.join(","))
                })
                .collect();
            (tokens, meta.label().is_anomalous())
        })
        .collect();
    let mut group = c.benchmark_group("ablation_param_tokens");
    group.bench_function("command_only", |b| {
        b.iter(|| {
            PerplexityDetector::new(3)
                .evaluate(&command_only, 5, 0)
                .unwrap()
        })
    });
    group.bench_function("parameter_aware", |b| {
        b.iter(|| {
            PerplexityDetector::new(3)
                .evaluate(&param_aware, 5, 0)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_smoothing(c: &mut Criterion) {
    let campaign = CampaignBuilder::new(42).supervised_only().build();
    let labelled: Vec<(Vec<CommandType>, bool)> = campaign
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| (seq, meta.label().is_anomalous()))
        .collect();
    let mut group = c.benchmark_group("ablation_smoothing");
    for (name, smoothing) in [
        ("epsilon_1e6", Smoothing::EpsilonFloor(1e-6)),
        ("epsilon_1e3", Smoothing::EpsilonFloor(1e-3)),
        ("add_k_1", Smoothing::AddK(1.0)),
        ("add_k_0_1", Smoothing::AddK(0.1)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                PerplexityDetector::new(3)
                    .with_smoothing(smoothing)
                    .evaluate(&labelled, 5, 0)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_threshold(c: &mut Criterion) {
    // Jenks vs a fixed 85th-percentile threshold over the same scores.
    let scores: Vec<f64> = (0..200)
        .map(|i| {
            if i % 11 == 0 {
                30.0 + (i % 5) as f64
            } else {
                2.0 + (i % 13) as f64 * 0.05
            }
        })
        .collect();
    let mut group = c.benchmark_group("ablation_threshold");
    group.bench_function("jenks", |b| b.iter(|| jenks_two_class(&scores).unwrap()));
    group.bench_function("fixed_quantile", |b| {
        b.iter(|| {
            let mut sorted = scores.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted[(sorted.len() as f64 * 0.85) as usize]
        })
    });
    group.finish();
}

fn bench_latency_model_fidelity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_latency_model");
    let lognormal = LatencyModel::for_mode(TraceMode::Remote);
    let constant = LatencyModel::Constant(SimDuration::from_millis(6));
    for (name, model) in [("lognormal_tail", &lognormal), ("constant", &constant)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                (0..1000).map(|_| model.sample(&mut rng).as_micros()).max()
            })
        });
    }
    group.finish();
}

fn bench_power_terms(c: &mut Criterion) {
    let seg = TrajectorySegment::joint_move(Ur3e::named_pose(0), Ur3e::named_pose(2), 1.0);
    let full = Ur3e::new();
    let mut gravity_params = Ur3eDynamics::new();
    gravity_params.inertial_term = false;
    gravity_params.friction_term = false;
    let gravity_only = Ur3e::with_dynamics(gravity_params);
    let mut group = c.benchmark_group("ablation_power_terms");
    group.bench_function("full_dynamics", |b| {
        b.iter(|| full.current_profile(std::slice::from_ref(&seg), 0.5, 3))
    });
    group.bench_function("gravity_only", |b| {
        b.iter(|| gravity_only.current_profile(std::slice::from_ref(&seg), 0.5, 3))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_token_granularity,
    bench_smoothing,
    bench_threshold,
    bench_latency_model_fidelity,
    bench_power_terms
);
criterion_main!(benches);
