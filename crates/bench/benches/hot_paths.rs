//! Hot-path benches for the interned analysis pipeline.
//!
//! Two questions, end to end:
//!
//! 1. How much does interning buy on the fit+score and count+top-k hot
//!    paths? Each optimized stage runs next to its token-keyed
//!    reference twin (see `rad_analysis::reference`) on the same
//!    campaign corpus the Fig. 5(b) binary uses.
//! 2. What does fanning cross-validation folds out over scoped threads
//!    buy? The parallel `PerplexityDetector::evaluate` runs next to an
//!    inline sequential re-implementation of the original fold loop.
//!
//! `perf_report` (a bin target) measures the same pairs with plain
//! timers and writes the numbers to `BENCH_analysis.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use rad_analysis::{
    CommandLm, CrossValidation, NgramCounter, PerplexityDetector, ReferenceLm,
    ReferenceNgramCounter, Smoothing,
};
use rad_bench::session_corpus;
use rad_core::CommandType;
use rad_workloads::CampaignBuilder;

/// The Fig. 5(b) corpus at quarter scale: ~400 sessions, ~32k tokens.
fn sessions() -> Vec<Vec<&'static str>> {
    let campaign = CampaignBuilder::new(42).scale(0.25).build();
    session_corpus(campaign.command())
}

fn labelled() -> Vec<(Vec<CommandType>, bool)> {
    CampaignBuilder::new(42)
        .supervised_only()
        .build()
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| (seq, meta.label().is_anomalous()))
        .collect()
}

fn bench_fit_score(c: &mut Criterion) {
    let corpus = sessions();
    let scorable: Vec<&Vec<&'static str>> = corpus.iter().filter(|s| s.len() >= 3).collect();
    let mut group = c.benchmark_group("fit_score_order3");
    group.sample_size(20);
    group.bench_function("interned", |b| {
        b.iter(|| {
            let lm = CommandLm::fit(3, &corpus, Smoothing::default()).unwrap();
            scorable
                .iter()
                .map(|s| lm.perplexity(s).unwrap())
                .sum::<f64>()
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let lm = ReferenceLm::fit(3, &corpus, Smoothing::default()).unwrap();
            scorable
                .iter()
                .map(|s| lm.perplexity(s).unwrap())
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_count_topk(c: &mut Criterion) {
    let corpus = sessions();
    let mut group = c.benchmark_group("count_topk_order3");
    group.sample_size(20);
    group.bench_function("interned", |b| {
        b.iter(|| {
            let mut counter = NgramCounter::new(3);
            for s in &corpus {
                counter.observe(s);
            }
            counter.top_k(10)
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| {
            let mut counter = ReferenceNgramCounter::new(3);
            for s in &corpus {
                counter.observe(s);
            }
            counter.top_k(10)
        })
    });
    group.finish();
}

fn bench_cross_validation(c: &mut Criterion) {
    let labelled = labelled();
    let mut group = c.benchmark_group("cv_trigram_5fold");
    group.sample_size(20);
    group.bench_function("parallel", |b| {
        b.iter(|| {
            PerplexityDetector::new(3)
                .evaluate(&labelled, 5, 0)
                .unwrap()
        })
    });
    // The original sequential protocol: clone each fold's training
    // sequences, refit, score held-out runs one fold after another.
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let cv = CrossValidation::new(labelled.len(), 5, 0).unwrap();
            let mut scores = vec![0.0f64; labelled.len()];
            for fold in cv.folds() {
                let training: Vec<Vec<CommandType>> =
                    fold.train.iter().map(|&i| labelled[i].0.clone()).collect();
                let lm = CommandLm::fit(3, &training, Smoothing::default()).unwrap();
                for &i in &fold.test {
                    scores[i] = lm.perplexity(&labelled[i].0).unwrap();
                }
            }
            scores
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fit_score,
    bench_count_topk,
    bench_cross_validation
);
criterion_main!(benches);
