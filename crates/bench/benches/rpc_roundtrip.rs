//! Criterion benches for the RPC substrate: framing, end-to-end
//! round trips against a live server thread, and latency-model
//! sampling throughput (the machinery behind Fig. 4).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rad_core::{Command, CommandType, TraceMode};
use rad_devices::LabRig;
use rad_middlebox::rpc::{Duplex, FrameCodec, RpcClient, RpcServer};
use rad_middlebox::LatencyModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_framing(c: &mut Criterion) {
    let payload = vec![0xabu8; 512];
    c.bench_function("frame_encode_decode_512B", |b| {
        b.iter(|| {
            let framed = FrameCodec::encode(&payload);
            let mut codec = FrameCodec::new();
            codec.push(&framed);
            codec.next_frame().unwrap().unwrap()
        })
    });
}

fn bench_rpc_roundtrip(c: &mut Criterion) {
    let (client_side, server_side) = Duplex::pair();
    let _server = RpcServer::spawn(LabRig::new(0), server_side);
    let mut client = RpcClient::new(client_side);
    client
        .call(
            &Command::nullary(CommandType::InitIka),
            Duration::from_secs(1),
        )
        .unwrap();
    let query = Command::nullary(CommandType::IkaReadRatedSpeed);
    c.bench_function("rpc_roundtrip_query", |b| {
        b.iter(|| client.call(&query, Duration::from_secs(1)).unwrap())
    });
}

fn bench_latency_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency_sample");
    for mode in [TraceMode::Direct, TraceMode::Remote, TraceMode::Cloud] {
        let model = LatencyModel::for_mode(mode);
        group.bench_function(mode.to_string(), |b| {
            b.iter_batched(
                || ChaCha8Rng::seed_from_u64(7),
                |mut rng| {
                    let mut acc = 0u64;
                    for _ in 0..100 {
                        acc += model.sample(&mut rng).as_micros();
                    }
                    acc
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_framing,
    bench_rpc_roundtrip,
    bench_latency_models
);
criterion_main!(benches);
