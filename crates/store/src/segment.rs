//! Immutable columnar segments: the sealed on-disk form of the trace
//! and power planes.
//!
//! A *segment* is one file holding the columns of a [`TraceBatch`] or
//! a [`PowerBlock`] (plus its recording metadata), each column
//! independently encoded and CRC-protected, followed by a footer with
//! per-column offsets and min/max *zone maps* over `(device,
//! procedure, run_id, timestamp)`. Segments are immutable once sealed:
//! [`SegmentWriter`] partitions a batch by device and row count and
//! writes each part through the same atomic temp-file + fsync + rename
//! path the WAL checkpoints use, so a crash never leaves a half
//! segment under a live name.
//!
//! Reading is lazy. [`SegmentReader`] loads the footer eagerly (a few
//! hundred bytes) and fetches column payloads on demand with
//! positioned reads, so a query that only filters on `device` and
//! `timestamp` never touches the argument arena or return-value
//! columns — the bounded-memory property an mmap gives, without the
//! `unsafe` an mmap crate would need under this crate's
//! `#![forbid(unsafe_code)]`.
//!
//! [`SegmentSet`] is the query layer over a directory of segments:
//! zone maps prune whole segments before any column is read, surviving
//! segments decode in parallel (crossbeam scoped threads, gated by
//! [`rad_core::par::should_fan_out`]), and results stream out as
//! [`TraceBatch`] / [`PowerBlock`] chunks through the
//! [`TraceSource`] / [`PowerSource`] traits. A segment that fails its
//! CRC is quarantined (renamed `*.quarantined`) and reported — a
//! multi-segment scan never aborts on one bad file, mirroring WAL
//! recovery.
//!
//! # File format
//!
//! ```text
//! ┌────────────────────────────────┐
//! │ column 0 payload               │  per-column encoding, see below
//! │ column 1 payload               │
//! │ ...                            │
//! ├────────────────────────────────┤
//! │ footer                         │  kind, rows, zone map,
//! │                                │  per-column (name, encoding,
//! │                                │  offset, len, crc32)
//! ├────────────────────────────────┤
//! │ footer_len: u32 LE             │
//! │ footer_crc: u32 LE             │
//! │ magic: b"RSG1"                 │
//! └────────────────────────────────┘
//! ```
//!
//! Trace column encodings: timestamps / ids / response times /
//! argument offsets are delta-varints (zigzag deltas over the previous
//! value), device ids are dictionary-coded, command tokens reuse the
//! dense `u16` token ids as plain varints, modes / procedures / labels
//! are one byte per row, exceptions are sparse `(delta row, message)`
//! pairs, and argument / return values use a tagged binary codec.
//! Power segments store the 122 telemetry lanes as raw little-endian
//! `f64` bytes, one column per lane.
//!
//! # Examples
//!
//! ```no_run
//! use rad_core::{DeviceKind, TraceBatch};
//! use rad_store::segment::{SegmentOptions, SegmentSet, SegmentWriter, TraceQuery};
//!
//! let dir = std::path::Path::new("/tmp/segments");
//! let mut writer = SegmentWriter::create(dir, SegmentOptions::default())?;
//! writer.seal_traces(&TraceBatch::new())?;
//! let set = SegmentSet::open(dir)?;
//! let scan = set.query(&TraceQuery::new().device(DeviceKind::C9))?;
//! assert_eq!(scan.pruned() + scan.scanned(), 0);
//! # Ok::<(), rad_core::RadError>(())
//! ```

use std::collections::VecDeque;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use rad_core::{
    DeviceId, DeviceKind, Label, ProcedureKind, RadError, RunId, TraceBatch, TraceColumns,
    TraceMode, TraceSource,
};
use rad_power::{BlockSource, PowerBlock, PowerSample, PowerSink, PowerSource, RecordingMeta};

use crate::wal::{atomic_write_stream, crc32, CrashInjector, QuarantinedSegment};

pub mod codec;

use codec::ByteReader;

/// File-name extension of sealed segments.
pub const SEGMENT_EXT: &str = "seg";

/// Trailing magic of every segment file.
const MAGIC: &[u8; 4] = b"RSG1";

/// Fixed trailer size: footer length + footer CRC + magic.
const TRAILER_LEN: u64 = 12;

/// Minimum encoded bytes per worker before a scan fans out over
/// scoped threads. Decoding runs at hundreds of MB/s per core, so
/// below ~1 MiB the spawn/join overhead eats the win.
const MIN_SCAN_BYTES_PER_THREAD: usize = 1 << 20;

/// What a segment holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Columns of a [`TraceBatch`].
    Trace,
    /// Lanes of a [`PowerBlock`] plus its recording metadata.
    Power,
}

impl SegmentKind {
    fn as_u8(self) -> u8 {
        match self {
            SegmentKind::Trace => 0,
            SegmentKind::Power => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self, String> {
        match v {
            0 => Ok(SegmentKind::Trace),
            1 => Ok(SegmentKind::Power),
            other => Err(format!("unknown segment kind {other}")),
        }
    }
}

/// Fixed enum tables used by the one-byte columns. Decode validates
/// against these, so a corrupted byte becomes a typed error instead of
/// a bogus row.
const MODES: [TraceMode; 3] = [TraceMode::Direct, TraceMode::Remote, TraceMode::Cloud];
const PROCS: [ProcedureKind; 7] = [
    ProcedureKind::AutomatedSolubilityN9,
    ProcedureKind::AutomatedSolubilityN9Ur3e,
    ProcedureKind::CrystalSolubility,
    ProcedureKind::JoystickMovements,
    ProcedureKind::VelocitySweep,
    ProcedureKind::PayloadSweep,
    ProcedureKind::Unknown,
];
const LABELS: [Label; 5] = [
    Label::Benign,
    Label::Unknown,
    Label::Anomalous(rad_core::AnomalyCause::QuantosDoorVsN9),
    Label::Anomalous(rad_core::AnomalyCause::QuantosDoorVsUr3e),
    Label::Anomalous(rad_core::AnomalyCause::ArmVsTecan),
];

fn code_of<T: PartialEq + Copy>(table: &[T], v: T) -> u8 {
    table
        .iter()
        .position(|t| *t == v)
        .expect("enum table covers every variant") as u8
}

fn from_code<T: Copy>(table: &[T], code: u8, what: &str) -> Result<T, String> {
    table
        .get(code as usize)
        .copied()
        .ok_or_else(|| format!("invalid {what} code {code}"))
}

fn device_kind_index(kind: DeviceKind) -> u8 {
    code_of(&DeviceKind::all(), kind)
}

fn device_kind_from_index(idx: u8) -> Result<DeviceKind, String> {
    from_code(&DeviceKind::all(), idx, "device kind")
}

// ---------------------------------------------------------------------------
// Zone maps

/// Min/max statistics of one segment, read from the footer without
/// touching any column payload. A [`TraceQuery`] whose predicates
/// cannot intersect these bounds skips the segment entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Smallest timestamp in the segment, in microseconds.
    pub ts_min: u64,
    /// Largest timestamp in the segment, in microseconds.
    pub ts_max: u64,
    /// Bit `i` set iff some row targets `DeviceKind::all()[i]`.
    pub device_mask: u32,
    /// Bit `i` set iff some row belongs to the `i`-th procedure (in
    /// the fixed footer table order P1..P6, unknown).
    pub procedure_mask: u32,
    /// Smallest run id among rows with one (0 when none have one).
    pub run_min: u32,
    /// Largest run id among rows with one (0 when none have one).
    pub run_max: u32,
    /// Whether any row carries a run id.
    pub has_runs: bool,
    /// Whether any row carries *no* run id.
    pub has_unassigned: bool,
}

impl ZoneMap {
    fn for_traces(batch: &TraceBatch) -> ZoneMap {
        let mut zone = ZoneMap {
            ts_min: u64::MAX,
            ts_max: 0,
            device_mask: 0,
            procedure_mask: 0,
            run_min: u32::MAX,
            run_max: 0,
            has_runs: false,
            has_unassigned: false,
        };
        for &ts in batch.timestamps_us() {
            zone.ts_min = zone.ts_min.min(ts);
            zone.ts_max = zone.ts_max.max(ts);
        }
        for d in batch.devices() {
            zone.device_mask |= 1 << device_kind_index(d.kind());
        }
        for &p in batch.procedures() {
            zone.procedure_mask |= 1 << code_of(&PROCS, p);
        }
        for r in batch.run_ids() {
            match r {
                Some(run) => {
                    zone.has_runs = true;
                    zone.run_min = zone.run_min.min(run.0);
                    zone.run_max = zone.run_max.max(run.0);
                }
                None => zone.has_unassigned = true,
            }
        }
        if batch.is_empty() {
            zone.ts_min = 0;
        }
        if !zone.has_runs {
            zone.run_min = 0;
        }
        zone
    }

    fn for_power(meta: &RecordingMeta, block: &PowerBlock) -> ZoneMap {
        let ts = block.lane(rad_power::block::lane::TIMESTAMP);
        // Power timestamps are f64 seconds; the zone keeps saturating
        // microsecond bounds, good enough for coarse time pruning.
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &t in ts {
            let us = (t.max(0.0) * 1e6) as u64;
            lo = lo.min(us);
            hi = hi.max(us);
        }
        if ts.is_empty() {
            lo = 0;
        }
        ZoneMap {
            ts_min: lo,
            ts_max: hi,
            device_mask: 0,
            procedure_mask: 1 << code_of(&PROCS, meta.procedure),
            run_min: meta.run_id.0,
            run_max: meta.run_id.0,
            has_runs: true,
            has_unassigned: false,
        }
    }

    /// Whether a segment with these bounds could hold rows matching
    /// `query`. `false` means the segment is safe to skip unread.
    pub fn admits(&self, query: &TraceQuery) -> bool {
        if let Some(d) = query.device {
            if self.device_mask & (1 << device_kind_index(d)) == 0 {
                return false;
            }
        }
        if let Some(p) = query.procedure {
            if self.procedure_mask & (1 << code_of(&PROCS, p)) == 0 {
                return false;
            }
        }
        if let Some(r) = query.run_id {
            if !self.has_runs || r.0 < self.run_min || r.0 > self.run_max {
                return false;
            }
        }
        if let Some(lo) = query.ts_min {
            if self.ts_max < lo {
                return false;
            }
        }
        if let Some(hi) = query.ts_max {
            if self.ts_min > hi {
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Queries

/// A conjunctive predicate over trace rows, pushed down into the
/// segment scan: zone maps prune whole segments, then only the columns
/// the predicates touch are decoded to select rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceQuery {
    device: Option<DeviceKind>,
    procedure: Option<ProcedureKind>,
    run_id: Option<RunId>,
    ts_min: Option<u64>,
    ts_max: Option<u64>,
}

impl TraceQuery {
    /// A query with no predicates (matches every row).
    pub fn new() -> Self {
        TraceQuery::default()
    }

    /// Keep only rows targeting `device`.
    #[must_use]
    pub fn device(mut self, device: DeviceKind) -> Self {
        self.device = Some(device);
        self
    }

    /// Keep only rows of `procedure`.
    #[must_use]
    pub fn procedure(mut self, procedure: ProcedureKind) -> Self {
        self.procedure = Some(procedure);
        self
    }

    /// Keep only rows of supervised run `run_id`.
    #[must_use]
    pub fn run(mut self, run_id: RunId) -> Self {
        self.run_id = Some(run_id);
        self
    }

    /// Keep only rows with `ts_min <= timestamp_us <= ts_max`.
    #[must_use]
    pub fn time_range(mut self, ts_min_us: u64, ts_max_us: u64) -> Self {
        self.ts_min = Some(ts_min_us);
        self.ts_max = Some(ts_max_us);
        self
    }

    /// Whether the query has no predicates at all.
    pub fn is_unfiltered(&self) -> bool {
        *self == TraceQuery::default()
    }

    /// Evaluates the predicates against one in-memory batch — the
    /// reference semantics the segment scan must agree with.
    pub fn matching_rows(&self, batch: &TraceBatch) -> Vec<usize> {
        let devices = batch.devices();
        let procedures = batch.procedures();
        let run_ids = batch.run_ids();
        let timestamps = batch.timestamps_us();
        (0..batch.len())
            .filter(|&i| {
                self.device.is_none_or(|d| devices[i].kind() == d)
                    && self.procedure.is_none_or(|p| procedures[i] == p)
                    && self.run_id.is_none_or(|r| run_ids[i] == Some(r))
                    && self.ts_min.is_none_or(|lo| timestamps[i] >= lo)
                    && self.ts_max.is_none_or(|hi| timestamps[i] <= hi)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Footer

#[derive(Debug, Clone)]
struct ColumnMeta {
    name: String,
    encoding: u8,
    offset: u64,
    len: u64,
    crc: u32,
}

#[derive(Debug, Clone)]
struct Footer {
    kind: SegmentKind,
    rows: u64,
    zone: ZoneMap,
    /// Recording identity, power segments only.
    power_meta: Option<RecordingMeta>,
    columns: Vec<ColumnMeta>,
}

/// Column encodings, recorded per column so decode can verify it is
/// reading what the writer wrote.
mod enc {
    pub const DELTA_VARINT: u8 = 0;
    pub const VARINT: u8 = 1;
    pub const DEVICE_DICT: u8 = 2;
    pub const BYTE: u8 = 3;
    pub const VALUES: u8 = 4;
    pub const EXCEPTIONS: u8 = 5;
    pub const OPTIONAL_RUN: u8 = 6;
    pub const F64_RAW: u8 = 7;
}

impl Footer {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.columns.len() * 24);
        out.push(self.kind.as_u8());
        codec::write_varint(&mut out, self.rows);
        codec::write_varint(&mut out, self.zone.ts_min);
        codec::write_varint(&mut out, self.zone.ts_max);
        codec::write_varint(&mut out, u64::from(self.zone.device_mask));
        codec::write_varint(&mut out, u64::from(self.zone.procedure_mask));
        out.push(u8::from(self.zone.has_runs) | (u8::from(self.zone.has_unassigned) << 1));
        codec::write_varint(&mut out, u64::from(self.zone.run_min));
        codec::write_varint(&mut out, u64::from(self.zone.run_max));
        if let Some(meta) = &self.power_meta {
            out.push(code_of(&PROCS, meta.procedure));
            codec::write_varint(&mut out, u64::from(meta.run_id.0));
            codec::write_str(&mut out, &meta.description);
        }
        codec::write_varint(&mut out, self.columns.len() as u64);
        for col in &self.columns {
            codec::write_str(&mut out, &col.name);
            out.push(col.encoding);
            codec::write_varint(&mut out, col.offset);
            codec::write_varint(&mut out, col.len);
            out.extend_from_slice(&col.crc.to_le_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Footer, String> {
        let mut r = ByteReader::new(bytes);
        let kind = SegmentKind::from_u8(r.u8()?)?;
        let rows = r.varint()?;
        let zone = {
            let ts_min = r.varint()?;
            let ts_max = r.varint()?;
            let device_mask = u32::try_from(r.varint()?).map_err(|_| "device mask overflow")?;
            let procedure_mask =
                u32::try_from(r.varint()?).map_err(|_| "procedure mask overflow")?;
            let flags = r.u8()?;
            let run_min = u32::try_from(r.varint()?).map_err(|_| "run min overflow")?;
            let run_max = u32::try_from(r.varint()?).map_err(|_| "run max overflow")?;
            ZoneMap {
                ts_min,
                ts_max,
                device_mask,
                procedure_mask,
                run_min,
                run_max,
                has_runs: flags & 1 != 0,
                has_unassigned: flags & 2 != 0,
            }
        };
        let power_meta = if kind == SegmentKind::Power {
            let procedure = from_code(&PROCS, r.u8()?, "procedure")?;
            let run_id = RunId(u32::try_from(r.varint()?).map_err(|_| "run id overflow")?);
            let description = r.str()?;
            Some(RecordingMeta {
                procedure,
                run_id,
                description,
            })
        } else {
            None
        };
        let ncols = r.varint()? as usize;
        if ncols > 4096 {
            return Err(format!("implausible column count {ncols}"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = r.str()?;
            let encoding = r.u8()?;
            let offset = r.varint()?;
            let len = r.varint()?;
            let crc = r.u32_le()?;
            columns.push(ColumnMeta {
                name,
                encoding,
                offset,
                len,
                crc,
            });
        }
        if !r.is_empty() {
            return Err("trailing bytes after footer".to_owned());
        }
        Ok(Footer {
            kind,
            rows,
            zone,
            power_meta,
            columns,
        })
    }
}

// ---------------------------------------------------------------------------
// Encoding a batch / block into segment bytes

fn encode_trace_columns(batch: &TraceBatch) -> Vec<(&'static str, u8, Vec<u8>)> {
    let rows = batch.len();
    let mut cols: Vec<(&'static str, u8, Vec<u8>)> = Vec::with_capacity(13);

    let mut ids = Vec::new();
    codec::write_deltas(&mut ids, batch.ids());
    cols.push(("ids", enc::DELTA_VARINT, ids));

    let mut ts = Vec::new();
    codec::write_deltas(&mut ts, batch.timestamps_us());
    cols.push(("ts", enc::DELTA_VARINT, ts));

    let mut dev = Vec::new();
    codec::write_devices(&mut dev, batch.devices());
    cols.push(("dev", enc::DEVICE_DICT, dev));

    let mut tok = Vec::with_capacity(rows);
    for &t in batch.command_token_ids() {
        codec::write_varint(&mut tok, u64::from(t));
    }
    cols.push(("tok", enc::VARINT, tok));

    let offsets: Vec<u64> = batch.arg_offsets().iter().map(|&o| u64::from(o)).collect();
    let mut argoff = Vec::new();
    codec::write_deltas(&mut argoff, &offsets);
    cols.push(("argoff", enc::DELTA_VARINT, argoff));

    let mut args = Vec::new();
    codec::write_varint(&mut args, batch.arg_values().len() as u64);
    for v in batch.arg_values() {
        codec::write_value(&mut args, v);
    }
    cols.push(("args", enc::VALUES, args));

    let mode: Vec<u8> = batch.modes().iter().map(|&m| code_of(&MODES, m)).collect();
    cols.push(("mode", enc::BYTE, mode));

    let mut ret = Vec::new();
    codec::write_varint(&mut ret, batch.return_values().len() as u64);
    for v in batch.return_values() {
        codec::write_value(&mut ret, v);
    }
    cols.push(("ret", enc::VALUES, ret));

    let mut exc = Vec::new();
    codec::write_varint(&mut exc, batch.exception_rows().len() as u64);
    let mut prev = 0u64;
    for (row, msg) in batch.exception_rows() {
        codec::write_varint(&mut exc, u64::from(*row) - prev);
        codec::write_str(&mut exc, msg);
        prev = u64::from(*row);
    }
    cols.push(("exc", enc::EXCEPTIONS, exc));

    let mut rt = Vec::new();
    codec::write_deltas(&mut rt, batch.response_times_us());
    cols.push(("rt", enc::DELTA_VARINT, rt));

    let proc: Vec<u8> = batch
        .procedures()
        .iter()
        .map(|&p| code_of(&PROCS, p))
        .collect();
    cols.push(("proc", enc::BYTE, proc));

    let mut run = Vec::with_capacity(rows);
    for r in batch.run_ids() {
        codec::write_varint(&mut run, r.map_or(0, |r| u64::from(r.0) + 1));
    }
    cols.push(("run", enc::OPTIONAL_RUN, run));

    let label: Vec<u8> = batch
        .labels()
        .iter()
        .map(|&l| code_of(&LABELS, l))
        .collect();
    cols.push(("label", enc::BYTE, label));

    cols
}

fn lane_name(lane: usize) -> String {
    format!("lane{lane:03}")
}

fn encode_power_columns(block: &PowerBlock) -> Vec<(String, u8, Vec<u8>)> {
    (0..PowerSample::FIELD_COUNT)
        .map(|i| {
            let lane = block.lane(i);
            let mut bytes = Vec::with_capacity(lane.len() * 8);
            for &v in lane {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            (lane_name(i), enc::F64_RAW, bytes)
        })
        .collect()
}

fn write_segment_file(
    path: &Path,
    kind: SegmentKind,
    rows: u64,
    zone: ZoneMap,
    power_meta: Option<RecordingMeta>,
    columns: Vec<(String, u8, Vec<u8>)>,
    injector: Option<&CrashInjector>,
) -> Result<(), RadError> {
    let mut metas = Vec::with_capacity(columns.len());
    let mut offset = 0u64;
    for (name, encoding, bytes) in &columns {
        metas.push(ColumnMeta {
            name: name.clone(),
            encoding: *encoding,
            offset,
            len: bytes.len() as u64,
            crc: crc32(bytes),
        });
        offset += bytes.len() as u64;
    }
    let footer = Footer {
        kind,
        rows,
        zone,
        power_meta,
        columns: metas,
    }
    .encode();
    let footer_crc = crc32(&footer);
    atomic_write_stream(path, injector, |w| {
        for (_, _, bytes) in &columns {
            w.write_all(bytes)?;
        }
        w.write_all(&footer)?;
        w.write_all(&(footer.len() as u32).to_le_bytes())?;
        w.write_all(&footer_crc.to_le_bytes())?;
        w.write_all(MAGIC)?;
        Ok(())
    })
}

// ---------------------------------------------------------------------------
// Writer

/// Partitioning knobs for [`SegmentWriter`].
#[derive(Debug, Clone, Copy)]
pub struct SegmentOptions {
    /// Maximum rows per sealed trace segment; larger batches split
    /// into consecutive time-partitioned files.
    pub rows_per_segment: usize,
    /// Whether to split each batch into one run of segments per
    /// device kind. Device partitions make device-filtered queries
    /// prune to exactly the relevant files, but interleave the global
    /// capture order across files — leave this off when the scan
    /// order must reproduce the original row order (e.g. export).
    pub partition_by_device: bool,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            rows_per_segment: 65_536,
            partition_by_device: false,
        }
    }
}

/// Seals batches and power recordings into immutable segment files.
///
/// File names embed a monotonically increasing sequence number, so
/// lexicographic order of a directory listing equals seal order —
/// which is what [`SegmentSet`] scans in.
#[derive(Debug)]
pub struct SegmentWriter<'a> {
    dir: PathBuf,
    options: SegmentOptions,
    injector: Option<&'a CrashInjector>,
    seq: u32,
}

impl<'a> SegmentWriter<'a> {
    /// Creates `dir` if missing and opens a writer that continues the
    /// directory's sequence numbering.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failure.
    pub fn create(dir: &Path, options: SegmentOptions) -> Result<Self, RadError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| RadError::Store(format!("create segment dir {}: {e}", dir.display())))?;
        let seq = next_seq(dir)?;
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            options,
            injector: None,
            seq,
        })
    }

    /// Attaches a crash injector; sealed files then pass through the
    /// same [`CrashSite::MidCompaction`] / [`CrashSite::MidRename`]
    /// windows as checkpoint writes.
    ///
    /// [`CrashSite::MidCompaction`]: crate::wal::CrashSite::MidCompaction
    /// [`CrashSite::MidRename`]: crate::wal::CrashSite::MidRename
    #[must_use]
    pub fn with_injector(mut self, injector: Option<&'a CrashInjector>) -> Self {
        self.injector = injector;
        self
    }

    fn next_path(&mut self, stem: &str) -> PathBuf {
        let path = self
            .dir
            .join(format!("{stem}-{:06}.{SEGMENT_EXT}", self.seq));
        self.seq += 1;
        path
    }

    /// Seals `batch` into one or more segments (partitioned by device
    /// when configured, then split every
    /// [`SegmentOptions::rows_per_segment`] rows) and returns the
    /// paths written, in seal order. An empty batch seals nothing.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failure or an
    /// injected crash.
    pub fn seal_traces(&mut self, batch: &TraceBatch) -> Result<Vec<PathBuf>, RadError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let partitions: Vec<(String, Vec<usize>)> = if self.options.partition_by_device {
            DeviceKind::all()
                .iter()
                .map(|&kind| {
                    let rows: Vec<usize> = batch
                        .devices()
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| d.kind() == kind)
                        .map(|(i, _)| i)
                        .collect();
                    (kind.name().to_lowercase(), rows)
                })
                .filter(|(_, rows)| !rows.is_empty())
                .collect()
        } else {
            vec![("all".to_owned(), (0..batch.len()).collect())]
        };
        let mut paths = Vec::new();
        for (part, rows) in partitions {
            for chunk in rows.chunks(self.options.rows_per_segment.max(1)) {
                // Fast path: a single whole-batch partition encodes the
                // batch's columns directly, no gather.
                let whole = chunk.len() == batch.len();
                let gathered;
                let piece = if whole {
                    batch
                } else {
                    gathered = batch.select(chunk);
                    &gathered
                };
                let path = self.next_path(&format!("trace-{part}"));
                write_segment_file(
                    &path,
                    SegmentKind::Trace,
                    piece.len() as u64,
                    ZoneMap::for_traces(piece),
                    None,
                    encode_trace_columns(piece)
                        .into_iter()
                        .map(|(n, e, b)| (n.to_owned(), e, b))
                        .collect(),
                    self.injector,
                )?;
                paths.push(path);
            }
        }
        Ok(paths)
    }

    /// Seals one power recording (metadata + full block) into a
    /// segment and returns its path.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failure or an
    /// injected crash.
    pub fn seal_power(
        &mut self,
        meta: &RecordingMeta,
        block: &PowerBlock,
    ) -> Result<PathBuf, RadError> {
        let path = self.next_path(&format!("power-run{}", meta.run_id.0));
        write_segment_file(
            &path,
            SegmentKind::Power,
            block.len() as u64,
            ZoneMap::for_power(meta, block),
            Some(meta.clone()),
            encode_power_columns(block),
            self.injector,
        )?;
        Ok(path)
    }
}

fn next_seq(dir: &Path) -> Result<u32, RadError> {
    let mut max = 0u32;
    for name in segment_file_names(dir)? {
        // `<stem>-NNNNNN.seg` — the final dash-separated field is the
        // sequence number.
        if let Some(seq) = name
            .strip_suffix(&format!(".{SEGMENT_EXT}"))
            .and_then(|s| s.rsplit('-').next())
            .and_then(|s| s.parse::<u32>().ok())
        {
            max = max.max(seq + 1);
        }
    }
    Ok(max)
}

fn segment_file_names(dir: &Path) -> Result<Vec<String>, RadError> {
    let mut names = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(names),
        Err(e) => {
            return Err(RadError::Store(format!(
                "read segment dir {}: {e}",
                dir.display()
            )))
        }
    };
    for entry in entries {
        let entry = entry.map_err(|e| RadError::Store(format!("read segment dir entry: {e}")))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(&format!(".{SEGMENT_EXT}")) {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

// ---------------------------------------------------------------------------
// Reader

fn corrupt(path: &Path, offset: u64, reason: impl Into<String>) -> RadError {
    RadError::SegmentCorrupt {
        segment: path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string()),
        offset,
        reason: reason.into(),
    }
}

/// Lazy reader over one sealed segment.
///
/// The footer is read eagerly at open; column payloads are fetched
/// with positioned reads only when a decode first needs them, then
/// cached. [`SegmentReader::column_loaded`] makes the laziness
/// testable: a device+time query must never load the `args` column.
#[derive(Debug)]
pub struct SegmentReader {
    path: PathBuf,
    file: File,
    body_len: u64,
    footer: Footer,
    cache: Vec<Option<Vec<u8>>>,
}

impl SegmentReader {
    /// Opens `path` and parses its footer.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::SegmentCorrupt`] when the trailer, magic,
    /// footer CRC, or footer structure is invalid, and
    /// [`RadError::Store`] on I/O failure.
    pub fn open(path: &Path) -> Result<Self, RadError> {
        let file = File::open(path)
            .map_err(|e| RadError::Store(format!("open segment {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| RadError::Store(format!("stat segment {}: {e}", path.display())))?
            .len();
        if len < TRAILER_LEN {
            return Err(corrupt(path, 0, format!("file too short ({len} bytes)")));
        }
        let mut trailer = [0u8; TRAILER_LEN as usize];
        read_exact_at(&file, &mut trailer, len - TRAILER_LEN, path)?;
        if &trailer[8..12] != MAGIC {
            return Err(corrupt(path, len - 4, "bad magic"));
        }
        let footer_len = u64::from(u32::from_le_bytes(
            trailer[0..4].try_into().expect("4 bytes"),
        ));
        let footer_crc = u32::from_le_bytes(trailer[4..8].try_into().expect("4 bytes"));
        if footer_len > len - TRAILER_LEN {
            return Err(corrupt(
                path,
                len - TRAILER_LEN,
                format!("footer length {footer_len} exceeds file"),
            ));
        }
        let footer_start = len - TRAILER_LEN - footer_len;
        let mut footer_bytes = vec![0u8; footer_len as usize];
        read_exact_at(&file, &mut footer_bytes, footer_start, path)?;
        if crc32(&footer_bytes) != footer_crc {
            return Err(corrupt(path, footer_start, "footer crc mismatch"));
        }
        let footer =
            Footer::decode(&footer_bytes).map_err(|reason| corrupt(path, footer_start, reason))?;
        for col in &footer.columns {
            if col.offset + col.len > footer_start {
                return Err(corrupt(
                    path,
                    footer_start,
                    format!("column `{}` extends past the body", col.name),
                ));
            }
        }
        let cache = vec![None; footer.columns.len()];
        Ok(SegmentReader {
            path: path.to_path_buf(),
            file,
            body_len: footer_start,
            footer,
            cache,
        })
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What the segment holds.
    pub fn kind(&self) -> SegmentKind {
        self.footer.kind
    }

    /// Row (trace) or tick (power) count.
    pub fn rows(&self) -> u64 {
        self.footer.rows
    }

    /// The footer's zone map.
    pub fn zone(&self) -> &ZoneMap {
        &self.footer.zone
    }

    /// Total encoded column bytes (file size minus footer and trailer).
    pub fn body_bytes(&self) -> u64 {
        self.body_len
    }

    /// Recording identity of a power segment.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on a trace segment.
    pub fn power_meta(&self) -> Result<RecordingMeta, RadError> {
        self.footer
            .power_meta
            .clone()
            .ok_or_else(|| RadError::Store("not a power segment".to_owned()))
    }

    /// Whether the named column's payload has been fetched from disk.
    /// Lets tests pin down the laziness contract.
    pub fn column_loaded(&self, name: &str) -> bool {
        self.footer
            .columns
            .iter()
            .position(|c| c.name == name)
            .is_some_and(|i| self.cache[i].is_some())
    }

    fn column_index(&self, name: &str, encoding: u8) -> Result<usize, RadError> {
        let idx = self
            .footer
            .columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| {
                corrupt(
                    &self.path,
                    self.body_len,
                    format!("missing column `{name}`"),
                )
            })?;
        if self.footer.columns[idx].encoding != encoding {
            return Err(corrupt(
                &self.path,
                self.footer.columns[idx].offset,
                format!(
                    "column `{name}` has encoding {}, expected {encoding}",
                    self.footer.columns[idx].encoding
                ),
            ));
        }
        Ok(idx)
    }

    /// Fetches (and caches) one column's payload, verifying its CRC on
    /// first load. Read the payload back with [`SegmentReader::cached`]
    /// — split so decoders can borrow the bytes immutably while still
    /// calling `&self` helpers for error context.
    fn load_column(&mut self, idx: usize) -> Result<(), RadError> {
        if self.cache[idx].is_none() {
            let meta = &self.footer.columns[idx];
            let mut bytes = vec![0u8; meta.len as usize];
            read_exact_at(&self.file, &mut bytes, meta.offset, &self.path)?;
            if crc32(&bytes) != meta.crc {
                return Err(corrupt(
                    &self.path,
                    meta.offset,
                    format!("column `{}` crc mismatch", meta.name),
                ));
            }
            self.cache[idx] = Some(bytes);
        }
        Ok(())
    }

    fn cached(&self, idx: usize) -> &[u8] {
        self.cache[idx].as_deref().expect("column loaded")
    }

    fn decode_err(&self, name: &str, reason: String) -> RadError {
        let offset = self
            .footer
            .columns
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.offset);
        corrupt(&self.path, offset, format!("column `{name}`: {reason}"))
    }

    fn u64_column(&mut self, name: &str) -> Result<Vec<u64>, RadError> {
        let rows = self.footer.rows as usize;
        let idx = self.column_index(name, enc::DELTA_VARINT)?;
        self.load_column(idx)?;
        let bytes = self.cached(idx);
        codec::read_deltas(&mut ByteReader::new(bytes), rows).map_err(|e| self.decode_err(name, e))
    }

    fn byte_column(&mut self, name: &str) -> Result<Vec<u8>, RadError> {
        let rows = self.footer.rows as usize;
        let idx = self.column_index(name, enc::BYTE)?;
        self.load_column(idx)?;
        let bytes = self.cached(idx);
        if bytes.len() != rows {
            return Err(self.decode_err(name, format!("{} bytes for {rows} rows", bytes.len())));
        }
        Ok(bytes.to_vec())
    }

    fn devices_column(&mut self) -> Result<Vec<DeviceId>, RadError> {
        let rows = self.footer.rows as usize;
        let idx = self.column_index("dev", enc::DEVICE_DICT)?;
        self.load_column(idx)?;
        let bytes = self.cached(idx);
        codec::read_devices(&mut ByteReader::new(bytes), rows)
            .map_err(|e| self.decode_err("dev", e))
    }

    fn run_column(&mut self) -> Result<Vec<Option<RunId>>, RadError> {
        let rows = self.footer.rows as usize;
        let idx = self.column_index("run", enc::OPTIONAL_RUN)?;
        self.load_column(idx)?;
        let bytes = self.cached(idx);
        let mut r = ByteReader::new(bytes);
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let v = r.varint().map_err(|e| self.decode_err("run", e))?;
            out.push(match v {
                0 => None,
                n => Some(RunId(u32::try_from(n - 1).map_err(|_| {
                    self.decode_err("run", format!("run id {n} overflow"))
                })?)),
            });
        }
        r.expect_empty().map_err(|e| self.decode_err("run", e))?;
        Ok(out)
    }

    fn values_column(&mut self, name: &str) -> Result<Vec<rad_core::Value>, RadError> {
        let idx = self.column_index(name, enc::VALUES)?;
        self.load_column(idx)?;
        let bytes = self.cached(idx);
        let mut r = ByteReader::new(bytes);
        let count = r.varint().map_err(|e| self.decode_err(name, e))? as usize;
        if count > bytes.len() {
            return Err(self.decode_err(name, format!("implausible value count {count}")));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(codec::read_value(&mut r).map_err(|e| self.decode_err(name, e))?);
        }
        r.expect_empty().map_err(|e| self.decode_err(name, e))?;
        Ok(out)
    }

    fn exceptions_column(&mut self) -> Result<Vec<(u32, String)>, RadError> {
        let idx = self.column_index("exc", enc::EXCEPTIONS)?;
        self.load_column(idx)?;
        let bytes = self.cached(idx);
        let mut r = ByteReader::new(bytes);
        let count = r.varint().map_err(|e| self.decode_err("exc", e))? as usize;
        if count > bytes.len() {
            return Err(self.decode_err("exc", format!("implausible exception count {count}")));
        }
        let mut out = Vec::with_capacity(count);
        let mut row = 0u64;
        for _ in 0..count {
            let delta = r.varint().map_err(|e| self.decode_err("exc", e))?;
            row += delta;
            let msg = r.str().map_err(|e| self.decode_err("exc", e))?;
            let row32 = u32::try_from(row)
                .map_err(|_| self.decode_err("exc", format!("exception row {row} overflow")))?;
            out.push((row32, msg));
        }
        r.expect_empty().map_err(|e| self.decode_err("exc", e))?;
        Ok(out)
    }

    fn tokens_column(&mut self) -> Result<Vec<u16>, RadError> {
        let rows = self.footer.rows as usize;
        let idx = self.column_index("tok", enc::VARINT)?;
        self.load_column(idx)?;
        let bytes = self.cached(idx);
        let mut r = ByteReader::new(bytes);
        let mut out = Vec::with_capacity(rows);
        for _ in 0..rows {
            let v = r.varint().map_err(|e| self.decode_err("tok", e))?;
            out.push(
                u16::try_from(v)
                    .map_err(|_| self.decode_err("tok", format!("token id {v} overflow")))?,
            );
        }
        r.expect_empty().map_err(|e| self.decode_err("tok", e))?;
        Ok(out)
    }

    /// Decodes the full batch.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::SegmentCorrupt`] on any CRC or structural
    /// failure, and [`RadError::Store`] on I/O failure or a power
    /// segment.
    pub fn read_batch(&mut self) -> Result<TraceBatch, RadError> {
        if self.footer.kind != SegmentKind::Trace {
            return Err(RadError::Store("not a trace segment".to_owned()));
        }
        let rows = self.footer.rows as usize;
        let ids = self.u64_column("ids")?;
        let timestamps_us = self.u64_column("ts")?;
        let devices = self.devices_column()?;
        let command_tokens = self.tokens_column()?;
        let arg_offsets64 = {
            let idx = self.column_index("argoff", enc::DELTA_VARINT)?;
            self.load_column(idx)?;
            let bytes = self.cached(idx);
            codec::read_deltas(&mut ByteReader::new(bytes), rows + 1)
                .map_err(|e| self.decode_err("argoff", e))?
        };
        let mut arg_offsets = Vec::with_capacity(arg_offsets64.len());
        for o in arg_offsets64 {
            arg_offsets.push(
                u32::try_from(o)
                    .map_err(|_| self.decode_err("argoff", format!("offset {o} overflow")))?,
            );
        }
        let args = self.values_column("args")?;
        let mode_codes = self.byte_column("mode")?;
        let mut modes = Vec::with_capacity(rows);
        for c in mode_codes {
            modes.push(from_code(&MODES, c, "mode").map_err(|e| self.decode_err("mode", e))?);
        }
        let return_values = self.values_column("ret")?;
        let exceptions = self.exceptions_column()?;
        let response_times_us = self.u64_column("rt")?;
        let proc_codes = self.byte_column("proc")?;
        let mut procedures = Vec::with_capacity(rows);
        for c in proc_codes {
            procedures
                .push(from_code(&PROCS, c, "procedure").map_err(|e| self.decode_err("proc", e))?);
        }
        let run_ids = self.run_column()?;
        let label_codes = self.byte_column("label")?;
        let mut labels = Vec::with_capacity(rows);
        for c in label_codes {
            labels.push(from_code(&LABELS, c, "label").map_err(|e| self.decode_err("label", e))?);
        }
        TraceBatch::from_columns(TraceColumns {
            ids,
            timestamps_us,
            devices,
            command_tokens,
            arg_offsets,
            args,
            modes,
            return_values,
            exceptions,
            response_times_us,
            procedures,
            run_ids,
            labels,
        })
        .map_err(|e| corrupt(&self.path, 0, format!("incoherent columns: {e}")))
    }

    /// Evaluates `query` against this segment, decoding predicate
    /// columns first and the remaining columns only when at least one
    /// row matches. Returns `None` when nothing matches — in which
    /// case the argument arena and value columns were never read.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentReader::read_batch`].
    pub fn query(&mut self, query: &TraceQuery) -> Result<Option<TraceBatch>, RadError> {
        if self.footer.kind != SegmentKind::Trace {
            return Err(RadError::Store("not a trace segment".to_owned()));
        }
        if self.footer.rows == 0 {
            return Ok(None);
        }
        if query.is_unfiltered() {
            return Ok(Some(self.read_batch()?));
        }
        let rows = self.footer.rows as usize;
        let mut selected: Vec<bool> = vec![true; rows];
        if let Some(d) = query.device {
            let devices = self.devices_column()?;
            for (keep, dev) in selected.iter_mut().zip(&devices) {
                *keep &= dev.kind() == d;
            }
        }
        if let Some(p) = query.procedure {
            let procs = self.byte_column("proc")?;
            let code = code_of(&PROCS, p);
            for (keep, c) in selected.iter_mut().zip(&procs) {
                *keep &= *c == code;
            }
        }
        if let Some(r) = query.run_id {
            let runs = self.run_column()?;
            for (keep, run) in selected.iter_mut().zip(&runs) {
                *keep &= *run == Some(r);
            }
        }
        if query.ts_min.is_some() || query.ts_max.is_some() {
            let ts = self.u64_column("ts")?;
            for (keep, &t) in selected.iter_mut().zip(&ts) {
                *keep &=
                    query.ts_min.is_none_or(|lo| t >= lo) && query.ts_max.is_none_or(|hi| t <= hi);
            }
        }
        let hits: Vec<usize> = selected
            .iter()
            .enumerate()
            .filter(|(_, &keep)| keep)
            .map(|(i, _)| i)
            .collect();
        if hits.is_empty() {
            return Ok(None);
        }
        let batch = self.read_batch()?;
        if hits.len() == rows {
            Ok(Some(batch))
        } else {
            Ok(Some(batch.select(&hits)))
        }
    }

    /// Decodes one power lane without touching the other 121.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentReader::read_batch`], on a power
    /// segment.
    pub fn read_lane(&mut self, lane: usize) -> Result<Vec<f64>, RadError> {
        if self.footer.kind != SegmentKind::Power {
            return Err(RadError::Store("not a power segment".to_owned()));
        }
        let name = lane_name(lane);
        let ticks = self.footer.rows as usize;
        let idx = self.column_index(&name, enc::F64_RAW)?;
        self.load_column(idx)?;
        let bytes = self.cached(idx);
        if bytes.len() != ticks * 8 {
            return Err(self.decode_err(&name, format!("{} bytes for {ticks} ticks", bytes.len())));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Decodes the full power block.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentReader::read_batch`], on a power
    /// segment.
    pub fn read_block(&mut self) -> Result<PowerBlock, RadError> {
        let mut lanes = Vec::with_capacity(PowerSample::FIELD_COUNT);
        for i in 0..PowerSample::FIELD_COUNT {
            lanes.push(self.read_lane(i)?);
        }
        PowerBlock::from_lanes(lanes)
            .map_err(|e| corrupt(&self.path, 0, format!("incoherent lanes: {e}")))
    }
}

fn read_exact_at(file: &File, buf: &mut [u8], offset: u64, path: &Path) -> Result<(), RadError> {
    file.read_exact_at(buf, offset)
        .map_err(|e| RadError::Store(format!("read segment {}: {e}", path.display())))
}

// ---------------------------------------------------------------------------
// Segment sets: the parallel query layer

#[derive(Debug, Clone)]
struct SegmentEntry {
    path: PathBuf,
    kind: SegmentKind,
    rows: u64,
    body_bytes: u64,
    zone: ZoneMap,
}

/// A directory of sealed segments, queryable with predicate pushdown.
#[derive(Debug)]
pub struct SegmentSet {
    dir: PathBuf,
    segments: Vec<SegmentEntry>,
    quarantined: Vec<QuarantinedSegment>,
}

impl SegmentSet {
    /// Opens every `*.seg` file under `dir` (a missing directory is an
    /// empty set). Files whose footer fails validation are quarantined
    /// immediately and reported via [`SegmentSet::quarantined`];
    /// opening never fails on corruption.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on directory I/O failure.
    pub fn open(dir: &Path) -> Result<Self, RadError> {
        let mut segments = Vec::new();
        let mut quarantined = Vec::new();
        for name in segment_file_names(dir)? {
            let path = dir.join(&name);
            match SegmentReader::open(&path) {
                Ok(reader) => segments.push(SegmentEntry {
                    kind: reader.kind(),
                    rows: reader.rows(),
                    body_bytes: reader.body_bytes(),
                    zone: *reader.zone(),
                    path,
                }),
                Err(err @ RadError::SegmentCorrupt { .. }) => {
                    quarantined.push(quarantine_file(&path, err)?);
                }
                Err(other) => return Err(other),
            }
        }
        Ok(SegmentSet {
            dir: dir.to_path_buf(),
            segments,
            quarantined,
        })
    }

    /// The directory this set scans.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of healthy segments (trace and power).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the set holds no healthy segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total trace rows across healthy trace segments.
    pub fn trace_rows(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Trace)
            .map(|s| s.rows)
            .sum()
    }

    /// Total encoded column bytes across healthy segments — the
    /// on-disk footprint the size benchmarks report.
    pub fn body_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.body_bytes).sum()
    }

    /// Segments quarantined so far (at open or during scans).
    pub fn quarantined(&self) -> &[QuarantinedSegment] {
        &self.quarantined
    }

    /// Runs `query` over every trace segment with zone-map pruning.
    /// Equivalent to [`SegmentSet::query_with`] with pruning on.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on I/O failure. Corrupt segments do
    /// not error — they are quarantined and reported on the scan.
    pub fn query(&self, query: &TraceQuery) -> Result<SegmentScan, RadError> {
        self.query_with(query, true)
    }

    /// Decodes every trace segment in full, in seal order.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentSet::query`].
    pub fn read_all(&self) -> Result<SegmentScan, RadError> {
        self.query(&TraceQuery::new())
    }

    /// Decodes only the rows whose start timestamp falls in
    /// `[ts_min_us, ts_max_us]` (inclusive, microseconds) — the
    /// time-window read scenario replay uses to target a slice of a
    /// campaign instead of the whole log. Zone-map pruning skips
    /// segments entirely outside the window without opening them.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentSet::query`].
    pub fn scan_time_range(&self, ts_min_us: u64, ts_max_us: u64) -> Result<SegmentScan, RadError> {
        self.query(&TraceQuery::new().time_range(ts_min_us, ts_max_us))
    }

    /// Runs `query`, optionally disabling zone-map pruning (every
    /// segment is then opened and filtered row-wise) — the reference
    /// the equivalence suite compares pruned scans against.
    ///
    /// Decoding fans out over scoped threads when the surviving
    /// segments carry enough bytes to amortize spawn/join (see
    /// [`rad_core::par::should_fan_out`]); results keep seal order
    /// either way. Segments that fail CRC mid-scan are quarantined on
    /// the returned scan, never aborting the survivors.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentSet::query`].
    pub fn query_with(&self, query: &TraceQuery, prune: bool) -> Result<SegmentScan, RadError> {
        let traces: Vec<&SegmentEntry> = self
            .segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Trace)
            .collect();
        let (work, pruned) = if prune {
            let work: Vec<&SegmentEntry> = traces
                .iter()
                .copied()
                .filter(|s| s.zone.admits(query))
                .collect();
            let pruned = traces.len() - work.len();
            (work, pruned)
        } else {
            (traces, 0)
        };
        let results = scan_parallel(&work, |entry| {
            SegmentReader::open(&entry.path)?.query(query)
        });
        let mut scan = SegmentScan {
            batches: VecDeque::with_capacity(work.len()),
            scanned: work.len(),
            pruned,
            quarantined: Vec::new(),
        };
        for (entry, result) in work.iter().zip(results) {
            match result {
                Ok(Some(batch)) => scan.batches.push_back(batch),
                Ok(None) => {}
                Err(err @ RadError::SegmentCorrupt { .. }) => {
                    scan.quarantined.push(quarantine_file(&entry.path, err)?);
                }
                Err(other) => return Err(other),
            }
        }
        Ok(scan)
    }

    /// Reads every power recording whose zone map admits `query`
    /// (device predicates never match power segments' empty device
    /// mask unless unset; procedure/run/time prune as usual), in seal
    /// order.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentSet::query`].
    pub fn power_query(&self, query: &TraceQuery) -> Result<PowerScan, RadError> {
        let work: Vec<&SegmentEntry> = self
            .segments
            .iter()
            .filter(|s| s.kind == SegmentKind::Power)
            .filter(|s| query.device.is_none() && s.zone.admits(query))
            .collect();
        let results = scan_parallel(&work, |entry| {
            let mut reader = SegmentReader::open(&entry.path)?;
            Ok((reader.power_meta()?, reader.read_block()?))
        });
        let mut scan = PowerScan {
            recordings: VecDeque::with_capacity(work.len()),
            quarantined: Vec::new(),
        };
        for (entry, result) in work.iter().zip(results) {
            match result {
                Ok(pair) => scan.recordings.push_back(pair),
                Err(err @ RadError::SegmentCorrupt { .. }) => {
                    scan.quarantined.push(quarantine_file(&entry.path, err)?);
                }
                Err(other) => return Err(other),
            }
        }
        Ok(scan)
    }

    /// All power recordings, in seal order.
    ///
    /// # Errors
    ///
    /// Same contract as [`SegmentSet::query`].
    pub fn power_recordings(&self) -> Result<PowerScan, RadError> {
        self.power_query(&TraceQuery::new())
    }
}

/// Runs `scan` over every entry, fanning out over scoped threads when
/// the total encoded bytes justify it. Results keep input order.
fn scan_parallel<T: Send>(
    work: &[&SegmentEntry],
    scan: impl Fn(&SegmentEntry) -> Result<T, RadError> + Sync,
) -> Vec<Result<T, RadError>> {
    let total_bytes: usize = work.iter().map(|s| s.body_bytes as usize).sum();
    if !rad_core::par::should_fan_out(work.len(), total_bytes, MIN_SCAN_BYTES_PER_THREAD) {
        return work.iter().map(|entry| scan(entry)).collect();
    }
    let workers = rad_core::par::max_workers().min(work.len());
    let chunk = work.len().div_ceil(workers);
    let scan = &scan;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = work
            .chunks(chunk)
            .map(|entries| {
                s.spawn(move || entries.iter().map(|entry| scan(entry)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("segment scan worker panicked"))
            .collect()
    })
}

fn quarantine_file(path: &Path, err: RadError) -> Result<QuarantinedSegment, RadError> {
    let RadError::SegmentCorrupt {
        segment,
        offset,
        reason,
    } = err
    else {
        unreachable!("only corruption is quarantined");
    };
    let target = path.with_file_name(format!(
        "{}.quarantined",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "segment".to_owned())
    ));
    match std::fs::rename(path, &target) {
        Ok(()) => {}
        // Already quarantined by a concurrent scan: fine.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            return Err(RadError::Store(format!(
                "quarantine segment {}: {e}",
                path.display()
            )))
        }
    }
    // Columnar segments have no frame structure; a quarantined segment
    // always loses all of its rows, so the WAL-oriented counter stays 0.
    Ok(QuarantinedSegment {
        segment,
        offset,
        reason,
        frames_before_damage: 0,
    })
}

/// The result of a trace query: matching batches in seal order, plus
/// the pruning and quarantine bookkeeping. Implements [`TraceSource`],
/// so CSV writers and exporters stream straight from segments.
#[derive(Debug)]
pub struct SegmentScan {
    batches: VecDeque<TraceBatch>,
    scanned: usize,
    pruned: usize,
    quarantined: Vec<QuarantinedSegment>,
}

impl SegmentScan {
    /// Segments whose columns were actually opened.
    pub fn scanned(&self) -> usize {
        self.scanned
    }

    /// Segments skipped by zone maps alone.
    pub fn pruned(&self) -> usize {
        self.pruned
    }

    /// Segments quarantined during this scan.
    pub fn quarantined(&self) -> &[QuarantinedSegment] {
        &self.quarantined
    }

    /// Total matching rows still queued.
    pub fn rows(&self) -> u64 {
        self.batches.iter().map(|b| b.len() as u64).sum()
    }

    /// Concatenates all queued batches into one.
    pub fn into_batch(mut self) -> TraceBatch {
        let mut out = match self.batches.pop_front() {
            Some(first) => first,
            None => return TraceBatch::new(),
        };
        for batch in self.batches {
            out.append_owned(batch);
        }
        out
    }
}

impl TraceSource for SegmentScan {
    fn next_batch(&mut self) -> Result<Option<TraceBatch>, RadError> {
        Ok(self.batches.pop_front())
    }
}

/// The result of a power query: `(metadata, block)` pairs in seal
/// order. Implements [`PowerSource`] over the blocks.
#[derive(Debug)]
pub struct PowerScan {
    recordings: VecDeque<(RecordingMeta, PowerBlock)>,
    quarantined: Vec<QuarantinedSegment>,
}

impl PowerScan {
    /// Recordings still queued.
    pub fn len(&self) -> usize {
        self.recordings.len()
    }

    /// Whether no recordings are queued.
    pub fn is_empty(&self) -> bool {
        self.recordings.is_empty()
    }

    /// Segments quarantined during this scan.
    pub fn quarantined(&self) -> &[QuarantinedSegment] {
        &self.quarantined
    }

    /// Consumes the scan into its recordings.
    pub fn into_recordings(self) -> Vec<(RecordingMeta, PowerBlock)> {
        self.recordings.into()
    }

    /// Replays every queued recording through `sink` with the same
    /// boundary discipline the live monitor follows: each recording's
    /// metadata is announced via `begin_recording` before its samples
    /// arrive, chunked into at most `chunk`-tick blocks, and the sink
    /// is finished once the scan is drained. The plain [`PowerSource`]
    /// impl drops the metadata; streaming detectors need it to segment
    /// their per-recording state, so sealed campaigns replay through
    /// this path.
    ///
    /// # Errors
    ///
    /// Propagates the first sink error.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn replay_into<S: PowerSink>(self, sink: &mut S, chunk: usize) -> Result<(), RadError> {
        for (meta, block) in self.recordings {
            sink.begin_recording(&meta)?;
            let mut source = BlockSource::new(&block, chunk);
            while let Some(piece) = source.next_block()? {
                sink.accept(&piece)?;
            }
        }
        sink.finish()
    }
}

impl PowerSource for PowerScan {
    fn next_block(&mut self) -> Result<Option<PowerBlock>, RadError> {
        Ok(self.recordings.pop_front().map(|(_, block)| block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{CrashPlan, CrashSite};
    use rad_core::{Command, CommandType, SimDuration, SimInstant, TraceId, TraceObject, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rad-segment-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A batch exercising every column: all five devices, mixed
    /// procedures and runs, exceptions, multi-valued args, and
    /// unsupervised rows.
    fn synthesize(n: usize) -> TraceBatch {
        let mut batch = TraceBatch::new();
        for i in 0..n {
            let ct = CommandType::from_token_id(i % CommandType::all().len()).unwrap();
            let args = match i % 4 {
                0 => vec![],
                1 => vec![Value::Int(i as i64 - 8), Value::Str(format!("s{i}"))],
                2 => vec![Value::Location {
                    x: i as f64,
                    y: -1.5,
                    z: 0.25,
                }],
                _ => vec![Value::List(vec![Value::Bool(i % 2 == 0), Value::Unit])],
            };
            let mut b = TraceObject::builder(
                TraceId(i as u64),
                SimInstant::from_micros(1_000_000 + (i as u64) * 250),
                DeviceId::primary(ct.device()),
                Command::new(ct, args),
            )
            .mode(MODES[i % MODES.len()])
            .return_value(if i % 3 == 0 {
                Value::Float(i as f64 * 0.5)
            } else {
                Value::Unit
            })
            .response_time(SimDuration::from_micros(40 + (i as u64 % 7)));
            if i % 2 == 0 {
                b = b.run(
                    PROCS[i % (PROCS.len() - 1)],
                    RunId((i / 10) as u32),
                    LABELS[i % LABELS.len()],
                );
            }
            if i % 5 == 0 {
                b = b.exception(format!("boom {i}"));
            }
            batch.push_owned(b.build());
        }
        batch
    }

    fn power_block(ticks: usize, scale: f64) -> PowerBlock {
        let lanes = (0..PowerSample::FIELD_COUNT)
            .map(|lane| {
                (0..ticks)
                    .map(|t| {
                        if lane == rad_power::block::lane::TIMESTAMP {
                            t as f64 * 0.25
                        } else {
                            scale * (lane as f64) + t as f64
                        }
                    })
                    .collect()
            })
            .collect();
        PowerBlock::from_lanes(lanes).unwrap()
    }

    #[test]
    fn seal_and_read_round_trip_batch_exactly() {
        let dir = temp_dir("roundtrip");
        let batch = synthesize(300);
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        let paths = writer.seal_traces(&batch).unwrap();
        assert_eq!(paths.len(), 1);
        let back = SegmentReader::open(&paths[0])
            .unwrap()
            .read_batch()
            .unwrap();
        assert_eq!(back, batch);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_seals_concatenate_to_original() {
        for rows_per_segment in [1, 7, 256] {
            let dir = temp_dir(&format!("chunk{rows_per_segment}"));
            let batch = synthesize(100);
            let mut writer = SegmentWriter::create(
                &dir,
                SegmentOptions {
                    rows_per_segment,
                    partition_by_device: false,
                },
            )
            .unwrap();
            let paths = writer.seal_traces(&batch).unwrap();
            assert_eq!(paths.len(), 100usize.div_ceil(rows_per_segment));
            let set = SegmentSet::open(&dir).unwrap();
            assert_eq!(set.trace_rows(), 100);
            assert_eq!(set.read_all().unwrap().into_batch(), batch);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn empty_batch_seals_nothing() {
        let dir = temp_dir("empty");
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        assert!(writer.seal_traces(&TraceBatch::new()).unwrap().is_empty());
        assert!(SegmentSet::open(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruned_query_matches_unpruned_and_in_memory_reference() {
        let dir = temp_dir("prune-equiv");
        let batch = synthesize(400);
        let mut writer = SegmentWriter::create(
            &dir,
            SegmentOptions {
                rows_per_segment: 64,
                partition_by_device: true,
            },
        )
        .unwrap();
        writer.seal_traces(&batch).unwrap();
        let set = SegmentSet::open(&dir).unwrap();
        let queries = [
            TraceQuery::new().device(DeviceKind::C9),
            TraceQuery::new().device(DeviceKind::Quantos).run(RunId(1)),
            TraceQuery::new()
                .procedure(PROCS[0])
                .time_range(1_000_000, 1_030_000),
            TraceQuery::new().run(RunId(2)),
        ];
        for query in queries {
            let pruned = set.query(&query).unwrap();
            let unpruned = set.query_with(&query, false).unwrap();
            assert!(pruned.scanned() <= unpruned.scanned());
            let got = pruned.into_batch();
            assert_eq!(got, unpruned.into_batch());
            // Device partitioning groups rows by device, so compare as
            // materialized sets keyed by trace id.
            let mut got_rows = got.to_traces();
            got_rows.sort_by_key(|t| t.id().0);
            let reference: Vec<TraceObject> = query
                .matching_rows(&batch)
                .into_iter()
                .map(|i| batch.materialize(i))
                .collect();
            assert_eq!(got_rows, reference);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zone_maps_prune_device_partitions_without_opening_them() {
        let dir = temp_dir("prune-count");
        let batch = synthesize(200);
        let mut writer = SegmentWriter::create(
            &dir,
            SegmentOptions {
                rows_per_segment: usize::MAX,
                partition_by_device: true,
            },
        )
        .unwrap();
        let paths = writer.seal_traces(&batch).unwrap();
        assert!(paths.len() > 1, "expected one segment per device kind");
        let set = SegmentSet::open(&dir).unwrap();
        let scan = set
            .query(&TraceQuery::new().device(DeviceKind::C9))
            .unwrap();
        assert_eq!(scan.scanned(), 1);
        assert_eq!(scan.pruned(), paths.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn time_pruning_skips_disjoint_segments() {
        let dir = temp_dir("prune-time");
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        writer.seal_traces(&synthesize(50)).unwrap(); // ts 1_000_000..1_012_250
        let late = {
            let mut b = TraceBatch::new();
            for t in synthesize(50).to_traces() {
                let (id, _, dev, cmd, mode, ret, exc, rt, proc_, run, label) = (
                    t.id(),
                    (),
                    t.device(),
                    t.command().clone(),
                    t.mode(),
                    t.return_value().clone(),
                    t.exception().map(str::to_owned),
                    t.response_time(),
                    t.procedure(),
                    t.run_id(),
                    t.label(),
                );
                let mut builder = TraceObject::builder(
                    id,
                    SimInstant::from_micros(9_000_000 + id.0 * 250),
                    dev,
                    cmd,
                )
                .mode(mode)
                .return_value(ret)
                .response_time(rt);
                if let Some(r) = run {
                    builder = builder.run(proc_, r, label);
                }
                if let Some(e) = exc {
                    builder = builder.exception(e);
                }
                b.push_owned(builder.build());
            }
            b
        };
        writer.seal_traces(&late).unwrap();
        let set = SegmentSet::open(&dir).unwrap();
        let scan = set
            .query(&TraceQuery::new().time_range(9_000_000, 10_000_000))
            .unwrap();
        assert_eq!(scan.pruned(), 1);
        assert_eq!(scan.scanned(), 1);
        assert_eq!(scan.rows(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn miss_query_never_loads_argument_columns() {
        let dir = temp_dir("lazy");
        // Tecan-only rows: a C9 query decodes `dev`, finds nothing, and
        // must return None without ever reading the value columns.
        let mut batch = TraceBatch::new();
        for i in 0..40u64 {
            batch.push_owned(
                TraceObject::builder(
                    TraceId(i),
                    SimInstant::from_micros(i * 10),
                    DeviceId::primary(DeviceKind::Tecan),
                    Command::new(
                        CommandType::TecanGetStatus,
                        vec![Value::Str("heavy".repeat(50))],
                    ),
                )
                .build(),
            );
        }
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        let paths = writer.seal_traces(&batch).unwrap();
        let mut reader = SegmentReader::open(&paths[0]).unwrap();
        let hit = reader
            .query(&TraceQuery::new().device(DeviceKind::C9))
            .unwrap();
        assert!(hit.is_none());
        assert!(reader.column_loaded("dev"));
        for untouched in ["args", "ret", "exc", "ids", "ts"] {
            assert!(!reader.column_loaded(untouched), "loaded `{untouched}`");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_is_quarantined_and_scan_survives() {
        let dir = temp_dir("quarantine");
        let first = synthesize(80);
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        let victim = writer.seal_traces(&first).unwrap().remove(0);
        let survivor_batch = synthesize(30);
        writer.seal_traces(&survivor_batch).unwrap();

        // Flip one bit in the first column's payload: the footer still
        // parses, so the damage only surfaces when the column is read.
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[3] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        let set = SegmentSet::open(&dir).unwrap();
        assert_eq!(set.len(), 2, "column damage is invisible to open");
        let scan = set.read_all().unwrap();
        assert_eq!(scan.quarantined().len(), 1);
        assert!(scan.quarantined()[0].reason.contains("crc"));
        assert_eq!(scan.into_batch(), survivor_batch);
        assert!(!victim.exists(), "victim should be renamed away");
        assert!(victim
            .with_file_name(format!(
                "{}.quarantined",
                victim.file_name().unwrap().to_string_lossy()
            ))
            .exists());
        // A reopened set no longer sees the quarantined file.
        assert_eq!(SegmentSet::open(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_footer_is_quarantined_at_open() {
        let dir = temp_dir("footer-corrupt");
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        let victim = writer.seal_traces(&synthesize(40)).unwrap().remove(0);
        writer.seal_traces(&synthesize(10)).unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        let n = bytes.len();
        bytes[n - TRAILER_LEN as usize - 2] ^= 0x01; // inside the encoded footer
        std::fs::write(&victim, &bytes).unwrap();
        let set = SegmentSet::open(&dir).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.quarantined().len(), 1);
        assert_eq!(set.read_all().unwrap().rows(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = temp_dir("truncated");
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        let path = writer.seal_traces(&synthesize(40)).unwrap().remove(0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            SegmentReader::open(&path),
            Err(RadError::SegmentCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_seal_leaves_no_visible_segment() {
        for site in [CrashSite::MidCompaction, CrashSite::MidRename] {
            let dir = temp_dir(&format!("crash-{site}"));
            let injector = CrashInjector::new(CrashPlan::at(site, 0));
            let mut writer = SegmentWriter::create(&dir, SegmentOptions::default())
                .unwrap()
                .with_injector(Some(&injector));
            assert!(writer.seal_traces(&synthesize(25)).is_err());
            assert_eq!(injector.fired().map(|(s, _)| s), Some(site));
            assert!(
                SegmentSet::open(&dir).unwrap().is_empty(),
                "no live segment may appear after a {site} crash"
            );
            // The writer outlives the crash: a retry (injector spent)
            // seals normally and the set sees exactly one segment.
            writer.seal_traces(&synthesize(25)).unwrap();
            assert_eq!(SegmentSet::open(&dir).unwrap().trace_rows(), 25);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn sequence_numbering_survives_reopen() {
        let dir = temp_dir("reseq");
        let batch = synthesize(10);
        let p0 = SegmentWriter::create(&dir, SegmentOptions::default())
            .unwrap()
            .seal_traces(&batch)
            .unwrap()
            .remove(0);
        let p1 = SegmentWriter::create(&dir, SegmentOptions::default())
            .unwrap()
            .seal_traces(&batch)
            .unwrap()
            .remove(0);
        assert_ne!(p0, p1);
        assert!(p1.to_string_lossy().contains("000001"));
        assert_eq!(SegmentSet::open(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn power_recordings_round_trip_with_lazy_lanes() {
        let dir = temp_dir("power");
        let meta_a = RecordingMeta {
            procedure: ProcedureKind::VelocitySweep,
            run_id: RunId(4),
            description: "run 4".to_owned(),
        };
        let meta_b = RecordingMeta {
            procedure: ProcedureKind::PayloadSweep,
            run_id: RunId(9),
            description: "run 9".to_owned(),
        };
        let (block_a, block_b) = (power_block(64, 1.0), power_block(32, -2.0));
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        let path_a = writer.seal_power(&meta_a, &block_a).unwrap();
        writer.seal_power(&meta_b, &block_b).unwrap();

        let set = SegmentSet::open(&dir).unwrap();
        let recordings = set.power_recordings().unwrap().into_recordings();
        assert_eq!(recordings.len(), 2);
        assert_eq!(recordings[0].0, meta_a);
        assert_eq!(recordings[0].1, block_a);
        assert_eq!(recordings[1].0, meta_b);
        assert_eq!(recordings[1].1, block_b);

        // Run-filtered power query prunes by zone map.
        let only_b = set.power_query(&TraceQuery::new().run(RunId(9))).unwrap();
        assert_eq!(only_b.len(), 1);
        assert_eq!(only_b.into_recordings()[0].0, meta_b);
        // A device predicate can never match a power segment.
        assert!(set
            .power_query(&TraceQuery::new().device(DeviceKind::C9))
            .unwrap()
            .is_empty());

        // Single-lane reads leave the other 121 lanes untouched.
        let mut reader = SegmentReader::open(&path_a).unwrap();
        let ts = reader.read_lane(rad_power::block::lane::TIMESTAMP).unwrap();
        assert_eq!(ts, block_a.lane(rad_power::block::lane::TIMESTAMP));
        assert!(reader.column_loaded(&lane_name(0)));
        assert!(!reader.column_loaded(&lane_name(1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn power_replay_announces_metadata_and_chunks_every_sample() {
        // A sink that journals the boundary discipline replay promises.
        #[derive(Default)]
        struct Journal {
            metas: Vec<RecordingMeta>,
            chunk_lens: Vec<usize>,
            finished: bool,
        }
        impl PowerSink for Journal {
            fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
                self.chunk_lens.push(block.len());
                Ok(())
            }
            fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
                self.metas.push(meta.clone());
                Ok(())
            }
            fn finish(&mut self) -> Result<(), RadError> {
                self.finished = true;
                Ok(())
            }
        }

        let dir = temp_dir("replay");
        let meta_a = RecordingMeta {
            procedure: ProcedureKind::VelocitySweep,
            run_id: RunId(4),
            description: "run 4".to_owned(),
        };
        let meta_b = RecordingMeta {
            procedure: ProcedureKind::PayloadSweep,
            run_id: RunId(9),
            description: "run 9".to_owned(),
        };
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        writer.seal_power(&meta_a, &power_block(10, 1.0)).unwrap();
        writer.seal_power(&meta_b, &power_block(4, -2.0)).unwrap();

        let set = SegmentSet::open(&dir).unwrap();
        let mut journal = Journal::default();
        set.power_recordings()
            .unwrap()
            .replay_into(&mut journal, 3)
            .unwrap();
        assert_eq!(journal.metas, vec![meta_a, meta_b]);
        assert_eq!(journal.chunk_lens, vec![3, 3, 3, 1, 3, 1]);
        assert!(journal.finished);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_queries_ignore_power_segments_and_vice_versa() {
        let dir = temp_dir("mixed");
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        let batch = synthesize(20);
        writer.seal_traces(&batch).unwrap();
        let meta = RecordingMeta {
            procedure: ProcedureKind::Unknown,
            run_id: RunId(0),
            description: String::new(),
        };
        writer.seal_power(&meta, &power_block(8, 0.5)).unwrap();
        let set = SegmentSet::open(&dir).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.read_all().unwrap().into_batch(), batch);
        assert_eq!(set.power_recordings().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_streams_as_trace_source() {
        let dir = temp_dir("source");
        let batch = synthesize(90);
        let mut writer = SegmentWriter::create(
            &dir,
            SegmentOptions {
                rows_per_segment: 40,
                partition_by_device: false,
            },
        )
        .unwrap();
        writer.seal_traces(&batch).unwrap();
        let mut scan = SegmentSet::open(&dir).unwrap().read_all().unwrap();
        let mut collected = TraceBatch::new();
        let mut chunks = 0;
        while let Some(chunk) = scan.next_batch().unwrap() {
            collected.append_owned(chunk);
            chunks += 1;
        }
        assert_eq!(chunks, 3);
        assert_eq!(collected, batch);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
