//! On-disk export of the RAD bundle — the "open-source the dataset"
//! deliverable.
//!
//! [`export_rad`] writes a directory shaped like the published
//! artifact: `commands.csv` (the command dataset), `runs.csv` (the
//! supervised-run metadata with labels and operator notes),
//! `power/<run>-<n>.csv` (one 122-column telemetry table per
//! recording), and a `MANIFEST.json` describing the bundle.
//! [`import_commands`] reads the command half back.
//!
//! The document store also persists: [`DocumentStore::save`] /
//! [`DocumentStore::load`] snapshot all collections to one JSON file.

use std::fmt;
use std::fs;
use std::path::Path;

use rad_core::{Alert, RadError, RunMetadata, TraceGap, TraceSource};
use serde_json::json;

use crate::csv;
use crate::dataset::{CommandDataset, PowerDataset};
use crate::document::DocumentStore;
use crate::segment::SegmentSet;
use crate::wal::{atomic_write_file, atomic_write_stream, CrashInjector};

fn io_err(context: &str, e: std::io::Error) -> RadError {
    RadError::Store(format!("{context}: {e}"))
}

/// One quarantined record found while loading a bundle or snapshot
/// leniently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadIssue {
    /// Where the damage is: `"commands.csv line 17"`,
    /// `"collection traces index 3"`, ...
    pub location: String,
    /// Why the record was rejected.
    pub reason: String,
}

impl fmt::Display for LoadIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location, self.reason)
    }
}

/// Outcome of a lenient load: how much survived, what was set aside.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records successfully loaded.
    pub loaded: usize,
    /// Records skipped, one issue each.
    pub issues: Vec<LoadIssue>,
}

impl LoadReport {
    /// Records skipped because of damage.
    pub fn skipped(&self) -> usize {
        self.issues.len()
    }

    /// Whether every record loaded cleanly.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loaded={} skipped={}", self.loaded, self.skipped())?;
        for issue in &self.issues {
            write!(f, "\n  {issue}")?;
        }
        Ok(())
    }
}

/// Writes the full RAD bundle under `dir` (created if missing).
/// Returns the number of files written.
///
/// Every file is written atomically (temp + fsync + rename) and the
/// manifest is written last, so a crash at any point leaves either a
/// complete bundle or one that is recognizably partial (no
/// `MANIFEST.json`) — never a truncated file posing as a complete one.
///
/// # Errors
///
/// Returns [`RadError::Store`] on any filesystem failure.
pub fn export_rad(
    commands: &CommandDataset,
    power: &PowerDataset,
    dir: &Path,
) -> Result<usize, RadError> {
    export_rad_with(commands, power, dir, None)
}

/// [`export_rad`] with an optional crash injector threaded through the
/// atomic writes — the crash matrix uses this to prove no partial
/// bundle ever looks complete.
///
/// # Errors
///
/// Returns [`RadError::Store`] on filesystem failures or injected
/// crashes.
pub fn export_rad_with(
    commands: &CommandDataset,
    power: &PowerDataset,
    dir: &Path,
    injector: Option<&CrashInjector>,
) -> Result<usize, RadError> {
    export_rad_alerted(commands, power, &[], dir, injector)
}

/// [`export_rad_with`] plus the campaign's detection alerts: a
/// non-empty `alerts` slice lands as `alerts.csv` (the same
/// present-only-when-non-empty policy as `gaps.csv`) and is counted in
/// the manifest either way.
///
/// # Errors
///
/// Returns [`RadError::Store`] on filesystem failures or injected
/// crashes.
pub fn export_rad_alerted(
    commands: &CommandDataset,
    power: &PowerDataset,
    alerts: &[Alert],
    dir: &Path,
    injector: Option<&CrashInjector>,
) -> Result<usize, RadError> {
    fs::create_dir_all(dir).map_err(|e| io_err("creating bundle dir", e))?;
    let mut files = 0;

    // Streamed straight from the columnar batch through a fixed-size
    // buffer — the bundle never has to fit in memory twice.
    atomic_write_stream(&dir.join("commands.csv"), injector, |w| {
        csv::write_traces_csv(w, commands.batch())
    })?;
    files += 1;

    atomic_write_file(
        &dir.join("runs.csv"),
        runs_csv(commands.runs()).as_bytes(),
        injector,
    )?;
    files += 1;

    // Trace gaps are part of the published record: a bundle collected
    // through an outage says so explicitly instead of shrinking.
    if !commands.gaps().is_empty() {
        atomic_write_file(
            &dir.join("gaps.csv"),
            csv::gaps_to_csv(commands.gaps()).as_bytes(),
            injector,
        )?;
        files += 1;
    }

    if !alerts.is_empty() {
        atomic_write_file(
            &dir.join("alerts.csv"),
            csv::alerts_to_csv(alerts).as_bytes(),
            injector,
        )?;
        files += 1;
    }

    let power_dir = dir.join("power");
    fs::create_dir_all(&power_dir).map_err(|e| io_err("creating power dir", e))?;
    for (i, recording) in power.recordings().iter().enumerate() {
        let name = format!(
            "{}-{:04}-{}.csv",
            recording.procedure.paper_id(),
            i,
            recording.run_id.0
        );
        atomic_write_stream(&power_dir.join(name), injector, |w| {
            csv::write_power_csv(w, recording.profile.block())
        })?;
        files += 1;
    }

    // Manifest last: its presence certifies the bundle is complete.
    let manifest = json!({
        "dataset": "RAD (simulated reproduction)",
        "trace_objects": commands.len(),
        "runs": commands.runs().len(),
        "supervised_runs": commands.supervised_runs().len(),
        "trace_gaps": commands.gaps().len(),
        "alerts": alerts.len(),
        "power_recordings": power.recordings().len(),
        "power_entries": power.total_entries(),
        "files": files + 1,
    });
    atomic_write_file(
        &dir.join("MANIFEST.json"),
        serde_json::to_string_pretty(&manifest)
            .expect("manifest serializes")
            .as_bytes(),
        injector,
    )?;
    Ok(files + 1)
}

/// Encodes the `runs.csv` metadata table. Shared by both exporters so
/// the segment-fed bundle is byte-identical to the in-memory one.
fn runs_csv(runs: &[RunMetadata]) -> String {
    let mut out = String::from("run_id,procedure,label,note\n");
    for run in runs {
        out.push_str(&csv::encode_row(&[
            run.run_id().0.to_string(),
            run.kind().paper_id().to_owned(),
            run.label().to_string(),
            run.operator_note().unwrap_or_default().to_owned(),
        ]));
        out.push('\n');
    }
    out
}

/// Writes the full RAD bundle under `dir`, streaming the trace and
/// power halves straight out of sealed columnar `segments` instead of
/// an in-memory dataset — a store whose documents were pruned after
/// compaction can still publish. Run metadata and trace gaps are not
/// part of the segment format, so the caller supplies them.
///
/// Produces a bundle byte-identical to [`export_rad`] of the
/// equivalent in-memory dataset, provided the segments were sealed in
/// dataset order (the default, non-partitioned [`SegmentWriter`]
/// options preserve it).
///
/// # Errors
///
/// Returns [`RadError::Store`] on filesystem failures or injected
/// crashes, and [`RadError::SegmentCorrupt`] when any segment had to
/// be quarantined — a published bundle must be complete, never
/// silently short.
///
/// [`SegmentWriter`]: crate::segment::SegmentWriter
pub fn export_rad_from_segments(
    segments: &SegmentSet,
    runs: &[RunMetadata],
    gaps: &[TraceGap],
    dir: &Path,
    injector: Option<&CrashInjector>,
) -> Result<usize, RadError> {
    export_rad_from_segments_alerted(segments, runs, gaps, &[], dir, injector)
}

/// [`export_rad_from_segments`] plus detection alerts, mirroring
/// [`export_rad_alerted`]: replaying sealed segments through the
/// streaming detectors and exporting with the resulting alerts must
/// produce a bundle byte-identical to the live-teed in-memory export.
///
/// # Errors
///
/// As [`export_rad_from_segments`].
pub fn export_rad_from_segments_alerted(
    segments: &SegmentSet,
    runs: &[RunMetadata],
    gaps: &[TraceGap],
    alerts: &[Alert],
    dir: &Path,
    injector: Option<&CrashInjector>,
) -> Result<usize, RadError> {
    fs::create_dir_all(dir).map_err(|e| io_err("creating bundle dir", e))?;
    let mut files = 0;

    require_complete(segments.quarantined())?;
    let mut scan = segments.read_all()?;
    require_complete(scan.quarantined())?;
    let trace_objects = scan.rows();
    atomic_write_stream(&dir.join("commands.csv"), injector, |w| {
        csv::write_traces_csv_header(w)?;
        // SegmentScan::next_batch is infallible: decode already
        // happened (and was CRC-checked) inside the query.
        while let Ok(Some(batch)) = scan.next_batch() {
            csv::write_traces_csv_rows(w, &batch)?;
        }
        Ok(())
    })?;
    files += 1;

    atomic_write_file(&dir.join("runs.csv"), runs_csv(runs).as_bytes(), injector)?;
    files += 1;

    if !gaps.is_empty() {
        atomic_write_file(
            &dir.join("gaps.csv"),
            csv::gaps_to_csv(gaps).as_bytes(),
            injector,
        )?;
        files += 1;
    }

    if !alerts.is_empty() {
        atomic_write_file(
            &dir.join("alerts.csv"),
            csv::alerts_to_csv(alerts).as_bytes(),
            injector,
        )?;
        files += 1;
    }

    let power_scan = segments.power_recordings()?;
    require_complete(power_scan.quarantined())?;
    let recordings = power_scan.into_recordings();
    let power_entries: usize = recordings.iter().map(|(_, block)| block.len()).sum();
    let power_dir = dir.join("power");
    fs::create_dir_all(&power_dir).map_err(|e| io_err("creating power dir", e))?;
    for (i, (meta, block)) in recordings.iter().enumerate() {
        let name = format!(
            "{}-{:04}-{}.csv",
            meta.procedure.paper_id(),
            i,
            meta.run_id.0
        );
        atomic_write_stream(&power_dir.join(name), injector, |w| {
            csv::write_power_csv(w, block)
        })?;
        files += 1;
    }

    let supervised = runs
        .iter()
        .filter(|r| r.label() != rad_core::Label::Unknown)
        .count();
    let manifest = json!({
        "dataset": "RAD (simulated reproduction)",
        "trace_objects": trace_objects,
        "runs": (runs.len()),
        "supervised_runs": supervised,
        "trace_gaps": (gaps.len()),
        "alerts": (alerts.len()),
        "power_recordings": (recordings.len()),
        "power_entries": power_entries,
        "files": (files + 1),
    });
    atomic_write_file(
        &dir.join("MANIFEST.json"),
        serde_json::to_string_pretty(&manifest)
            .expect("manifest serializes")
            .as_bytes(),
        injector,
    )?;
    Ok(files + 1)
}

/// An export fed from segments refuses to publish past quarantined
/// data: the first casualty fails the bundle instead of shrinking it.
fn require_complete(quarantined: &[crate::wal::QuarantinedSegment]) -> Result<(), RadError> {
    match quarantined.first() {
        None => Ok(()),
        Some(q) => Err(RadError::SegmentCorrupt {
            segment: q.segment.clone(),
            offset: q.offset,
            reason: format!("cannot export from a quarantined segment: {}", q.reason),
        }),
    }
}

/// Whether `dir` holds a complete bundle: [`export_rad`] writes the
/// manifest last, so its absence marks an export that died partway.
pub fn bundle_is_complete(dir: &Path) -> bool {
    dir.join("MANIFEST.json").exists()
}

/// Reads the command half of a bundle back from `dir`, joining the
/// run metadata from `runs.csv` when present. Strict: the first
/// damaged row fails the import.
///
/// # Errors
///
/// Returns [`RadError::Store`] on filesystem or parse failures.
pub fn import_commands(dir: &Path) -> Result<CommandDataset, RadError> {
    let (ds, report) = import_commands_with(dir, true)?;
    debug_assert!(report.is_clean(), "strict import cannot report issues");
    Ok(ds)
}

/// [`import_commands`] with a strictness switch. In lenient mode
/// (`strict = false`) damaged trace rows are quarantined into the
/// [`LoadReport`] — named by line and reason — and the rest of the
/// bundle still loads.
///
/// # Errors
///
/// In strict mode, any damaged row. In lenient mode only structural
/// failures: missing `commands.csv`, a wrong header, or damaged run
/// metadata (`runs.csv` rows are join keys for labels; dropping one
/// silently would mislabel traces).
pub fn import_commands_with(
    dir: &Path,
    strict: bool,
) -> Result<(CommandDataset, LoadReport), RadError> {
    let text = fs::read_to_string(dir.join("commands.csv"))
        .map_err(|e| io_err("reading commands.csv", e))?;
    let mut report = LoadReport::default();
    let traces = if strict {
        csv::traces_from_csv(&text)?
    } else {
        let (traces, issues) = csv::traces_from_csv_report(&text)?;
        report
            .issues
            .extend(issues.into_iter().map(|(line, reason)| LoadIssue {
                location: format!("commands.csv line {line}"),
                reason,
            }));
        traces
    };
    report.loaded = traces.len();
    let runs = match fs::read_to_string(dir.join("runs.csv")) {
        Ok(runs_text) => parse_runs_csv(&runs_text)?,
        Err(_) => Vec::new(), // bundles without the metadata table
    };
    let gaps = match fs::read_to_string(dir.join("gaps.csv")) {
        Ok(gaps_text) => csv::gaps_from_csv(&gaps_text)?,
        Err(_) => Vec::new(), // fault-free bundles have no gap table
    };
    Ok((
        CommandDataset::from_parts(traces, runs).with_gaps(gaps),
        report,
    ))
}

/// Reads the detection alerts of a bundle back from `dir`. A bundle
/// whose campaign raised no alerts writes no `alerts.csv`, so a
/// missing table reads back as the empty set, not an error.
///
/// # Errors
///
/// Returns [`RadError::Store`] when `alerts.csv` exists but is
/// malformed.
pub fn import_alerts(dir: &Path) -> Result<Vec<Alert>, RadError> {
    match fs::read_to_string(dir.join("alerts.csv")) {
        Ok(text) => csv::alerts_from_csv(&text),
        Err(_) => Ok(Vec::new()),
    }
}

/// Parses the `runs.csv` table written by [`export_rad`].
///
/// # Errors
///
/// Returns [`RadError::Store`] on malformed rows.
pub fn parse_runs_csv(text: &str) -> Result<Vec<rad_core::RunMetadata>, RadError> {
    use rad_core::{Label, ProcedureKind, RunId, RunMetadata, SimInstant};
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.is_empty() {
            continue; // header
        }
        let fields = csv::decode_row(line)?;
        if fields.len() != 4 {
            return Err(RadError::Store(format!(
                "runs.csv row {i} has {} fields",
                fields.len()
            )));
        }
        let run_id = RunId(
            fields[0]
                .parse()
                .map_err(|_| RadError::Store(format!("bad run id {}", fields[0])))?,
        );
        let kind: ProcedureKind = fields[1].parse()?;
        let label: Label = fields[2].parse()?;
        let mut meta = RunMetadata::new(run_id, kind, SimInstant::EPOCH).with_label(label);
        if !fields[3].is_empty() {
            meta = meta.with_note(fields[3].clone());
        }
        out.push(meta);
    }
    Ok(out)
}

impl DocumentStore {
    /// Snapshots every collection to one JSON file, atomically: a
    /// crash mid-save leaves the previous snapshot intact, never a
    /// truncated file.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), RadError> {
        let mut collections = serde_json::Map::new();
        for name in self.collection_names() {
            let docs = self.find(&name, &crate::Filter::all());
            collections.insert(name, serde_json::Value::Array(docs));
        }
        let blob = serde_json::Value::Object(collections);
        atomic_write_file(
            path,
            serde_json::to_string(&blob)
                .expect("documents serialize")
                .as_bytes(),
            None,
        )
    }

    /// Loads a snapshot produced by [`DocumentStore::save`] into a new
    /// store. Document ids are reassigned. Strict: the first damaged
    /// record fails the load.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem or parse failures.
    pub fn load(path: &Path) -> Result<DocumentStore, RadError> {
        let (store, report) = DocumentStore::load_with(path, true)?;
        debug_assert!(report.is_clean(), "strict load cannot report issues");
        Ok(store)
    }

    /// [`DocumentStore::load`] with a strictness switch. In lenient
    /// mode (`strict = false`) each damaged record is quarantined into
    /// the [`LoadReport`] — named by collection and index — and every
    /// healthy record still loads.
    ///
    /// # Errors
    ///
    /// In strict mode, any damaged record. In lenient mode only
    /// structural failures: an unreadable file, non-JSON contents, or
    /// a root that is not an object.
    pub fn load_with(path: &Path, strict: bool) -> Result<(DocumentStore, LoadReport), RadError> {
        let text = fs::read_to_string(path).map_err(|e| io_err("loading document store", e))?;
        let blob: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| RadError::Store(format!("parsing snapshot: {e}")))?;
        let store = DocumentStore::new();
        let mut report = LoadReport::default();
        let Some(collections) = blob.as_object() else {
            return Err(RadError::Store("snapshot root must be an object".into()));
        };
        for (name, docs) in collections {
            let Some(docs) = docs.as_array() else {
                let reason = format!("collection {name} must be an array");
                if strict {
                    return Err(RadError::Store(reason));
                }
                report.issues.push(LoadIssue {
                    location: format!("collection {name}"),
                    reason: "not an array".into(),
                });
                continue;
            };
            for (index, doc) in docs.iter().enumerate() {
                match store.insert(name, doc.clone()) {
                    Ok(_) => report.loaded += 1,
                    Err(e) if strict => return Err(e),
                    Err(e) => report.issues.push(LoadIssue {
                        location: format!("collection {name} index {index}"),
                        reason: e.to_string(),
                    }),
                }
            }
        }
        Ok((store, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{
        Command, CommandType, DeviceId, Label, ProcedureKind, RunId, RunMetadata, SimInstant,
        TraceId, TraceObject,
    };
    use serde_json::json;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rad-export-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_dataset() -> CommandDataset {
        let mut ds = CommandDataset::new();
        ds.add_run(
            RunMetadata::new(
                RunId(0),
                ProcedureKind::JoystickMovements,
                SimInstant::EPOCH,
            )
            .with_label(Label::Benign)
            .with_note("note, with comma"),
        );
        for i in 0..5 {
            ds.push_trace(
                TraceObject::builder(
                    TraceId(i),
                    SimInstant::from_micros(i * 1000),
                    DeviceId::primary(rad_core::DeviceKind::C9),
                    Command::nullary(CommandType::Mvng),
                )
                .run(ProcedureKind::JoystickMovements, RunId(0), Label::Benign)
                .build(),
            );
        }
        ds
    }

    #[test]
    fn bundle_round_trips_the_command_half() {
        let dir = tmpdir("bundle");
        let ds = small_dataset();
        let files = export_rad(&ds, &PowerDataset::new(), &dir).unwrap();
        assert!(files >= 3, "commands, runs, manifest");
        assert!(dir.join("MANIFEST.json").exists());
        let back = import_commands(&dir).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.traces()[3].command_type(), CommandType::Mvng);
        // Run metadata (including the quoted note) survives the trip.
        assert_eq!(back.runs().len(), 1);
        assert_eq!(back.runs()[0].operator_note(), Some("note, with comma"));
        assert_eq!(back.runs()[0].label(), Label::Benign);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gaps_csv_round_trips_through_the_bundle() {
        use rad_core::{DeviceKind, TraceGap, TraceMode};
        let dir = tmpdir("gaps");
        let ds = small_dataset().with_gaps(vec![TraceGap::new(
            SimInstant::from_micros(123),
            DeviceId::primary(DeviceKind::C9),
            CommandType::Arm,
            TraceMode::Remote,
            "middlebox unavailable",
        )
        .with_run(RunId(0))]);
        export_rad(&ds, &PowerDataset::new(), &dir).unwrap();
        assert!(dir.join("gaps.csv").exists());
        let manifest: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(dir.join("MANIFEST.json")).unwrap()).unwrap();
        assert_eq!(manifest["trace_gaps"], json!(1));
        let back = import_commands(&dir).unwrap();
        assert_eq!(back.gaps(), ds.gaps());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_free_bundles_omit_the_gap_table() {
        let dir = tmpdir("nogaps");
        export_rad(&small_dataset(), &PowerDataset::new(), &dir).unwrap();
        assert!(!dir.join("gaps.csv").exists());
        assert!(import_commands(&dir).unwrap().gaps().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn alerts_csv_round_trips_through_the_bundle() {
        use rad_core::{Alert, DeviceKind};
        let dir = tmpdir("alerts");
        let alerts = vec![
            Alert {
                detector: "perplexity".into(),
                device: DeviceKind::C9,
                run_id: Some(RunId(0)),
                window_start: SimInstant::from_micros(0),
                window_end: SimInstant::from_micros(4000),
                score: 17.25,
                threshold: 0.1 + 0.2,
            },
            Alert {
                detector: "power.rms".into(),
                device: DeviceKind::Ur3e,
                run_id: None,
                window_start: SimInstant::from_micros(10),
                window_end: SimInstant::from_micros(20),
                score: f64::MIN_POSITIVE,
                threshold: 3.0,
            },
        ];
        export_rad_alerted(&small_dataset(), &PowerDataset::new(), &alerts, &dir, None).unwrap();
        assert!(dir.join("alerts.csv").exists());
        let manifest: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(dir.join("MANIFEST.json")).unwrap()).unwrap();
        assert_eq!(manifest["alerts"], json!(2));
        assert_eq!(import_alerts(&dir).unwrap(), alerts);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quiet_bundles_omit_the_alert_table() {
        let dir = tmpdir("noalerts");
        export_rad(&small_dataset(), &PowerDataset::new(), &dir).unwrap();
        assert!(!dir.join("alerts.csv").exists());
        let manifest: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(dir.join("MANIFEST.json")).unwrap()).unwrap();
        assert_eq!(manifest["alerts"], json!(0));
        assert!(import_alerts(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_counts_match() {
        let dir = tmpdir("manifest");
        let ds = small_dataset();
        export_rad(&ds, &PowerDataset::new(), &dir).unwrap();
        let manifest: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(dir.join("MANIFEST.json")).unwrap()).unwrap();
        assert_eq!(manifest["trace_objects"], json!(5));
        assert_eq!(manifest["supervised_runs"], json!(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn document_store_snapshot_round_trips() {
        let dir = tmpdir("snapshot");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let store = DocumentStore::new();
        store
            .insert("traces", json!({"command": "ARM", "ms": 5.0}))
            .unwrap();
        store.insert("traces", json!({"command": "Q"})).unwrap();
        store.insert("runs", json!({"run_id": 0})).unwrap();
        store.save(&path).unwrap();
        let loaded = DocumentStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(
            loaded.count("traces", &crate::Filter::eq("command", json!("ARM"))),
            1
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_garbage_fails_cleanly() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "not json").unwrap();
        assert!(DocumentStore::load(&path).is_err());
        fs::write(&path, "[1,2,3]").unwrap();
        assert!(DocumentStore::load(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_from_missing_dir_fails_cleanly() {
        let err = import_commands(Path::new("/nonexistent/rad")).unwrap_err();
        assert!(err.to_string().contains("commands.csv"));
    }

    #[test]
    fn lenient_load_quarantines_bad_records_and_names_them() {
        let dir = tmpdir("lenient");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        // Two healthy documents, one scalar posing as a document.
        fs::write(
            &path,
            r#"{"traces": [{"ok": 1}, 42, {"ok": 2}], "runs": [{"run_id": 0}]}"#,
        )
        .unwrap();
        assert!(DocumentStore::load(&path).is_err(), "strict still fails");
        let (store, report) = DocumentStore::load_with(&path, false).unwrap();
        assert_eq!(report.loaded, 3);
        assert_eq!(report.skipped(), 1);
        assert!(report.issues[0].location.contains("traces index 1"));
        assert!(report.to_string().contains("traces index 1"));
        assert_eq!(store.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lenient_import_skips_damaged_rows_and_reports_lines() {
        let dir = tmpdir("lenientcsv");
        export_rad(&small_dataset(), &PowerDataset::new(), &dir).unwrap();
        // Scribble over one data row of commands.csv.
        let path = dir.join("commands.csv");
        let mut lines: Vec<String> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines[3] = "garbage,row".into();
        fs::write(&path, lines.join("\n")).unwrap();

        assert!(import_commands(&dir).is_err(), "strict import fails");
        let (ds, report) = import_commands_with(&dir, false).unwrap();
        assert_eq!(ds.len(), 4, "the four healthy rows load");
        assert_eq!(report.skipped(), 1);
        assert_eq!(report.issues[0].location, "commands.csv line 4");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_fed_export_matches_the_in_memory_bundle() {
        use crate::segment::{SegmentOptions, SegmentSet, SegmentWriter};
        let ds = small_dataset();

        let mem_dir = tmpdir("seg-export-mem");
        export_rad(&ds, &PowerDataset::new(), &mem_dir).unwrap();

        let seg_dir = tmpdir("seg-export-segs");
        fs::create_dir_all(&seg_dir).unwrap();
        SegmentWriter::create(&seg_dir, SegmentOptions::default())
            .unwrap()
            .seal_traces(ds.batch())
            .unwrap();
        let set = SegmentSet::open(&seg_dir).unwrap();
        let out_dir = tmpdir("seg-export-out");
        let runs: Vec<_> = ds.runs().to_vec();
        export_rad_from_segments(&set, &runs, ds.gaps(), &out_dir, None).unwrap();

        // Every file of the bundle is byte-identical, manifest included.
        for name in ["commands.csv", "runs.csv", "MANIFEST.json"] {
            assert_eq!(
                fs::read(mem_dir.join(name)).unwrap(),
                fs::read(out_dir.join(name)).unwrap(),
                "{name} must match the in-memory export"
            );
        }

        // A quarantined segment refuses to publish a short bundle.
        for entry in fs::read_dir(&seg_dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            fs::write(&path, bytes).unwrap();
        }
        let set = SegmentSet::open(&seg_dir).unwrap();
        let short_dir = tmpdir("seg-export-short");
        let err = export_rad_from_segments(&set, &runs, ds.gaps(), &short_dir, None).unwrap_err();
        assert!(
            matches!(err, RadError::SegmentCorrupt { .. }),
            "expected corruption refusal, got {err}"
        );

        for dir in [mem_dir, seg_dir, out_dir, short_dir] {
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn crashed_export_never_looks_complete() {
        use crate::wal::{CrashInjector, CrashPlan, CrashSite};
        let ds = small_dataset();
        // Kill the export at every write site in turn: whatever
        // survives, the manifest-last ordering marks the bundle partial.
        for occurrence in 0..3 {
            for site in [CrashSite::MidCompaction, CrashSite::MidRename] {
                let dir = tmpdir(&format!("atomic-{site}-{occurrence}"));
                let injector = CrashInjector::new(CrashPlan::at(site, occurrence));
                let err =
                    export_rad_with(&ds, &PowerDataset::new(), &dir, Some(&injector)).unwrap_err();
                assert!(err.to_string().contains("injected crash"), "{err}");
                assert!(
                    !super::bundle_is_complete(&dir),
                    "{site}/{occurrence}: a crashed export must not look complete"
                );
                // Whatever files did land are complete, parseable files.
                if dir.join("commands.csv").exists() {
                    let text = fs::read_to_string(dir.join("commands.csv")).unwrap();
                    assert_eq!(csv::traces_from_csv(&text).unwrap().len(), ds.len());
                }
                let _ = fs::remove_dir_all(&dir);
            }
        }
        // Past the last write site the export completes untouched.
        let dir = tmpdir("atomic-clean");
        let injector = CrashInjector::new(CrashPlan::at(CrashSite::MidRename, 99));
        export_rad_with(&ds, &PowerDataset::new(), &dir, Some(&injector)).unwrap();
        assert!(super::bundle_is_complete(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_atomic_under_injected_crashes() {
        use crate::wal::atomic_write_file;
        use crate::wal::{CrashInjector, CrashPlan, CrashSite};
        let dir = tmpdir("atomicsave");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let store = DocumentStore::new();
        store.insert("t", json!({"v": 1})).unwrap();
        store.save(&path).unwrap();
        let saved = fs::read(&path).unwrap();
        // A crashed overwrite leaves the old snapshot byte-identical.
        let injector = CrashInjector::new(CrashPlan::at(CrashSite::MidCompaction, 0));
        assert!(atomic_write_file(&path, b"{}", Some(&injector)).is_err());
        assert_eq!(fs::read(&path).unwrap(), saved);
        let _ = fs::remove_dir_all(&dir);
    }
}
