//! On-disk export of the RAD bundle — the "open-source the dataset"
//! deliverable.
//!
//! [`export_rad`] writes a directory shaped like the published
//! artifact: `commands.csv` (the command dataset), `runs.csv` (the
//! supervised-run metadata with labels and operator notes),
//! `power/<run>-<n>.csv` (one 122-column telemetry table per
//! recording), and a `MANIFEST.json` describing the bundle.
//! [`import_commands`] reads the command half back.
//!
//! The document store also persists: [`DocumentStore::save`] /
//! [`DocumentStore::load`] snapshot all collections to one JSON file.

use std::fs;
use std::path::Path;

use rad_core::RadError;
use serde_json::json;

use crate::csv;
use crate::dataset::{CommandDataset, PowerDataset};
use crate::document::DocumentStore;

fn io_err(context: &str, e: std::io::Error) -> RadError {
    RadError::Store(format!("{context}: {e}"))
}

/// Writes the full RAD bundle under `dir` (created if missing).
/// Returns the number of files written.
///
/// # Errors
///
/// Returns [`RadError::Store`] on any filesystem failure.
pub fn export_rad(
    commands: &CommandDataset,
    power: &PowerDataset,
    dir: &Path,
) -> Result<usize, RadError> {
    fs::create_dir_all(dir).map_err(|e| io_err("creating bundle dir", e))?;
    let mut files = 0;

    fs::write(dir.join("commands.csv"), commands.to_csv())
        .map_err(|e| io_err("writing commands.csv", e))?;
    files += 1;

    let mut runs_csv = String::from("run_id,procedure,label,note\n");
    for run in commands.runs() {
        runs_csv.push_str(&csv::encode_row(&[
            run.run_id().0.to_string(),
            run.kind().paper_id().to_owned(),
            run.label().to_string(),
            run.operator_note().unwrap_or_default().to_owned(),
        ]));
        runs_csv.push('\n');
    }
    fs::write(dir.join("runs.csv"), runs_csv).map_err(|e| io_err("writing runs.csv", e))?;
    files += 1;

    // Trace gaps are part of the published record: a bundle collected
    // through an outage says so explicitly instead of shrinking.
    if !commands.gaps().is_empty() {
        fs::write(dir.join("gaps.csv"), csv::gaps_to_csv(commands.gaps()))
            .map_err(|e| io_err("writing gaps.csv", e))?;
        files += 1;
    }

    let power_dir = dir.join("power");
    fs::create_dir_all(&power_dir).map_err(|e| io_err("creating power dir", e))?;
    for (i, recording) in power.recordings().iter().enumerate() {
        let name = format!(
            "{}-{:04}-{}.csv",
            recording.procedure.paper_id(),
            i,
            recording.run_id.0
        );
        fs::write(
            power_dir.join(name),
            csv::power_to_csv(recording.profile.samples()),
        )
        .map_err(|e| io_err("writing power csv", e))?;
        files += 1;
    }

    let manifest = json!({
        "dataset": "RAD (simulated reproduction)",
        "trace_objects": commands.len(),
        "runs": commands.runs().len(),
        "supervised_runs": commands.supervised_runs().len(),
        "trace_gaps": commands.gaps().len(),
        "power_recordings": power.recordings().len(),
        "power_entries": power.total_entries(),
        "files": files + 1,
    });
    fs::write(
        dir.join("MANIFEST.json"),
        serde_json::to_string_pretty(&manifest).expect("manifest serializes"),
    )
    .map_err(|e| io_err("writing manifest", e))?;
    Ok(files + 1)
}

/// Reads the command half of a bundle back from `dir`, joining the
/// run metadata from `runs.csv` when present.
///
/// # Errors
///
/// Returns [`RadError::Store`] on filesystem or parse failures.
pub fn import_commands(dir: &Path) -> Result<CommandDataset, RadError> {
    let text = fs::read_to_string(dir.join("commands.csv"))
        .map_err(|e| io_err("reading commands.csv", e))?;
    let traces = csv::traces_from_csv(&text)?;
    let runs = match fs::read_to_string(dir.join("runs.csv")) {
        Ok(runs_text) => parse_runs_csv(&runs_text)?,
        Err(_) => Vec::new(), // bundles without the metadata table
    };
    let gaps = match fs::read_to_string(dir.join("gaps.csv")) {
        Ok(gaps_text) => csv::gaps_from_csv(&gaps_text)?,
        Err(_) => Vec::new(), // fault-free bundles have no gap table
    };
    Ok(CommandDataset::from_parts(traces, runs).with_gaps(gaps))
}

/// Parses the `runs.csv` table written by [`export_rad`].
///
/// # Errors
///
/// Returns [`RadError::Store`] on malformed rows.
pub fn parse_runs_csv(text: &str) -> Result<Vec<rad_core::RunMetadata>, RadError> {
    use rad_core::{Label, ProcedureKind, RunId, RunMetadata, SimInstant};
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.is_empty() {
            continue; // header
        }
        let fields = csv::decode_row(line)?;
        if fields.len() != 4 {
            return Err(RadError::Store(format!(
                "runs.csv row {i} has {} fields",
                fields.len()
            )));
        }
        let run_id = RunId(
            fields[0]
                .parse()
                .map_err(|_| RadError::Store(format!("bad run id {}", fields[0])))?,
        );
        let kind: ProcedureKind = fields[1].parse()?;
        let label: Label = fields[2].parse()?;
        let mut meta = RunMetadata::new(run_id, kind, SimInstant::EPOCH).with_label(label);
        if !fields[3].is_empty() {
            meta = meta.with_note(fields[3].clone());
        }
        out.push(meta);
    }
    Ok(out)
}

impl DocumentStore {
    /// Snapshots every collection to one JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), RadError> {
        let mut collections = serde_json::Map::new();
        for name in self.collection_names() {
            let docs = self.find(&name, &crate::Filter::all());
            collections.insert(name, serde_json::Value::Array(docs));
        }
        let blob = serde_json::Value::Object(collections);
        fs::write(
            path,
            serde_json::to_string(&blob).expect("documents serialize"),
        )
        .map_err(|e| io_err("saving document store", e))
    }

    /// Loads a snapshot produced by [`DocumentStore::save`] into a new
    /// store. Document ids are reassigned.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem or parse failures.
    pub fn load(path: &Path) -> Result<DocumentStore, RadError> {
        let text = fs::read_to_string(path).map_err(|e| io_err("loading document store", e))?;
        let blob: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| RadError::Store(format!("parsing snapshot: {e}")))?;
        let store = DocumentStore::new();
        let Some(collections) = blob.as_object() else {
            return Err(RadError::Store("snapshot root must be an object".into()));
        };
        for (name, docs) in collections {
            let Some(docs) = docs.as_array() else {
                return Err(RadError::Store(format!(
                    "collection {name} must be an array"
                )));
            };
            for doc in docs {
                store.insert(name, doc.clone())?;
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{
        Command, CommandType, DeviceId, Label, ProcedureKind, RunId, RunMetadata, SimInstant,
        TraceId, TraceObject,
    };
    use serde_json::json;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rad-export-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_dataset() -> CommandDataset {
        let mut ds = CommandDataset::new();
        ds.add_run(
            RunMetadata::new(
                RunId(0),
                ProcedureKind::JoystickMovements,
                SimInstant::EPOCH,
            )
            .with_label(Label::Benign)
            .with_note("note, with comma"),
        );
        for i in 0..5 {
            ds.push_trace(
                TraceObject::builder(
                    TraceId(i),
                    SimInstant::from_micros(i * 1000),
                    DeviceId::primary(rad_core::DeviceKind::C9),
                    Command::nullary(CommandType::Mvng),
                )
                .run(ProcedureKind::JoystickMovements, RunId(0), Label::Benign)
                .build(),
            );
        }
        ds
    }

    #[test]
    fn bundle_round_trips_the_command_half() {
        let dir = tmpdir("bundle");
        let ds = small_dataset();
        let files = export_rad(&ds, &PowerDataset::new(), &dir).unwrap();
        assert!(files >= 3, "commands, runs, manifest");
        assert!(dir.join("MANIFEST.json").exists());
        let back = import_commands(&dir).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.traces()[3].command_type(), CommandType::Mvng);
        // Run metadata (including the quoted note) survives the trip.
        assert_eq!(back.runs().len(), 1);
        assert_eq!(back.runs()[0].operator_note(), Some("note, with comma"));
        assert_eq!(back.runs()[0].label(), Label::Benign);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gaps_csv_round_trips_through_the_bundle() {
        use rad_core::{DeviceKind, TraceGap, TraceMode};
        let dir = tmpdir("gaps");
        let ds = small_dataset().with_gaps(vec![TraceGap::new(
            SimInstant::from_micros(123),
            DeviceId::primary(DeviceKind::C9),
            CommandType::Arm,
            TraceMode::Remote,
            "middlebox unavailable",
        )
        .with_run(RunId(0))]);
        export_rad(&ds, &PowerDataset::new(), &dir).unwrap();
        assert!(dir.join("gaps.csv").exists());
        let manifest: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(dir.join("MANIFEST.json")).unwrap()).unwrap();
        assert_eq!(manifest["trace_gaps"], json!(1));
        let back = import_commands(&dir).unwrap();
        assert_eq!(back.gaps(), ds.gaps());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_free_bundles_omit_the_gap_table() {
        let dir = tmpdir("nogaps");
        export_rad(&small_dataset(), &PowerDataset::new(), &dir).unwrap();
        assert!(!dir.join("gaps.csv").exists());
        assert!(import_commands(&dir).unwrap().gaps().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_counts_match() {
        let dir = tmpdir("manifest");
        let ds = small_dataset();
        export_rad(&ds, &PowerDataset::new(), &dir).unwrap();
        let manifest: serde_json::Value =
            serde_json::from_str(&fs::read_to_string(dir.join("MANIFEST.json")).unwrap()).unwrap();
        assert_eq!(manifest["trace_objects"], json!(5));
        assert_eq!(manifest["supervised_runs"], json!(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn document_store_snapshot_round_trips() {
        let dir = tmpdir("snapshot");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let store = DocumentStore::new();
        store
            .insert("traces", json!({"command": "ARM", "ms": 5.0}))
            .unwrap();
        store.insert("traces", json!({"command": "Q"})).unwrap();
        store.insert("runs", json!({"run_id": 0})).unwrap();
        store.save(&path).unwrap();
        let loaded = DocumentStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(
            loaded.count("traces", &crate::Filter::eq("command", json!("ARM"))),
            1
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_garbage_fails_cleanly() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, "not json").unwrap();
        assert!(DocumentStore::load(&path).is_err());
        fs::write(&path, "[1,2,3]").unwrap();
        assert!(DocumentStore::load(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_from_missing_dir_fails_cleanly() {
        let err = import_commands(Path::new("/nonexistent/rad")).unwrap_err();
        assert!(err.to_string().contains("commands.csv"));
    }
}
