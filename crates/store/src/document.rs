//! An embedded document store — the MongoDB substitute.
//!
//! RATracer's tracing backend writes each intercepted access as a
//! document. The store reproduces the slice of MongoDB the pipeline
//! uses: named collections, insertion with auto-assigned ids, filtered
//! scans, counting, and deletion. It is thread-safe ([`parking_lot`]
//! `RwLock` per store) because the middlebox server thread inserts
//! while analysis code reads.

use std::collections::BTreeMap;
use std::fmt;

use parking_lot::RwLock;
use rad_core::RadError;
use serde_json::Value as Json;

/// One collection's `(id, document)` pairs in id order, as produced by
/// a checkpoint snapshot.
pub(crate) type CollectionDump = Vec<(u64, Json)>;

/// Identifier assigned to each inserted document, unique per store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocumentId(pub u64);

impl fmt::Display for DocumentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc-{}", self.0)
    }
}

/// A query filter over documents.
///
/// Filters compose conjunctively via [`Filter::and`]. Field paths use
/// dots for nesting (`"command.type"`).
///
/// # Examples
///
/// ```
/// use rad_store::Filter;
/// use serde_json::json;
///
/// let f = Filter::eq("device", json!("C9")).and(Filter::gte("latency_ms", 5.0));
/// assert!(f.matches(&json!({"device": "C9", "latency_ms": 7.0})));
/// assert!(!f.matches(&json!({"device": "C9", "latency_ms": 3.0})));
/// ```
#[derive(Debug, Clone)]
pub struct Filter {
    clauses: Vec<Clause>,
}

#[derive(Debug, Clone)]
enum Clause {
    Eq(String, Json),
    Gte(String, f64),
    Lte(String, f64),
    Exists(String),
}

impl Filter {
    /// The empty filter: matches every document.
    pub fn all() -> Self {
        Filter {
            clauses: Vec::new(),
        }
    }

    /// Field equals a JSON value.
    pub fn eq(path: impl Into<String>, value: Json) -> Self {
        Filter {
            clauses: vec![Clause::Eq(path.into(), value)],
        }
    }

    /// Numeric field is `>= bound`.
    pub fn gte(path: impl Into<String>, bound: f64) -> Self {
        Filter {
            clauses: vec![Clause::Gte(path.into(), bound)],
        }
    }

    /// Numeric field is `<= bound`.
    pub fn lte(path: impl Into<String>, bound: f64) -> Self {
        Filter {
            clauses: vec![Clause::Lte(path.into(), bound)],
        }
    }

    /// Field exists (at any value, including `null`).
    pub fn exists(path: impl Into<String>) -> Self {
        Filter {
            clauses: vec![Clause::Exists(path.into())],
        }
    }

    /// Conjunction of two filters.
    #[must_use]
    pub fn and(mut self, other: Filter) -> Self {
        self.clauses.extend(other.clauses);
        self
    }

    /// Whether `doc` satisfies every clause.
    pub fn matches(&self, doc: &Json) -> bool {
        self.clauses.iter().all(|c| c.matches(doc))
    }
}

impl Clause {
    fn matches(&self, doc: &Json) -> bool {
        match self {
            Clause::Eq(path, value) => lookup(doc, path) == Some(value),
            Clause::Gte(path, bound) => lookup(doc, path)
                .and_then(Json::as_f64)
                .is_some_and(|v| v >= *bound),
            Clause::Lte(path, bound) => lookup(doc, path)
                .and_then(Json::as_f64)
                .is_some_and(|v| v <= *bound),
            Clause::Exists(path) => lookup(doc, path).is_some(),
        }
    }
}

/// Resolves a dotted path inside a JSON document.
fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    let mut current = doc;
    for part in path.split('.') {
        current = current.get(part)?;
    }
    Some(current)
}

#[derive(Default)]
struct Collection {
    docs: BTreeMap<u64, Json>,
}

/// The embedded document store.
///
/// Cloning is not provided; share a store behind an `Arc` as the
/// middlebox does.
#[derive(Default)]
pub struct DocumentStore {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    collections: BTreeMap<String, Collection>,
    next_id: u64,
}

impl DocumentStore {
    /// An empty store.
    pub fn new() -> Self {
        DocumentStore::default()
    }

    /// Inserts `doc` into `collection` (created on first use) and
    /// returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] if `doc` is not a JSON object —
    /// documents must be objects so filters can address fields.
    pub fn insert(&self, collection: &str, doc: Json) -> Result<DocumentId, RadError> {
        if !doc.is_object() {
            return Err(RadError::Store(format!(
                "documents must be JSON objects, got {doc}"
            )));
        }
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        inner
            .collections
            .entry(collection.to_owned())
            .or_default()
            .docs
            .insert(id, doc);
        Ok(DocumentId(id))
    }

    /// Fetches a document by id.
    pub fn get(&self, collection: &str, id: DocumentId) -> Option<Json> {
        self.inner
            .read()
            .collections
            .get(collection)?
            .docs
            .get(&id.0)
            .cloned()
    }

    /// Visits every document in `collection` matching `filter`, in
    /// insertion order, without cloning anything — candidates are
    /// filtered and handed to `visit` by reference. [`DocumentStore::find`]
    /// is this plus a clone per match; readers that only aggregate
    /// (count, project one field, decode into an owned value anyway)
    /// should use this directly.
    ///
    /// The collection lock is held for the duration of the walk, so
    /// `visit` must not call back into this store.
    pub fn for_each_matching(
        &self,
        collection: &str,
        filter: &Filter,
        mut visit: impl FnMut(DocumentId, &Json),
    ) {
        if let Some(c) = self.inner.read().collections.get(collection) {
            for (id, doc) in &c.docs {
                if filter.matches(doc) {
                    visit(DocumentId(*id), doc);
                }
            }
        }
    }

    /// All documents in `collection` matching `filter`, in insertion
    /// order. Clones one [`Json`] per match (never per candidate);
    /// [`DocumentStore::for_each_matching`] avoids even that.
    pub fn find(&self, collection: &str, filter: &Filter) -> Vec<Json> {
        let mut out = Vec::new();
        self.for_each_matching(collection, filter, |_, doc| out.push(doc.clone()));
        out
    }

    /// Number of matching documents.
    pub fn count(&self, collection: &str, filter: &Filter) -> usize {
        let mut n = 0;
        self.for_each_matching(collection, filter, |_, _| n += 1);
        n
    }

    /// Ids of all documents in `collection` matching `filter`, in
    /// insertion order. The durable layer uses this to log which
    /// documents a [`DocumentStore::delete`] removed.
    pub fn find_ids(&self, collection: &str, filter: &Filter) -> Vec<DocumentId> {
        let mut out = Vec::new();
        self.for_each_matching(collection, filter, |id, _| out.push(id));
        out
    }

    /// Removes one document by id, returning whether it existed.
    pub fn remove(&self, collection: &str, id: DocumentId) -> bool {
        self.inner
            .write()
            .collections
            .get_mut(collection)
            .is_some_and(|c| c.docs.remove(&id.0).is_some())
    }

    /// Inserts `doc` under an explicit id — WAL replay and checkpoint
    /// loading must reproduce the exact ids of the original run.
    pub(crate) fn insert_with_id(&self, collection: &str, id: DocumentId, doc: Json) {
        let mut inner = self.inner.write();
        inner.next_id = inner.next_id.max(id.0 + 1);
        inner
            .collections
            .entry(collection.to_owned())
            .or_default()
            .docs
            .insert(id.0, doc);
    }

    /// The id the next insert will receive.
    pub(crate) fn next_id(&self) -> u64 {
        self.inner.read().next_id
    }

    /// Forces the id counter — checkpoint restore must resume the
    /// original sequence even after trailing deletes.
    pub(crate) fn set_next_id(&self, next_id: u64) {
        let mut inner = self.inner.write();
        inner.next_id = inner.next_id.max(next_id);
    }

    /// A full snapshot: the id counter plus every collection's
    /// `(id, document)` pairs in id order. Feeds checkpoint writes.
    pub(crate) fn dump(&self) -> (u64, Vec<(String, CollectionDump)>) {
        let inner = self.inner.read();
        let collections = inner
            .collections
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    c.docs.iter().map(|(id, d)| (*id, d.clone())).collect(),
                )
            })
            .collect();
        (inner.next_id, collections)
    }

    /// Deletes matching documents, returning how many were removed.
    pub fn delete(&self, collection: &str, filter: &Filter) -> usize {
        let mut inner = self.inner.write();
        let Some(c) = inner.collections.get_mut(collection) else {
            return 0;
        };
        let victims: Vec<u64> = c
            .docs
            .iter()
            .filter(|(_, d)| filter.matches(d))
            .map(|(id, _)| *id)
            .collect();
        for id in &victims {
            c.docs.remove(id);
        }
        victims.len()
    }

    /// Names of all collections, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        self.inner.read().collections.keys().cloned().collect()
    }

    /// Total number of documents across all collections.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .collections
            .values()
            .map(|c| c.docs.len())
            .sum()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for DocumentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("DocumentStore")
            .field("collections", &inner.collections.len())
            .field(
                "documents",
                &inner
                    .collections
                    .values()
                    .map(|c| c.docs.len())
                    .sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn insert_assigns_increasing_ids() {
        let store = DocumentStore::new();
        let a = store.insert("c", json!({"x": 1})).unwrap();
        let b = store.insert("c", json!({"x": 2})).unwrap();
        assert!(b.0 > a.0);
        assert_eq!(store.get("c", a), Some(json!({"x": 1})));
    }

    #[test]
    fn non_object_documents_are_rejected() {
        let store = DocumentStore::new();
        assert!(store.insert("c", json!(42)).is_err());
        assert!(store.insert("c", json!([1, 2])).is_err());
    }

    #[test]
    fn find_filters_by_nested_path() {
        let store = DocumentStore::new();
        store
            .insert("t", json!({"cmd": {"type": "ARM"}, "ms": 5.0}))
            .unwrap();
        store
            .insert("t", json!({"cmd": {"type": "MVNG"}, "ms": 1.0}))
            .unwrap();
        let hits = store.find("t", &Filter::eq("cmd.type", json!("ARM")));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0]["ms"], json!(5.0));
    }

    #[test]
    fn range_filters_compose() {
        let store = DocumentStore::new();
        for ms in [1.0, 5.0, 9.0, 40.0] {
            store.insert("t", json!({ "ms": ms })).unwrap();
        }
        let mid = Filter::gte("ms", 2.0).and(Filter::lte("ms", 10.0));
        assert_eq!(store.count("t", &mid), 2);
    }

    #[test]
    fn exists_filter() {
        let store = DocumentStore::new();
        store
            .insert("t", json!({"exception": "Collision"}))
            .unwrap();
        store.insert("t", json!({"ok": true})).unwrap();
        assert_eq!(store.count("t", &Filter::exists("exception")), 1);
    }

    #[test]
    fn delete_removes_only_matches() {
        let store = DocumentStore::new();
        store.insert("t", json!({"device": "C9"})).unwrap();
        store.insert("t", json!({"device": "IKA"})).unwrap();
        let removed = store.delete("t", &Filter::eq("device", json!("C9")));
        assert_eq!(removed, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn missing_collection_behaves_as_empty() {
        let store = DocumentStore::new();
        assert!(store.find("nope", &Filter::all()).is_empty());
        assert_eq!(store.count("nope", &Filter::all()), 0);
        assert_eq!(store.delete("nope", &Filter::all()), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn find_ids_and_remove_round_trip() {
        let store = DocumentStore::new();
        let a = store.insert("t", json!({"device": "C9"})).unwrap();
        let b = store.insert("t", json!({"device": "IKA"})).unwrap();
        assert_eq!(
            store.find_ids("t", &Filter::eq("device", json!("C9"))),
            vec![a]
        );
        assert!(store.remove("t", a));
        assert!(!store.remove("t", a), "second remove is a no-op");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("t", b), Some(json!({"device": "IKA"})));
    }

    #[test]
    fn insert_with_id_preserves_id_sequence() {
        let store = DocumentStore::new();
        store.insert_with_id("t", DocumentId(7), json!({"x": 1}));
        let next = store.insert("t", json!({"x": 2})).unwrap();
        assert_eq!(next, DocumentId(8), "counter advances past explicit ids");
        let (next_id, collections) = store.dump();
        assert_eq!(next_id, 9);
        assert_eq!(collections.len(), 1);
        assert_eq!(collections[0].1.len(), 2);
    }

    #[test]
    fn concurrent_inserts_are_all_stored() {
        use std::sync::Arc;
        let store = Arc::new(DocumentStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.insert("t", json!({"thread": t, "i": i})).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 800);
    }

    #[test]
    fn visitor_agrees_with_find_without_cloning() {
        let store = DocumentStore::new();
        for i in 0..20 {
            store
                .insert("t", json!({"i": i, "even": (i % 2 == 0)}))
                .unwrap();
        }
        let filter = Filter::eq("even", json!(true));
        let mut visited = Vec::new();
        store.for_each_matching("t", &filter, |id, doc| {
            visited.push((id, doc["i"].as_i64().unwrap()));
        });
        assert_eq!(visited.len(), 10);
        let found = store.find("t", &filter);
        assert_eq!(
            found
                .iter()
                .map(|d| d["i"].as_i64().unwrap())
                .collect::<Vec<_>>(),
            visited.iter().map(|(_, i)| *i).collect::<Vec<_>>()
        );
        assert_eq!(
            store.find_ids("t", &filter),
            visited.iter().map(|(id, _)| *id).collect::<Vec<_>>()
        );
        assert_eq!(store.count("t", &filter), 10);
        // Missing collection: the visitor is simply never called.
        store.for_each_matching("missing", &filter, |_, _| panic!("must not visit"));
    }
}
