//! A crash-safe layer over [`DocumentStore`]: write-ahead logging,
//! checkpoint snapshots, and recovery.
//!
//! Every mutation is appended to the [`Wal`] *before* it is applied to
//! the in-memory store, under one lock, so the log is always a complete
//! history of the applied state. [`DurableStore::open`] rebuilds the
//! store from the newest checkpoint plus the WAL suffix; a process
//! killed at any point recovers every synced record and nothing that
//! was never written.
//!
//! # On-disk layout
//!
//! ```text
//! dir/
//! ├── checkpoint.json       # atomic snapshot: next_seq + next_id + docs
//! ├── wal-000007.log        # segments past the checkpoint
//! └── wal-000008.log
//! ```
//!
//! A checkpoint is written with [`atomic_write_file`] (temp + fsync +
//! rename), then the WAL rotates and retires its old segments. Replay
//! filters WAL records below the checkpoint's `next_seq`, so a crash
//! anywhere in that sequence double-applies nothing. A checkpoint that
//! fails validation on open is renamed `checkpoint.json.quarantined`
//! and recovery continues from the WAL alone — damage is reported, not
//! fatal.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rad_core::{spec, RadError};
use serde_json::{json, Value as Json};

use crate::document::{DocumentId, DocumentStore, Filter};
use crate::segment::{SegmentOptions, SegmentSet, SegmentWriter};
use crate::wal::{atomic_write_file, CrashInjector, CrashPlan, RecoveryReport, Wal, WalOptions};

const CHECKPOINT_FILE: &str = "checkpoint.json";
const SEGMENTS_DIR: &str = "segments";
const SEGMENTS_COLLECTION: &str = "segments";

/// Tuning knobs for a [`DurableStore`].
#[derive(Debug, Clone, Default)]
pub struct DurableOptions {
    /// WAL segment size and fsync batching.
    pub wal: WalOptions,
    /// Write a checkpoint automatically after this many logged
    /// operations (`None` = only on explicit [`DurableStore::checkpoint`]).
    pub checkpoint_every_ops: Option<u64>,
    /// Seeded crash schedule for the write path (testing only).
    pub crash_plan: Option<CrashPlan>,
}

/// A [`DocumentStore`] whose every mutation survives a crash.
///
/// Thread-safe: reads go straight to the underlying store's `RwLock`;
/// mutations serialize on an internal mutex so the WAL order always
/// matches the applied order.
///
/// # Examples
///
/// ```no_run
/// use rad_store::{DurableOptions, DurableStore};
/// use serde_json::json;
///
/// let dir = std::path::Path::new("/tmp/rad-durable-doc");
/// let (store, _report) = DurableStore::open(dir, DurableOptions::default())?;
/// store.insert("traces", json!({"command": "ARM"}))?;
/// store.sync()?;
/// drop(store);
/// // A reopen recovers the insert from the log.
/// let (store, report) = DurableStore::open(dir, DurableOptions::default())?;
/// assert_eq!(store.store().len(), 1);
/// assert_eq!(report.records_replayed, 1);
/// # Ok::<(), rad_core::RadError>(())
/// ```
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    store: DocumentStore,
    wal: Mutex<Wal>,
    injector: Option<CrashInjector>,
    checkpoint_every_ops: Option<u64>,
    ops_since_checkpoint: AtomicU64,
}

impl DurableStore {
    /// Opens (or creates) a durable store in `dir`, recovering the
    /// newest checkpoint and replaying the WAL suffix over it.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failures. Corrupt
    /// checkpoints and damaged WAL segments are quarantined and
    /// reported, never fatal.
    pub fn open(dir: &Path, options: DurableOptions) -> Result<(Self, RecoveryReport), RadError> {
        fs::create_dir_all(dir)
            .map_err(|e| RadError::Store(format!("creating durable dir: {e}")))?;
        let injector = options.crash_plan.map(CrashInjector::new);
        let (wal, records, mut report) = Wal::open(dir, options.wal, injector.clone())?;

        let mut wal = wal;
        let store = DocumentStore::new();
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        if checkpoint_path.exists() {
            match Self::load_checkpoint(&checkpoint_path, &store) {
                Ok(next_seq) => {
                    report.checkpoint_next_seq = next_seq;
                    // The checkpoint absorbed (and retired) seqs below
                    // next_seq; fresh appends must still sort after them.
                    wal.ensure_next_seq(next_seq);
                }
                Err(reason) => {
                    // Same policy as a damaged WAL segment: set it
                    // aside, report it, recover from what remains.
                    let quarantine = dir.join(format!("{CHECKPOINT_FILE}.quarantined"));
                    fs::rename(&checkpoint_path, &quarantine)
                        .map_err(|e| RadError::Store(format!("quarantining checkpoint: {e}")))?;
                    report.checkpoint_quarantined = true;
                    let _ = reason;
                }
            }
        }

        for record in &records {
            if record.seq < report.checkpoint_next_seq {
                continue; // already folded into the checkpoint
            }
            Self::apply_logged(&store, &record.payload)?;
            report.records_replayed += 1;
        }

        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                store,
                wal: Mutex::new(wal),
                injector,
                checkpoint_every_ops: options.checkpoint_every_ops,
                ops_since_checkpoint: AtomicU64::new(0),
            },
            report,
        ))
    }

    /// Parses and applies a checkpoint file, returning its `next_seq`.
    /// Any structural problem is a `String` reason for quarantine.
    fn load_checkpoint(path: &Path, store: &DocumentStore) -> Result<u64, String> {
        let bytes = fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
        let value: Json =
            serde_json::from_slice(&bytes).map_err(|e| format!("invalid json: {e}"))?;
        let next_seq = value
            .get("next_seq")
            .and_then(Json::as_u64)
            .ok_or("missing next_seq")?;
        let next_id = value
            .get("next_id")
            .and_then(Json::as_u64)
            .ok_or("missing next_id")?;
        let collections = value
            .get("collections")
            .and_then(Json::as_object)
            .ok_or("missing collections")?;
        for (name, docs) in collections {
            let docs = docs.as_array().ok_or("collection is not an array")?;
            for pair in docs {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or("bad doc pair")?;
                let id = pair[0].as_u64().ok_or("bad doc id")?;
                if !pair[1].is_object() {
                    return Err("document is not an object".into());
                }
                store.insert_with_id(name, DocumentId(id), pair[1].clone());
            }
        }
        store.set_next_id(next_id);
        Ok(next_seq)
    }

    /// Applies one logged operation during replay.
    fn apply_logged(store: &DocumentStore, payload: &[u8]) -> Result<(), RadError> {
        let op: Json = serde_json::from_slice(payload)
            .map_err(|e| RadError::Store(format!("wal payload is not valid json: {e}")))?;
        let kind = op.get("op").and_then(Json::as_str).unwrap_or("");
        let collection = op.get("c").and_then(Json::as_str).unwrap_or("");
        match kind {
            "insert" => {
                let id = op
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| RadError::Store("logged insert missing id".into()))?;
                let doc = op
                    .get("doc")
                    .cloned()
                    .ok_or_else(|| RadError::Store("logged insert missing doc".into()))?;
                store.insert_with_id(collection, DocumentId(id), doc);
                Ok(())
            }
            "insert_batch" => {
                let first_id = op
                    .get("first_id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| RadError::Store("logged batch missing first_id".into()))?;
                let docs = op
                    .get("docs")
                    .and_then(Json::as_array)
                    .ok_or_else(|| RadError::Store("logged batch missing docs".into()))?;
                for (i, doc) in docs.iter().enumerate() {
                    store.insert_with_id(collection, DocumentId(first_id + i as u64), doc.clone());
                }
                store.set_next_id(first_id + docs.len() as u64);
                Ok(())
            }
            "delete" => {
                let ids = op
                    .get("ids")
                    .and_then(Json::as_array)
                    .ok_or_else(|| RadError::Store("logged delete missing ids".into()))?;
                for id in ids {
                    let id = id.as_u64().ok_or_else(|| {
                        RadError::Store("logged delete has non-integer id".into())
                    })?;
                    store.remove(collection, DocumentId(id));
                }
                Ok(())
            }
            other => Err(RadError::Store(format!(
                "unknown logged operation `{other}`"
            ))),
        }
    }

    /// Inserts `doc` into `collection`, durably: the operation is in
    /// the log before the store ever sees it.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] if `doc` is not a JSON object, on
    /// filesystem failure, or on an injected crash.
    pub fn insert(&self, collection: &str, doc: Json) -> Result<DocumentId, RadError> {
        if !doc.is_object() {
            return Err(RadError::Store(format!(
                "documents must be JSON objects, got {doc}"
            )));
        }
        let mut wal = self.wal.lock();
        let id = self.store.next_id();
        let op = json!({"op": "insert", "c": collection, "id": id, "doc": doc});
        wal.append(op.to_string().as_bytes())?;
        self.store.insert_with_id(collection, DocumentId(id), doc);
        self.store.set_next_id(id + 1);
        drop(wal);
        self.after_op()?;
        Ok(DocumentId(id))
    }

    /// Inserts a whole batch of documents durably with **one** WAL
    /// frame. This is the sink-facing write path: a campaign streaming
    /// thousand-row batches pays one append + one (amortized) fsync per
    /// batch instead of per document, and replay applies the batch
    /// atomically — either every document of a frame recovers or none.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] if any document is not a JSON
    /// object, on filesystem failure, or on an injected crash. On
    /// error nothing is applied.
    pub fn insert_batch(
        &self,
        collection: &str,
        docs: Vec<Json>,
    ) -> Result<Vec<DocumentId>, RadError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(bad) = docs.iter().find(|d| !d.is_object()) {
            return Err(RadError::Store(format!(
                "documents must be JSON objects, got {bad}"
            )));
        }
        let mut wal = self.wal.lock();
        let first_id = self.store.next_id();
        let op = json!({"op": "insert_batch", "c": collection, "first_id": first_id, "docs": docs});
        wal.append(op.to_string().as_bytes())?;
        let n = docs.len() as u64;
        let mut ids = Vec::with_capacity(docs.len());
        for (i, doc) in docs.into_iter().enumerate() {
            let id = DocumentId(first_id + i as u64);
            self.store.insert_with_id(collection, id, doc);
            ids.push(id);
        }
        self.store.set_next_id(first_id + n);
        drop(wal);
        self.after_op()?;
        Ok(ids)
    }

    /// Deletes matching documents durably, returning how many were
    /// removed.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failure or an
    /// injected crash.
    pub fn delete(&self, collection: &str, filter: &Filter) -> Result<usize, RadError> {
        let mut wal = self.wal.lock();
        let victims = self.store.find_ids(collection, filter);
        if victims.is_empty() {
            return Ok(0);
        }
        let ids: Vec<u64> = victims.iter().map(|d| d.0).collect();
        let op = json!({"op": "delete", "c": collection, "ids": ids});
        wal.append(op.to_string().as_bytes())?;
        for id in &victims {
            self.store.remove(collection, *id);
        }
        drop(wal);
        self.after_op()?;
        Ok(victims.len())
    }

    fn after_op(&self) -> Result<(), RadError> {
        if let Some(every) = self.checkpoint_every_ops {
            let n = self.ops_since_checkpoint.fetch_add(1, Ordering::Relaxed) + 1;
            if n >= every {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Flushes every buffered WAL append to disk.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on fsync failure or a poisoned log.
    pub fn sync(&self) -> Result<(), RadError> {
        self.wal.lock().sync()
    }

    /// Compacts the log: snapshots the full store into
    /// `checkpoint.json` atomically, then rotates the WAL and retires
    /// the segments the snapshot covers.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failure or an
    /// injected crash ([`CrashSite::MidCompaction`] /
    /// [`CrashSite::MidRename`] fire here).
    ///
    /// [`CrashSite::MidCompaction`]: crate::wal::CrashSite::MidCompaction
    /// [`CrashSite::MidRename`]: crate::wal::CrashSite::MidRename
    pub fn checkpoint(&self) -> Result<(), RadError> {
        let mut wal = self.wal.lock();
        wal.sync()?;
        let (next_id, collections) = self.store.dump();
        let mut doc = serde_json::Map::new();
        doc.insert("next_seq".into(), json!(wal.next_seq()));
        doc.insert("next_id".into(), json!(next_id));
        let mut cols = serde_json::Map::new();
        for (name, docs) in collections {
            let pairs: Vec<Json> = docs.into_iter().map(|(id, d)| json!([id, d])).collect();
            cols.insert(name, Json::Array(pairs));
        }
        doc.insert("collections".into(), Json::Object(cols));
        let bytes = Json::Object(doc).to_string().into_bytes();
        atomic_write_file(
            &self.dir.join(CHECKPOINT_FILE),
            &bytes,
            self.injector.as_ref(),
        )?;
        wal.reset_after_checkpoint()?;
        self.ops_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Compacts a campaign trace collection — `{"i": pos, "v": trace}`
    /// documents as written by the campaign sink — into sealed columnar
    /// segments under `dir/segments/`, then checkpoints.
    ///
    /// The seal is crash-safe end to end: segment files go through the
    /// same atomic temp-fsync-rename path as checkpoints (the store's
    /// crash injector fires in the same windows), the manifest
    /// recording which files hold the collection is a WAL-logged
    /// insert into the `"segments"` collection, and the closing
    /// [`DurableStore::checkpoint`] retires the WAL prefix. A crash at
    /// any point leaves either the documents alone, or documents plus
    /// complete sealed segments — never a half-sealed file a scan
    /// could see.
    ///
    /// Compaction is incremental: manifests remember how many stream
    /// positions are already sealed, and a later call seals only the
    /// suffix — re-finalizing a resumed campaign never duplicates
    /// rows. `prune` deletes the source documents after sealing (the
    /// segments become the only copy); leave it `false` when a resumed
    /// campaign still needs to prefix-verify the documents, and note
    /// that pruning forfeits incrementality — positions restarting at
    /// zero would be mistaken for already-sealed rows.
    ///
    /// Returns the paths sealed, in seal order. A collection with
    /// nothing new seals nothing and writes no manifest.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] when a document does not decode as
    /// a trace item, on filesystem failure, or on an injected crash.
    pub fn compact_traces_to_segments(
        &self,
        collection: &str,
        options: SegmentOptions,
        prune: bool,
    ) -> Result<Vec<PathBuf>, RadError> {
        // Stream positions below this are already in sealed segments.
        let mut already_sealed = 0u64;
        self.store.for_each_matching(
            SEGMENTS_COLLECTION,
            &Filter::eq("source", Json::String(collection.to_owned())),
            |_, doc| {
                already_sealed += doc.get("rows").and_then(Json::as_u64).unwrap_or(0);
            },
        );
        // Decode in place via the zero-clone visitor: only the `"v"`
        // payload of each document is cloned, to hand serde an owned
        // value.
        let mut decoded: Vec<(u64, rad_core::TraceObject)> = Vec::new();
        let mut bad: Option<String> = None;
        self.store
            .for_each_matching(collection, &Filter::all(), |id, doc| {
                if bad.is_some() {
                    return;
                }
                let pos = doc.get("i").and_then(Json::as_u64);
                match pos {
                    Some(pos) if pos < already_sealed => return,
                    _ => {}
                }
                let value = doc.get("v").cloned();
                match (pos, value) {
                    (Some(pos), Some(value)) => match serde_json::from_value(value) {
                        Ok(trace) => decoded.push((pos, trace)),
                        Err(e) => bad = Some(format!("{collection} {id}: {e}")),
                    },
                    _ => bad = Some(format!("{collection} {id}: missing `i` or `v`")),
                }
            });
        if let Some(reason) = bad {
            return Err(RadError::Store(format!(
                "compacting non-trace document {reason}"
            )));
        }
        if decoded.is_empty() {
            return Ok(Vec::new());
        }
        decoded.sort_by_key(|(pos, _)| *pos);
        let mut batch = rad_core::TraceBatch::with_capacity(decoded.len());
        for (_, trace) in decoded {
            batch.push_owned(trace);
        }

        let mut writer = SegmentWriter::create(&self.segments_dir(), options)?
            .with_injector(self.injector.as_ref());
        let paths = writer.seal_traces(&batch)?;
        let files: Vec<Json> = paths
            .iter()
            .map(|p| Json::String(p.file_name().unwrap_or_default().to_string_lossy().into()))
            .collect();
        self.insert(
            SEGMENTS_COLLECTION,
            json!({
                "source": collection,
                "rows": batch.len(),
                "first": already_sealed,
                "files": files,
            }),
        )?;
        if prune {
            self.delete(collection, &Filter::all())?;
        }
        self.checkpoint()?;
        Ok(paths)
    }

    /// The directory compaction seals segments into.
    pub fn segments_dir(&self) -> PathBuf {
        self.dir.join(SEGMENTS_DIR)
    }

    /// Opens the store's sealed segments as a queryable
    /// [`SegmentSet`] (empty before the first compaction).
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on directory I/O failure.
    pub fn segments(&self) -> Result<SegmentSet, RadError> {
        SegmentSet::open(&self.segments_dir())
    }

    /// Read access to the underlying in-memory store. Mutating it
    /// directly bypasses the log; use [`DurableStore::insert`] /
    /// [`DurableStore::delete`] instead.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// All documents in `collection` matching `filter`.
    pub fn find(&self, collection: &str, filter: &Filter) -> Vec<Json> {
        self.store.find(collection, filter)
    }

    /// Number of matching documents.
    pub fn count(&self, collection: &str, filter: &Filter) -> usize {
        self.store.count(collection, filter)
    }

    /// The crash injector, when a [`CrashPlan`] was configured.
    pub fn injector(&self) -> Option<&CrashInjector> {
        self.injector.as_ref()
    }

    /// The directory holding the log and checkpoint.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// The declarative form of [`DurableOptions`] — the `durable` section
/// of a scenario document:
///
/// ```json
/// {
///   "segment_bytes": 262144,
///   "sync_every": 64,
///   "checkpoint_every_ops": 512,
///   "crash": {"at": {"site": "pre-fsync", "occurrence": 3}}
/// }
/// ```
///
/// Every field is optional; absent sizing fields take the
/// [`WalOptions::default`] values, and an absent `crash` section means
/// no crash injection.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableSpec {
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Fsync after this many appends.
    pub sync_every: u64,
    /// Automatic checkpoint cadence (`None` = explicit only).
    pub checkpoint_every_ops: Option<u64>,
    /// Seeded crash schedule, if any.
    pub crash: Option<crate::wal::CrashSpec>,
}

impl DurableSpec {
    const FIELDS: &'static [&'static str] = &[
        "segment_bytes",
        "sync_every",
        "checkpoint_every_ops",
        "crash",
    ];

    /// Captures existing hand-wired options as a spec.
    pub fn from_options(options: &DurableOptions) -> Self {
        DurableSpec {
            segment_bytes: options.wal.segment_bytes,
            sync_every: options.wal.sync_every,
            checkpoint_every_ops: options.checkpoint_every_ops,
            crash: options
                .crash_plan
                .as_ref()
                .map(crate::wal::CrashSpec::from_plan),
        }
    }

    /// Builds the [`DurableOptions`] this spec describes.
    pub fn to_options(&self) -> DurableOptions {
        DurableOptions {
            wal: WalOptions {
                segment_bytes: self.segment_bytes,
                sync_every: self.sync_every,
            },
            checkpoint_every_ops: self.checkpoint_every_ops,
            crash_plan: self.crash.as_ref().map(crate::wal::CrashSpec::to_plan),
        }
    }

    /// Parses the `durable` section of a scenario document. `ctx` is
    /// the dotted path of `value` for error messages.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on unknown fields, ill-typed values, or a
    /// zero `sync_every`.
    pub fn from_json(value: &Json, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, Self::FIELDS)?;
        let defaults = WalOptions::default();
        let parsed = DurableSpec {
            segment_bytes: spec::opt_u64(map, ctx, "segment_bytes")?
                .unwrap_or(defaults.segment_bytes),
            sync_every: spec::opt_u64(map, ctx, "sync_every")?.unwrap_or(defaults.sync_every),
            checkpoint_every_ops: spec::opt_u64(map, ctx, "checkpoint_every_ops")?,
            crash: match map.get("crash") {
                None | Some(Json::Null) => None,
                Some(v) => Some(crate::wal::CrashSpec::from_json(
                    v,
                    &spec::path(ctx, "crash"),
                )?),
            },
        };
        if parsed.sync_every == 0 {
            return Err(RadError::spec(
                spec::path(ctx, "sync_every"),
                "must be at least 1",
            ));
        }
        Ok(parsed)
    }

    /// Serializes the spec back to its JSON form. Optional sections are
    /// omitted when absent.
    pub fn to_json(&self) -> Json {
        let mut map = serde_json::Map::new();
        map.insert("segment_bytes".into(), Json::from(self.segment_bytes));
        map.insert("sync_every".into(), Json::from(self.sync_every));
        if let Some(every) = self.checkpoint_every_ops {
            map.insert("checkpoint_every_ops".into(), Json::from(every));
        }
        if let Some(crash) = &self.crash {
            map.insert("crash".into(), crash.to_json());
        }
        Json::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::CrashSite;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rad-durable-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn options() -> DurableOptions {
        DurableOptions {
            wal: WalOptions {
                segment_bytes: 4096,
                sync_every: 1,
            },
            ..DurableOptions::default()
        }
    }

    #[test]
    fn inserts_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let (store, report) = DurableStore::open(&dir, options()).unwrap();
            assert!(report.is_clean());
            for i in 0..20 {
                store.insert("traces", json!({"i": i})).unwrap();
            }
            store.sync().unwrap();
        }
        let (store, report) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(store.store().len(), 20);
        assert_eq!(report.records_replayed, 20);
        assert_eq!(store.find("traces", &Filter::eq("i", json!(7))).len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_inserts_replay_from_one_frame() {
        let dir = tmpdir("batch");
        {
            let (store, _) = DurableStore::open(&dir, options()).unwrap();
            let docs: Vec<Json> = (0..50).map(|i| json!({"i": i})).collect();
            let ids = store.insert_batch("t", docs).unwrap();
            assert_eq!(ids.len(), 50);
            assert_eq!(ids[0], DocumentId(0));
            assert_eq!(ids[49], DocumentId(49));
            store.sync().unwrap();
        }
        let (store, report) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(store.store().len(), 50);
        assert_eq!(report.records_replayed, 1, "one WAL frame per batch");
        let next = store.insert("t", json!({"i": 50})).unwrap();
        assert_eq!(next, DocumentId(50), "id sequence resumes after the batch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_insert_rejects_non_objects_atomically() {
        let dir = tmpdir("batchbad");
        let (store, _) = DurableStore::open(&dir, options()).unwrap();
        let err = store
            .insert_batch("t", vec![json!({"ok": 1}), json!(42)])
            .unwrap_err();
        assert!(err.to_string().contains("JSON objects"));
        assert_eq!(store.store().len(), 0, "nothing applied on error");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn deletes_replay_too() {
        let dir = tmpdir("delete");
        {
            let (store, _) = DurableStore::open(&dir, options()).unwrap();
            for i in 0..10 {
                store.insert("t", json!({"i": i})).unwrap();
            }
            store.delete("t", &Filter::gte("i", 5.0)).unwrap();
            store.sync().unwrap();
        }
        let (store, _) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(store.store().len(), 5);
        assert_eq!(store.count("t", &Filter::gte("i", 5.0)), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ids_are_stable_across_recovery() {
        let dir = tmpdir("ids");
        let direct = DocumentStore::new();
        {
            let (store, _) = DurableStore::open(&dir, options()).unwrap();
            for i in 0..12 {
                let a = store.insert("t", json!({"i": i})).unwrap();
                let b = direct.insert("t", json!({"i": i})).unwrap();
                assert_eq!(a, b, "durable ids match a plain store");
            }
            store.sync().unwrap();
        }
        let (store, _) = DurableStore::open(&dir, options()).unwrap();
        let next = store.insert("t", json!({"i": 12})).unwrap();
        assert_eq!(next, DocumentId(12), "the id sequence resumes exactly");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let dir = tmpdir("checkpoint");
        {
            let (store, _) = DurableStore::open(&dir, options()).unwrap();
            for i in 0..30 {
                store.insert("t", json!({"i": i})).unwrap();
            }
            store.checkpoint().unwrap();
            for i in 30..35 {
                store.insert("t", json!({"i": i})).unwrap();
            }
            store.sync().unwrap();
        }
        assert!(dir.join(CHECKPOINT_FILE).exists());
        let (store, report) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(store.store().len(), 35);
        assert_eq!(
            report.records_replayed, 5,
            "only the post-checkpoint suffix"
        );
        assert!(report.checkpoint_next_seq >= 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_triggers_on_op_count() {
        let dir = tmpdir("auto");
        let opts = DurableOptions {
            checkpoint_every_ops: Some(10),
            ..options()
        };
        let (store, _) = DurableStore::open(&dir, opts).unwrap();
        for i in 0..25 {
            store.insert("t", json!({"i": i})).unwrap();
        }
        assert!(dir.join(CHECKPOINT_FILE).exists());
        drop(store);
        let (store, report) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(store.store().len(), 25);
        assert!(report.records_replayed < 25, "checkpoint absorbed a prefix");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_not_fatal() {
        let dir = tmpdir("badckpt");
        {
            let (store, _) = DurableStore::open(&dir, options()).unwrap();
            for i in 0..8 {
                store.insert("t", json!({"i": i})).unwrap();
            }
            store.checkpoint().unwrap();
            store.insert("t", json!({"i": 8})).unwrap();
            store.sync().unwrap();
        }
        fs::write(dir.join(CHECKPOINT_FILE), b"{ not json").unwrap();
        let (store, report) = DurableStore::open(&dir, options()).unwrap();
        assert!(report.checkpoint_quarantined);
        assert!(dir.join(format!("{CHECKPOINT_FILE}.quarantined")).exists());
        // The checkpointed prefix is gone with the checkpoint (its WAL
        // segments were retired), but the suffix still replays and the
        // store opens: damage is contained, not fatal.
        assert_eq!(store.store().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_mid_compaction_preserves_previous_checkpoint() {
        let dir = tmpdir("midcompact");
        {
            let (store, _) = DurableStore::open(&dir, options()).unwrap();
            for i in 0..10 {
                store.insert("t", json!({"i": i})).unwrap();
            }
            store.checkpoint().unwrap();
        }
        let old_bytes = fs::read(dir.join(CHECKPOINT_FILE)).unwrap();
        {
            let opts = DurableOptions {
                crash_plan: Some(CrashPlan::at(CrashSite::MidCompaction, 0)),
                ..options()
            };
            let (store, _) = DurableStore::open(&dir, opts).unwrap();
            for i in 10..15 {
                store.insert("t", json!({"i": i})).unwrap();
            }
            let err = store.checkpoint().unwrap_err();
            assert!(err.to_string().contains("injected crash"));
        }
        assert_eq!(
            fs::read(dir.join(CHECKPOINT_FILE)).unwrap(),
            old_bytes,
            "the old checkpoint is untouched"
        );
        let (store, _) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(store.store().len(), 15, "WAL suffix covers the new inserts");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_pre_fsync_loses_only_unsynced_tail() {
        let dir = tmpdir("prefsync");
        let opts = DurableOptions {
            wal: WalOptions {
                segment_bytes: 1 << 20,
                sync_every: 4,
            },
            checkpoint_every_ops: None,
            crash_plan: Some(CrashPlan::at(CrashSite::PreFsync, 9)),
        };
        let (store, _) = DurableStore::open(&dir, opts).unwrap();
        let mut applied = 0;
        for i in 0..20 {
            match store.insert("t", json!({"i": i})) {
                Ok(_) => applied += 1,
                Err(e) => {
                    assert!(e.to_string().contains("injected crash"));
                    break;
                }
            }
        }
        assert_eq!(applied, 9);
        assert!(
            store.insert("t", json!({})).is_err(),
            "poisoned after crash"
        );
        drop(store);
        let (store, report) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(store.store().len(), 8, "two batches of four were synced");
        assert!(report.records_replayed <= applied, "nothing invented");
        let _ = fs::remove_dir_all(&dir);
    }

    fn sample_traces(n: u64) -> Vec<rad_core::TraceObject> {
        use rad_core::{Command, CommandType, DeviceId, SimInstant, TraceId, TraceObject};
        (0..n)
            .map(|i| {
                let ct = CommandType::from_token_id(i as usize % CommandType::all().len()).unwrap();
                TraceObject::builder(
                    TraceId(i),
                    SimInstant::from_micros(i * 100),
                    DeviceId::primary(ct.device()),
                    Command::new(ct, vec![]),
                )
                .build()
            })
            .collect()
    }

    fn trace_docs(traces: &[rad_core::TraceObject]) -> Vec<Json> {
        traces
            .iter()
            .enumerate()
            .map(|(i, t)| json!({"i": i, "v": (serde_json::to_value(t).unwrap())}))
            .collect()
    }

    #[test]
    fn compaction_seals_segments_and_survives_reopen() {
        use crate::segment::SegmentOptions;
        let dir = tmpdir("segcompact");
        let traces = sample_traces(40);
        {
            let (store, _) = DurableStore::open(&dir, options()).unwrap();
            store.insert_batch("traces", trace_docs(&traces)).unwrap();
            let paths = store
                .compact_traces_to_segments("traces", SegmentOptions::default(), false)
                .unwrap();
            assert_eq!(paths.len(), 1);
            assert_eq!(store.count("segments", &Filter::all()), 1);
            assert_eq!(
                store.count("traces", &Filter::all()),
                40,
                "unpruned compaction keeps the documents"
            );
        }
        let (store, report) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(report.records_replayed, 0, "checkpoint absorbed everything");
        let set = store.segments().unwrap();
        assert_eq!(set.trace_rows(), 40);
        assert_eq!(set.read_all().unwrap().into_batch().to_traces(), traces);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruned_compaction_makes_segments_the_only_copy() {
        use crate::segment::SegmentOptions;
        let dir = tmpdir("segprune");
        let traces = sample_traces(25);
        let (store, _) = DurableStore::open(&dir, options()).unwrap();
        store.insert_batch("traces", trace_docs(&traces)).unwrap();
        store
            .compact_traces_to_segments("traces", SegmentOptions::default(), true)
            .unwrap();
        assert_eq!(store.count("traces", &Filter::all()), 0);
        let set = store.segments().unwrap();
        assert_eq!(set.read_all().unwrap().into_batch().to_traces(), traces);
        // Compacting the now-empty collection is a no-op.
        assert!(store
            .compact_traces_to_segments("traces", SegmentOptions::default(), true)
            .unwrap()
            .is_empty());
        assert_eq!(store.count("segments", &Filter::all()), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_compaction_leaves_documents_intact() {
        use crate::segment::SegmentOptions;
        let dir = tmpdir("segcrash");
        let opts = DurableOptions {
            crash_plan: Some(CrashPlan::at(CrashSite::MidRename, 0)),
            ..options()
        };
        let (store, _) = DurableStore::open(&dir, opts).unwrap();
        store
            .insert_batch("traces", trace_docs(&sample_traces(30)))
            .unwrap();
        let err = store
            .compact_traces_to_segments("traces", SegmentOptions::default(), true)
            .unwrap_err();
        assert!(err.to_string().contains("injected crash"));
        assert_eq!(store.count("traces", &Filter::all()), 30, "prune never ran");
        assert_eq!(store.count("segments", &Filter::all()), 0, "no manifest");
        assert!(store.segments().unwrap().is_empty(), "no live segment");
        drop(store);
        // A clean reopen still has every document and can compact.
        let (store, _) = DurableStore::open(&dir, options()).unwrap();
        assert_eq!(store.count("traces", &Filter::all()), 30);
        store
            .compact_traces_to_segments("traces", SegmentOptions::default(), true)
            .unwrap();
        assert_eq!(store.segments().unwrap().trace_rows(), 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_trace_collection_fails_compaction_cleanly() {
        use crate::segment::SegmentOptions;
        let dir = tmpdir("segbad");
        let (store, _) = DurableStore::open(&dir, options()).unwrap();
        store
            .insert("notes", json!({"i": 0, "v": {"free": "form"}}))
            .unwrap();
        assert!(store
            .compact_traces_to_segments("notes", SegmentOptions::default(), false)
            .is_err());
        assert_eq!(store.count("notes", &Filter::all()), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recompaction_seals_only_the_new_suffix() {
        use crate::segment::SegmentOptions;
        let dir = tmpdir("segincr");
        let traces = sample_traces(50);
        let (store, _) = DurableStore::open(&dir, options()).unwrap();
        store
            .insert_batch("traces", trace_docs(&traces[..40]))
            .unwrap();
        store
            .compact_traces_to_segments("traces", SegmentOptions::default(), false)
            .unwrap();
        // Re-finalizing with nothing new must not duplicate rows.
        assert!(store
            .compact_traces_to_segments("traces", SegmentOptions::default(), false)
            .unwrap()
            .is_empty());
        assert_eq!(store.segments().unwrap().trace_rows(), 40);
        // Ten more stream positions arrive; only they are sealed.
        let suffix: Vec<Json> = traces[40..]
            .iter()
            .enumerate()
            .map(|(i, t)| json!({"i": (i + 40), "v": (serde_json::to_value(t).unwrap())}))
            .collect();
        store.insert_batch("traces", suffix).unwrap();
        store
            .compact_traces_to_segments("traces", SegmentOptions::default(), false)
            .unwrap();
        let set = store.segments().unwrap();
        assert_eq!(set.trace_rows(), 50);
        assert_eq!(set.read_all().unwrap().into_batch().to_traces(), traces);
        assert_eq!(store.count("segments", &Filter::all()), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
