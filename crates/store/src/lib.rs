//! Trace storage for the RAD reproduction.
//!
//! The original RATracer logs every intercepted access "to a MongoDB
//! instance or a .csv file" (Fig. 3). This crate provides both halves
//! without external services:
//!
//! - [`DocumentStore`] — an embedded, thread-safe document store with
//!   collections, auto-assigned ids, and filtered queries, standing in
//!   for MongoDB.
//! - [`csv`] — a small CSV codec with round-trip encoders for trace
//!   objects and power samples.
//! - [`CommandDataset`] / [`PowerDataset`] — the curated dataset
//!   containers that the analyses in `rad-analysis` consume, mirroring
//!   the two halves of RAD described in §IV.
//!
//! # Examples
//!
//! ```
//! use rad_store::DocumentStore;
//! use serde_json::json;
//!
//! let store = DocumentStore::new();
//! store.insert("traces", json!({"command": "ARM", "device": "C9"}))?;
//! store.insert("traces", json!({"command": "Q", "device": "Tecan"}))?;
//! let hits = store.find("traces", &rad_store::Filter::eq("device", json!("C9")));
//! assert_eq!(hits.len(), 1);
//! # Ok::<(), rad_core::RadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod document;
pub mod durable;
pub mod export;
pub mod segment;
pub mod wal;

pub use dataset::{CommandDataset, PowerDataset, PowerRecording};
pub use document::{DocumentId, DocumentStore, Filter};
pub use durable::{DurableOptions, DurableSpec, DurableStore};
pub use export::{
    export_rad, export_rad_alerted, export_rad_from_segments, export_rad_from_segments_alerted,
    import_alerts, import_commands, LoadIssue, LoadReport,
};
pub use segment::{
    PowerScan, SegmentKind, SegmentOptions, SegmentReader, SegmentScan, SegmentSet, SegmentWriter,
    TraceQuery, ZoneMap,
};
pub use wal::{
    atomic_write_file, atomic_write_stream, CrashInjector, CrashPlan, CrashSite, CrashSpec,
    RecoveryReport, WalOptions,
};
