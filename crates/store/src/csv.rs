//! A small CSV codec and the RAD export formats.
//!
//! RATracer's fallback sink is a `.csv` file; RAD itself is published
//! as CSV tables. This module implements RFC-4180-style quoting and
//! the two export schemas: trace objects (command dataset) and power
//! samples (power dataset).

use std::io::Write;

use rad_core::{
    Alert, Command, CommandType, DeviceId, DeviceKind, Label, ProcedureKind, RadError, RunId,
    SimDuration, SimInstant, TraceBatch, TraceGap, TraceId, TraceMode, TraceObject, Value,
};
use rad_power::{PowerBlock, PowerSample};

/// Encodes one CSV field, quoting when needed.
fn encode_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Encodes one row.
pub fn encode_row<S: AsRef<str>>(fields: &[S]) -> String {
    fields
        .iter()
        .map(|f| encode_field(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Splits one CSV line into fields, honouring quotes.
///
/// # Errors
///
/// Returns [`RadError::Store`] on unterminated quotes.
pub fn decode_row(line: &str) -> Result<Vec<String>, RadError> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        current.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => current.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut current)),
                other => current.push(other),
            }
        }
    }
    if in_quotes {
        return Err(RadError::Store(format!(
            "unterminated quote in csv line: {line}"
        )));
    }
    fields.push(current);
    Ok(fields)
}

/// Column headers of the command-dataset export.
pub const TRACE_HEADERS: [&str; 11] = [
    "trace_id",
    "timestamp_us",
    "device",
    "command",
    "args",
    "mode",
    "return_value",
    "exception",
    "response_time_us",
    "procedure",
    "run_id",
];

/// Serializes trace objects to a CSV document (with header row).
pub fn traces_to_csv(traces: &[TraceObject]) -> String {
    let mut out = String::new();
    out.push_str(&encode_row(&TRACE_HEADERS));
    out.push('\n');
    for t in traces {
        let args = serde_json::to_string(t.command().args()).expect("values serialize");
        let ret = serde_json::to_string(t.return_value()).expect("values serialize");
        let row = [
            t.id().0.to_string(),
            t.timestamp().as_micros().to_string(),
            t.device().kind().to_string(),
            t.command_type().mnemonic().to_owned(),
            args,
            t.mode().to_string(),
            ret,
            t.exception().unwrap_or_default().to_owned(),
            t.response_time().as_micros().to_string(),
            t.procedure().paper_id().to_owned(),
            t.run_id().map(|r| r.0.to_string()).unwrap_or_default(),
        ];
        out.push_str(&encode_row(&row));
        out.push('\n');
    }
    out
}

/// Streams the header row of the command-dataset export into `out`.
/// Pair with [`write_traces_csv_rows`] to export batch-by-batch with
/// bounded memory.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_traces_csv_header<W: Write + ?Sized>(out: &mut W) -> std::io::Result<()> {
    out.write_all(encode_row(&TRACE_HEADERS).as_bytes())?;
    out.write_all(b"\n")
}

/// Streams one batch's data rows (no header) into `out`. Byte-for-byte
/// identical to the corresponding slice of [`traces_to_csv`], but reads
/// the columns directly — no `TraceObject` materialization.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_traces_csv_rows<W: Write + ?Sized>(
    out: &mut W,
    batch: &TraceBatch,
) -> std::io::Result<()> {
    for t in batch.iter() {
        let args = serde_json::to_string(t.args()).expect("values serialize");
        let ret = serde_json::to_string(t.return_value()).expect("values serialize");
        let row = [
            t.id().0.to_string(),
            t.timestamp().as_micros().to_string(),
            t.device().kind().to_string(),
            t.command_type().mnemonic().to_owned(),
            args,
            t.mode().to_string(),
            ret,
            t.exception().unwrap_or_default().to_owned(),
            t.response_time().as_micros().to_string(),
            t.procedure().paper_id().to_owned(),
            t.run_id().map(|r| r.0.to_string()).unwrap_or_default(),
        ];
        out.write_all(encode_row(&row).as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Streams a whole batch as a CSV document (header + rows) into `out`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_traces_csv<W: Write + ?Sized>(out: &mut W, batch: &TraceBatch) -> std::io::Result<()> {
    write_traces_csv_header(out)?;
    write_traces_csv_rows(out, batch)
}

/// Parses a command-dataset CSV document produced by [`traces_to_csv`].
///
/// Labels are not stored per-row in the export (they live in the run
/// metadata table), so parsed traces carry [`Label::Unknown`] unless a
/// run id maps them back.
///
/// # Errors
///
/// Returns [`RadError::Store`] on malformed rows and propagates parse
/// failures of devices, commands, and numbers.
pub fn traces_from_csv(text: &str) -> Result<Vec<TraceObject>, RadError> {
    let (traces, issues) = traces_from_csv_report(text)?;
    match issues.into_iter().next() {
        None => Ok(traces),
        Some((line, reason)) => Err(RadError::Store(format!("row {line}: {reason}"))),
    }
}

/// Damaged CSV rows skipped by a lenient parse: `(1-based line number,
/// reason)` pairs.
pub type RowIssues = Vec<(usize, String)>;

/// Lenient variant of [`traces_from_csv`]: damaged rows are skipped and
/// reported as [`RowIssues`] instead of failing the whole document. A
/// missing or wrong header is still fatal — that is a different file,
/// not a damaged one.
///
/// # Errors
///
/// Returns [`RadError::Store`] only when the header row is absent or
/// wrong.
pub fn traces_from_csv_report(text: &str) -> Result<(Vec<TraceObject>, RowIssues), RadError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| RadError::Store("empty csv".into()))?;
    let header_fields = decode_row(header)?;
    if header_fields != TRACE_HEADERS {
        return Err(RadError::Store(format!("unexpected csv header: {header}")));
    }
    let mut traces = Vec::new();
    let mut issues = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_trace_row(line) {
            Ok(trace) => traces.push(trace),
            Err(e) => issues.push((lineno + 2, e.to_string())),
        }
    }
    Ok((traces, issues))
}

/// Parses one data row of a trace CSV.
fn parse_trace_row(line: &str) -> Result<TraceObject, RadError> {
    let fields = decode_row(line)?;
    if fields.len() != TRACE_HEADERS.len() {
        return Err(RadError::Store(format!(
            "row has {} fields, expected {}",
            fields.len(),
            TRACE_HEADERS.len()
        )));
    }
    let parse_u64 = |s: &str, what: &str| -> Result<u64, RadError> {
        s.parse()
            .map_err(|_| RadError::Store(format!("bad {what}: {s}")))
    };
    let device: DeviceKind = fields[2].parse()?;
    let command_type: CommandType = fields[3].parse()?;
    let args: Vec<Value> = serde_json::from_str(&fields[4])
        .map_err(|e| RadError::Store(format!("bad args json: {e}")))?;
    let ret: Value = serde_json::from_str(&fields[6])
        .map_err(|e| RadError::Store(format!("bad return json: {e}")))?;
    let mode = parse_mode(&fields[5])?;
    let procedure: ProcedureKind = fields[9].parse()?;
    let mut builder = TraceObject::builder(
        TraceId(parse_u64(&fields[0], "trace id")?),
        SimInstant::from_micros(parse_u64(&fields[1], "timestamp")?),
        DeviceId::primary(device),
        Command::new(command_type, args),
    )
    .mode(mode)
    .return_value(ret)
    .response_time(SimDuration::from_micros(parse_u64(
        &fields[8],
        "response time",
    )?));
    if !fields[7].is_empty() {
        builder = builder.exception(fields[7].clone());
    }
    if !fields[10].is_empty() {
        let run_id = RunId(
            fields[10]
                .parse()
                .map_err(|_| RadError::Store(format!("bad run id: {}", fields[10])))?,
        );
        builder = builder.run(procedure, run_id, Label::Unknown);
    }
    Ok(builder.build())
}

/// Column headers of the trace-gap export.
pub const GAP_HEADERS: [&str; 6] = [
    "timestamp_us",
    "device",
    "command",
    "intended_mode",
    "reason",
    "run_id",
];

fn parse_mode(s: &str) -> Result<TraceMode, RadError> {
    match s {
        "DIRECT" => Ok(TraceMode::Direct),
        "REMOTE" => Ok(TraceMode::Remote),
        "CLOUD" => Ok(TraceMode::Cloud),
        other => Err(RadError::Store(format!("bad mode: {other}"))),
    }
}

/// Serializes trace gaps to a CSV document (with header row).
pub fn gaps_to_csv(gaps: &[TraceGap]) -> String {
    let mut out = String::new();
    out.push_str(&encode_row(&GAP_HEADERS));
    out.push('\n');
    for g in gaps {
        let row = [
            g.timestamp.as_micros().to_string(),
            g.device.kind().to_string(),
            g.command.mnemonic().to_owned(),
            g.intended_mode.to_string(),
            g.reason.to_string(),
            g.run_id.map(|r| r.0.to_string()).unwrap_or_default(),
        ];
        out.push_str(&encode_row(&row));
        out.push('\n');
    }
    out
}

/// Parses a trace-gap CSV document produced by [`gaps_to_csv`].
///
/// # Errors
///
/// Returns [`RadError::Store`] on malformed rows and propagates parse
/// failures of devices, commands, and numbers.
pub fn gaps_from_csv(text: &str) -> Result<Vec<TraceGap>, RadError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| RadError::Store("empty csv".into()))?;
    if decode_row(header)? != GAP_HEADERS {
        return Err(RadError::Store(format!("unexpected csv header: {header}")));
    }
    let mut gaps = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = decode_row(line)?;
        if fields.len() != GAP_HEADERS.len() {
            return Err(RadError::Store(format!(
                "row {} has {} fields, expected {}",
                lineno + 2,
                fields.len(),
                GAP_HEADERS.len()
            )));
        }
        let timestamp = fields[0]
            .parse()
            .map_err(|_| RadError::Store(format!("bad timestamp: {}", fields[0])))?;
        let device: DeviceKind = fields[1].parse()?;
        let command: CommandType = fields[2].parse()?;
        let mut gap = TraceGap::new(
            SimInstant::from_micros(timestamp),
            DeviceId::primary(device),
            command,
            parse_mode(&fields[3])?,
            fields[4].clone(),
        );
        if !fields[5].is_empty() {
            let run_id = fields[5]
                .parse()
                .map_err(|_| RadError::Store(format!("bad run id: {}", fields[5])))?;
            gap = gap.with_run(RunId(run_id));
        }
        gaps.push(gap);
    }
    Ok(gaps)
}

/// Column headers of the detection-alert export.
pub const ALERT_HEADERS: [&str; 7] = [
    "detector",
    "device",
    "run_id",
    "window_start_us",
    "window_end_us",
    "score",
    "threshold",
];

/// Serializes detection alerts to a CSV document (with header row).
///
/// Scores and thresholds use `f64`'s `Display`, which prints the
/// shortest digit string that parses back to the same bits — the
/// round-trip through [`alerts_from_csv`] is exact.
pub fn alerts_to_csv(alerts: &[Alert]) -> String {
    let mut out = String::new();
    out.push_str(&encode_row(&ALERT_HEADERS));
    out.push('\n');
    for a in alerts {
        let row = [
            a.detector.to_string(),
            a.device.to_string(),
            a.run_id.map(|r| r.0.to_string()).unwrap_or_default(),
            a.window_start.as_micros().to_string(),
            a.window_end.as_micros().to_string(),
            a.score.to_string(),
            a.threshold.to_string(),
        ];
        out.push_str(&encode_row(&row));
        out.push('\n');
    }
    out
}

/// Parses a detection-alert CSV document produced by [`alerts_to_csv`].
///
/// # Errors
///
/// Returns [`RadError::Store`] on a wrong header or malformed rows.
pub fn alerts_from_csv(text: &str) -> Result<Vec<Alert>, RadError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| RadError::Store("empty csv".into()))?;
    if decode_row(header)? != ALERT_HEADERS {
        return Err(RadError::Store(format!("unexpected csv header: {header}")));
    }
    let mut alerts = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = decode_row(line)?;
        if fields.len() != ALERT_HEADERS.len() {
            return Err(RadError::Store(format!(
                "row {} has {} fields, expected {}",
                lineno + 2,
                fields.len(),
                ALERT_HEADERS.len()
            )));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, RadError> {
            s.parse()
                .map_err(|_| RadError::Store(format!("bad {what}: {s}")))
        };
        let parse_f64 = |s: &str, what: &str| -> Result<f64, RadError> {
            s.parse()
                .map_err(|_| RadError::Store(format!("bad {what}: {s}")))
        };
        let device: DeviceKind = fields[1].parse()?;
        let run_id = if fields[2].is_empty() {
            None
        } else {
            Some(RunId(fields[2].parse().map_err(|_| {
                RadError::Store(format!("bad run id: {}", fields[2]))
            })?))
        };
        alerts.push(Alert {
            detector: fields[0].clone().into(),
            device,
            run_id,
            window_start: SimInstant::from_micros(parse_u64(&fields[3], "window start")?),
            window_end: SimInstant::from_micros(parse_u64(&fields[4], "window end")?),
            score: parse_f64(&fields[5], "score")?,
            threshold: parse_f64(&fields[6], "threshold")?,
        });
    }
    Ok(alerts)
}

/// Serializes power samples to a 122-column CSV document.
///
/// Row-oriented reference path (allocates one `to_row` vector plus one
/// formatted string per field); exports stream
/// [`write_power_csv`] instead, which is byte-identical.
pub fn power_to_csv(samples: &[PowerSample]) -> String {
    let mut out = String::new();
    out.push_str(&PowerSample::column_names().join(","));
    out.push('\n');
    for s in samples {
        let row: Vec<String> = s.to_row().iter().map(|v| format!("{v}")).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Streams a columnar power block to 122-column CSV, formatting each
/// lane value straight into `out` — no per-sample materialization and
/// no intermediate strings, so a multi-gigabyte recording exports in
/// bounded memory. Byte-for-byte identical to [`power_to_csv`] over
/// the same ticks (both use `f64`'s `Display` and bare-comma joins;
/// power column names never need quoting).
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_power_csv<W: Write + ?Sized>(out: &mut W, block: &PowerBlock) -> std::io::Result<()> {
    let mut header = PowerSample::column_names().join(",");
    header.push('\n');
    out.write_all(header.as_bytes())?;
    for i in 0..block.len() {
        for l in 0..PowerSample::FIELD_COUNT {
            if l > 0 {
                out.write_all(b",")?;
            }
            write!(out, "{}", block.lane(l)[i])?;
        }
        out.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::SimInstant;

    fn sample_trace(id: u64, ct: CommandType) -> TraceObject {
        TraceObject::builder(
            TraceId(id),
            SimInstant::from_micros(1_000 * id),
            DeviceId::primary(ct.device()),
            Command::new(ct, vec![Value::Int(3), Value::Str("a,b \"q\"".into())]),
        )
        .mode(TraceMode::Remote)
        .return_value(Value::Bool(true))
        .response_time(SimDuration::from_millis(6))
        .run(ProcedureKind::JoystickMovements, RunId(2), Label::Benign)
        .build()
    }

    #[test]
    fn field_quoting_round_trips() {
        let nasty = ["plain", "with,comma", "with\"quote", "with\nnewline", ""];
        let row = encode_row(&nasty);
        let back = decode_row(&row).unwrap();
        assert_eq!(back, nasty);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(decode_row("\"oops").is_err());
    }

    #[test]
    fn traces_round_trip_through_csv() {
        let traces = vec![
            sample_trace(0, CommandType::Arm),
            sample_trace(1, CommandType::TecanGetStatus),
        ];
        let csv = traces_to_csv(&traces);
        let back = traces_from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in traces.iter().zip(&back) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.timestamp(), b.timestamp());
            assert_eq!(a.command(), b.command());
            assert_eq!(a.mode(), b.mode());
            assert_eq!(a.return_value(), b.return_value());
            assert_eq!(a.response_time(), b.response_time());
            assert_eq!(a.procedure(), b.procedure());
            assert_eq!(a.run_id(), b.run_id());
        }
    }

    #[test]
    fn streaming_writer_matches_string_serializer() {
        let traces = vec![
            sample_trace(0, CommandType::Arm),
            sample_trace(1, CommandType::TecanGetStatus),
        ];
        let batch = TraceBatch::from_traces(&traces);
        let mut streamed = Vec::new();
        write_traces_csv(&mut streamed, &batch).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), traces_to_csv(&traces));
    }

    #[test]
    fn exceptions_survive_round_trip() {
        let t = TraceObject::builder(
            TraceId(9),
            SimInstant::EPOCH,
            DeviceId::primary(DeviceKind::Quantos),
            Command::nullary(CommandType::StartDosing),
        )
        .exception("collision with ur3e arm")
        .build();
        let back = traces_from_csv(&traces_to_csv(&[t])).unwrap();
        assert_eq!(back[0].exception(), Some("collision with ur3e arm"));
    }

    #[test]
    fn header_mismatch_is_rejected() {
        assert!(traces_from_csv("a,b,c\n1,2,3\n").is_err());
        assert!(traces_from_csv("").is_err());
    }

    #[test]
    fn truncated_row_is_rejected() {
        let csv = traces_to_csv(&[sample_trace(0, CommandType::Arm)]);
        let mut lines: Vec<&str> = csv.lines().collect();
        let short = lines[1].rsplit_once(',').unwrap().0.to_owned();
        lines[1] = &short;
        assert!(traces_from_csv(&lines.join("\n")).is_err());
    }

    #[test]
    fn gaps_round_trip_through_csv() {
        let gaps = vec![
            TraceGap::new(
                SimInstant::from_micros(5_000),
                DeviceId::primary(DeviceKind::C9),
                CommandType::Arm,
                TraceMode::Remote,
                "middlebox unavailable",
            )
            .with_run(RunId(4)),
            TraceGap::new(
                SimInstant::from_micros(6_000),
                DeviceId::primary(DeviceKind::Ika),
                CommandType::InitIka,
                TraceMode::Cloud,
                "rpc retries exhausted, reason \"deadline\"",
            ),
        ];
        let csv = gaps_to_csv(&gaps);
        let back = gaps_from_csv(&csv).unwrap();
        assert_eq!(back, gaps);
    }

    #[test]
    fn gap_header_mismatch_is_rejected() {
        assert!(gaps_from_csv("a,b\n").is_err());
        assert!(gaps_from_csv("").is_err());
    }

    #[test]
    fn alerts_round_trip_through_csv_exactly() {
        let alerts = vec![
            Alert {
                detector: "perplexity".into(),
                device: DeviceKind::C9,
                run_id: Some(RunId(17)),
                window_start: SimInstant::from_micros(1_000),
                window_end: SimInstant::from_micros(9_500),
                score: 123.456789012345e3,
                threshold: 0.1 + 0.2, // not representable exactly: Display round-trips the bits
            },
            Alert {
                detector: "power.rms".into(),
                device: DeviceKind::Ur3e,
                run_id: None,
                window_start: SimInstant::EPOCH,
                window_end: SimInstant::from_micros(42),
                score: f64::MIN_POSITIVE,
                threshold: 3.0,
            },
        ];
        let csv = alerts_to_csv(&alerts);
        let back = alerts_from_csv(&csv).unwrap();
        assert_eq!(back, alerts, "bit-exact round trip");
    }

    #[test]
    fn alert_header_mismatch_is_rejected() {
        assert!(alerts_from_csv("a,b\n").is_err());
        assert!(alerts_from_csv("").is_err());
    }

    #[test]
    fn power_csv_has_122_columns_per_row() {
        let s = PowerSample::quiescent(0.0, [0.0; 6]);
        let csv = power_to_csv(&[s]);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        let row = lines.next().unwrap();
        assert_eq!(header.split(',').count(), PowerSample::FIELD_COUNT);
        assert_eq!(row.split(',').count(), PowerSample::FIELD_COUNT);
    }

    #[test]
    fn streaming_power_csv_matches_row_serializer() {
        let mut s = PowerSample::quiescent(0.25, [0.1, -0.2, 0.3, -0.4, 0.5, -0.6]);
        s.current_actual = [1.5, -2.25, 0.125, 3.0, -0.0625, 17.375];
        s.qd_actual = [0.01, -0.02, 0.03, 0.0, -0.04, 0.05];
        let samples = vec![PowerSample::quiescent(0.0, [0.0; 6]), s];
        let block = rad_power::PowerBlock::from_samples(&samples);

        let mut streamed = Vec::new();
        write_power_csv(&mut streamed, &block).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), power_to_csv(&samples));
    }
}
