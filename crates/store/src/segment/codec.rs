//! The primitive codecs under the segment format: LEB128 varints,
//! zigzag deltas, a dictionary coder for device ids, and the tagged
//! binary [`Value`] codec.
//!
//! Everything here is a pure function over byte buffers so the
//! equivalence suite can property-test each codec in isolation:
//! encode → decode must round-trip for arbitrary inputs, and decode
//! must reject truncated or oversized input with an error rather than
//! panicking or reading out of bounds.

use rad_core::{DeviceId, Value};

use super::device_kind_index;

/// Maximum [`Value::List`] nesting the decoder will follow. Corrupt
/// bytes can claim arbitrarily deep lists; this bounds the recursion.
const MAX_VALUE_DEPTH: usize = 32;

/// A bounds-checked cursor over encoded bytes. Every read returns an
/// error instead of panicking when the input is short — the segment
/// reader turns those into [`rad_core::RadError::SegmentCorrupt`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Current position, in bytes.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Errors unless the input is fully consumed — decode must account
    /// for every byte, or trailing garbage would go unnoticed.
    pub fn expect_empty(&self) -> Result<(), String> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            ))
        }
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| format!("unexpected end of input at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    /// Four little-endian bytes.
    pub fn u32_le(&mut self) -> Result<u32, String> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }

    /// Eight little-endian bytes as an `f64`.
    pub fn f64_le(&mut self) -> Result<f64, String> {
        let raw = self.take(8)?;
        Ok(f64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    /// `len` raw bytes.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                format!(
                    "need {len} bytes at {}, only {} remain",
                    self.pos,
                    self.bytes.len() - self.pos
                )
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// One LEB128 varint (at most ten bytes for a `u64`).
    pub fn varint(&mut self) -> Result<u64, String> {
        let mut out = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let payload = u64::from(b & 0x7F);
            if shift == 63 && payload > 1 {
                return Err("varint overflows u64".to_owned());
            }
            out |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err("varint longer than ten bytes".to_owned())
    }

    /// One zigzag-encoded signed varint.
    pub fn zigzag(&mut self) -> Result<i64, String> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// One length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, String> {
        let len = self.varint()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| "invalid utf-8 in string".to_owned())
    }
}

/// Appends one LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends one zigzag-encoded signed varint.
pub fn write_zigzag(out: &mut Vec<u8>, v: i64) {
    write_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends one length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Delta-varint encodes a `u64` lane: the first value verbatim, then
/// zigzag wrapping deltas. Wrapping arithmetic keeps the codec
/// lossless for any values, while near-sorted lanes (timestamps, ids,
/// prefix sums) collapse to one or two bytes per row.
pub fn write_deltas(out: &mut Vec<u8>, values: &[u64]) {
    let Some((&first, rest)) = values.split_first() else {
        return;
    };
    write_varint(out, first);
    let mut prev = first;
    for &v in rest {
        write_zigzag(out, v.wrapping_sub(prev) as i64);
        prev = v;
    }
}

/// Decodes `count` delta-varint values. Inverse of [`write_deltas`].
///
/// # Errors
///
/// Returns a message when the input is truncated or malformed.
pub fn read_deltas(r: &mut ByteReader<'_>, count: usize) -> Result<Vec<u64>, String> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        r.expect_empty()?;
        return Ok(out);
    }
    let mut prev = r.varint()?;
    out.push(prev);
    for _ in 1..count {
        let delta = r.zigzag()?;
        prev = prev.wrapping_add(delta as u64);
        out.push(prev);
    }
    r.expect_empty()?;
    Ok(out)
}

/// Dictionary-codes a device lane: distinct [`DeviceId`]s in first-
/// appearance order, then one varint code per row. A single-device
/// partition costs one byte per row.
pub fn write_devices(out: &mut Vec<u8>, devices: &[DeviceId]) {
    let mut dict: Vec<DeviceId> = Vec::new();
    let codes: Vec<u64> = devices
        .iter()
        .map(|d| match dict.iter().position(|e| e == d) {
            Some(i) => i as u64,
            None => {
                dict.push(*d);
                (dict.len() - 1) as u64
            }
        })
        .collect();
    write_varint(out, dict.len() as u64);
    for d in &dict {
        out.push(device_kind_index(d.kind()));
        write_varint(out, u64::from(d.index()));
    }
    for code in codes {
        write_varint(out, code);
    }
}

/// Decodes `count` dictionary-coded device ids. Inverse of
/// [`write_devices`].
///
/// # Errors
///
/// Returns a message when the input is truncated, a dictionary entry
/// is invalid, or a row references a missing entry.
pub fn read_devices(r: &mut ByteReader<'_>, count: usize) -> Result<Vec<DeviceId>, String> {
    let dict_len = r.varint()? as usize;
    if dict_len > count.max(1) {
        return Err(format!("device dictionary of {dict_len} for {count} rows"));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let kind = super::device_kind_from_index(r.u8()?)?;
        let index = u16::try_from(r.varint()?).map_err(|_| "device index overflow")?;
        dict.push(DeviceId::new(kind, index));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let code = r.varint()? as usize;
        out.push(
            *dict
                .get(code)
                .ok_or_else(|| format!("device code {code} out of dictionary"))?,
        );
    }
    r.expect_empty()?;
    Ok(out)
}

/// Value tags of the binary [`Value`] codec.
mod tag {
    pub const UNIT: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const INT: u8 = 2;
    pub const FLOAT: u8 = 3;
    pub const STR: u8 = 4;
    pub const LIST: u8 = 5;
    pub const LOCATION: u8 = 6;
    pub const JOINTS: u8 = 7;
}

/// Appends one tagged binary [`Value`]. Floats serialize as raw IEEE
/// bits, so the round trip is exact (NaN payloads included).
pub fn write_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Unit => out.push(tag::UNIT),
        Value::Bool(b) => {
            out.push(tag::BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(tag::INT);
            write_zigzag(out, *i);
        }
        Value::Float(f) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(tag::STR);
            write_str(out, s);
        }
        Value::List(items) => {
            out.push(tag::LIST);
            write_varint(out, items.len() as u64);
            for item in items {
                write_value(out, item);
            }
        }
        Value::Location { x, y, z } => {
            out.push(tag::LOCATION);
            for v in [x, y, z] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Value::Joints(joints) => {
            out.push(tag::JOINTS);
            for v in joints {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// Decodes one tagged binary [`Value`]. Inverse of [`write_value`].
///
/// # Errors
///
/// Returns a message on an unknown tag, truncation, or lists nested
/// deeper than the decoder's recursion bound.
pub fn read_value(r: &mut ByteReader<'_>) -> Result<Value, String> {
    read_value_depth(r, 0)
}

fn read_value_depth(r: &mut ByteReader<'_>, depth: usize) -> Result<Value, String> {
    if depth > MAX_VALUE_DEPTH {
        return Err(format!("value nesting exceeds {MAX_VALUE_DEPTH}"));
    }
    match r.u8()? {
        tag::UNIT => Ok(Value::Unit),
        tag::BOOL => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(format!("invalid bool byte {other}")),
        },
        tag::INT => Ok(Value::Int(r.zigzag()?)),
        tag::FLOAT => Ok(Value::Float(r.f64_le()?)),
        tag::STR => Ok(Value::Str(r.str()?)),
        tag::LIST => {
            let len = r.varint()? as usize;
            if len > r.bytes.len() - r.pos {
                return Err(format!("implausible list length {len}"));
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(read_value_depth(r, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        tag::LOCATION => Ok(Value::Location {
            x: r.f64_le()?,
            y: r.f64_le()?,
            z: r.f64_le()?,
        }),
        tag::JOINTS => {
            let mut joints = [0.0f64; 6];
            for j in &mut joints {
                *j = r.f64_le()?;
            }
            Ok(Value::Joints(joints))
        }
        other => Err(format!("unknown value tag {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::DeviceKind;

    #[test]
    fn varint_round_trips_edges() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn zigzag_round_trips_signs() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -1234567, 1234567] {
            let mut buf = Vec::new();
            write_zigzag(&mut buf, v);
            assert_eq!(ByteReader::new(&buf).zigzag().unwrap(), v);
        }
    }

    #[test]
    fn deltas_compress_sorted_lanes() {
        let values: Vec<u64> = (0..1000).map(|i| 1_000_000 + i * 250).collect();
        let mut buf = Vec::new();
        write_deltas(&mut buf, &values);
        // First value costs a few bytes; every delta (250, zigzagged)
        // fits in two.
        assert!(buf.len() <= 4 + 2 * 999, "got {} bytes", buf.len());
        let back = read_deltas(&mut ByteReader::new(&buf), values.len()).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn deltas_survive_unsorted_and_extreme_values() {
        let values = vec![u64::MAX, 0, 1, u64::MAX / 2, 3];
        let mut buf = Vec::new();
        write_deltas(&mut buf, &values);
        let back = read_deltas(&mut ByteReader::new(&buf), values.len()).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut buf = Vec::new();
        write_deltas(&mut buf, &[5, 10, 15]);
        buf.pop();
        assert!(read_deltas(&mut ByteReader::new(&buf), 3).is_err());
        assert!(ByteReader::new(&[0x80; 11]).varint().is_err());
        assert!(read_value(&mut ByteReader::new(&[super::tag::STR, 200])).is_err());
    }

    #[test]
    fn device_dictionary_round_trips() {
        let devices = vec![
            DeviceId::primary(DeviceKind::C9),
            DeviceId::primary(DeviceKind::Tecan),
            DeviceId::primary(DeviceKind::C9),
            DeviceId::new(DeviceKind::Ur3e, 3),
            DeviceId::primary(DeviceKind::C9),
        ];
        let mut buf = Vec::new();
        write_devices(&mut buf, &devices);
        let back = read_devices(&mut ByteReader::new(&buf), devices.len()).unwrap();
        assert_eq!(back, devices);
    }

    #[test]
    fn single_device_partition_costs_one_byte_per_row() {
        let devices = vec![DeviceId::primary(DeviceKind::Ika); 100];
        let mut buf = Vec::new();
        write_devices(&mut buf, &devices);
        // 1 dict count + 2 entry bytes + 100 codes.
        assert_eq!(buf.len(), 103);
    }

    #[test]
    fn values_round_trip_every_variant() {
        let values = vec![
            Value::Unit,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::Str("solid=CSTI".into()),
            Value::Str(String::new()),
            Value::List(vec![Value::Int(1), Value::List(vec![Value::Unit])]),
            Value::Location {
                x: 1.5,
                y: -2.5,
                z: 0.25,
            },
            Value::Joints([0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
        ];
        for v in &values {
            let mut buf = Vec::new();
            write_value(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(&read_value(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn nan_floats_round_trip_bitwise() {
        let v = Value::Float(f64::NAN);
        let mut buf = Vec::new();
        write_value(&mut buf, &v);
        match read_value(&mut ByteReader::new(&buf)).unwrap() {
            Value::Float(f) => assert_eq!(f.to_bits(), f64::NAN.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn deep_list_nesting_is_bounded() {
        let mut buf = Vec::new();
        for _ in 0..40 {
            buf.push(super::tag::LIST);
            buf.push(1);
        }
        buf.push(super::tag::UNIT);
        assert!(read_value(&mut ByteReader::new(&buf)).is_err());
    }
}
