//! The curated RAD containers: command dataset and power dataset.
//!
//! §IV splits RAD into the *command dataset* (trace objects plus the
//! run-level supervision labels) and the *power dataset* (25 Hz
//! telemetry recordings). These containers are what the analyses
//! consume and what the campaign synthesizer produces.
//!
//! Since the data-plane refactor the command half is stored
//! columnarly: a [`TraceBatch`] backs the dataset, the analyses read
//! its dense columns, and [`TraceObject`] rows are materialized only
//! at the edges ([`CommandDataset::traces`]).

use std::collections::BTreeMap;

use rad_core::{
    CommandType, DeviceKind, Label, ProcedureKind, RunId, RunMetadata, TraceBatch, TraceGap,
    TraceObject, TraceSink,
};
use rad_power::{CurrentProfile, PowerBlock, PowerSink, RecordingMeta};
use serde_json::json;

use crate::document::DocumentStore;

use rad_core::RadError as Error;

/// The command half of RAD: trace objects plus run metadata, stored
/// columnarly.
///
/// # Examples
///
/// ```
/// use rad_store::CommandDataset;
///
/// let ds = CommandDataset::new();
/// assert!(ds.is_empty());
/// assert_eq!(ds.supervised_runs().len(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommandDataset {
    batch: TraceBatch,
    runs: Vec<RunMetadata>,
    gaps: Vec<TraceGap>,
}

impl CommandDataset {
    /// An empty dataset.
    pub fn new() -> Self {
        CommandDataset::default()
    }

    /// Builds a dataset from row-oriented parts.
    pub fn from_parts(traces: Vec<TraceObject>, runs: Vec<RunMetadata>) -> Self {
        CommandDataset {
            batch: TraceBatch::from(traces),
            runs,
            gaps: Vec::new(),
        }
    }

    /// Builds a dataset directly from a columnar batch — the native
    /// hand-off from the batched pipeline.
    pub fn from_batch(batch: TraceBatch, runs: Vec<RunMetadata>) -> Self {
        CommandDataset {
            batch,
            runs,
            gaps: Vec::new(),
        }
    }

    /// Attaches the trace gaps recorded during collection (commands
    /// that executed untraced because the middlebox was down).
    #[must_use]
    pub fn with_gaps(mut self, gaps: Vec<TraceGap>) -> Self {
        self.gaps = gaps;
        self
    }

    /// Appends a trace object.
    pub fn push_trace(&mut self, trace: TraceObject) {
        self.batch.push_owned(trace);
    }

    /// Appends a whole batch of traces.
    pub fn push_batch(&mut self, batch: &TraceBatch) {
        self.batch.append(batch);
    }

    /// Moves a whole batch of traces into the dataset.
    ///
    /// When the dataset is empty the batch's columns are adopted
    /// wholesale (no copy at all) — the common case for pipeline
    /// hand-offs, where each chunk lands in a fresh or just-drained
    /// dataset. Non-empty datasets fall back to the same lane-wise
    /// append as [`CommandDataset::push_batch`]; the ownership
    /// transfer still saves the caller's clone.
    pub fn insert_batch(&mut self, batch: TraceBatch) {
        if self.batch.is_empty() {
            self.batch = batch;
        } else {
            self.batch.append_owned(batch);
        }
    }

    /// Registers a procedure run's metadata.
    pub fn add_run(&mut self, run: RunMetadata) {
        self.runs.push(run);
    }

    /// Records a trace gap.
    pub fn push_gap(&mut self, gap: TraceGap) {
        self.gaps.push(gap);
    }

    /// The trace gaps, in record order. Delivered traces plus gaps
    /// account for every command issued — the no-silent-loss invariant
    /// the fault-injection conformance suite asserts.
    pub fn gaps(&self) -> &[TraceGap] {
        &self.gaps
    }

    /// All trace objects, materialized in capture order. This clones
    /// row payloads; iterate [`CommandDataset::batch`] instead on hot
    /// paths.
    pub fn traces(&self) -> Vec<TraceObject> {
        self.batch.to_traces()
    }

    /// The columnar backing store, in capture order.
    pub fn batch(&self) -> &TraceBatch {
        &self.batch
    }

    /// All registered run metadata.
    pub fn runs(&self) -> &[RunMetadata] {
        &self.runs
    }

    /// Number of trace objects.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// Whether the dataset has no traces.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Metadata of the supervised runs (label not `Unknown`), sorted by
    /// run id — the paper's 25-run set.
    pub fn supervised_runs(&self) -> Vec<&RunMetadata> {
        let mut runs: Vec<&RunMetadata> = self
            .runs
            .iter()
            .filter(|r| r.label() != Label::Unknown)
            .collect();
        runs.sort_by_key(|r| r.run_id());
        runs
    }

    /// Metadata for one run, if registered.
    pub fn run(&self, run_id: RunId) -> Option<&RunMetadata> {
        self.runs.iter().find(|r| r.run_id() == run_id)
    }

    /// Row indices of one run, in timestamp order (stable: capture
    /// order breaks ties, exactly as the row-oriented path did).
    fn run_rows(&self, run_id: RunId) -> Vec<usize> {
        let timestamps = self.batch.timestamps_us();
        let mut rows: Vec<usize> = self
            .batch
            .run_ids()
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Some(run_id))
            .map(|(i, _)| i)
            .collect();
        rows.sort_by_key(|&i| timestamps[i]);
        rows
    }

    /// The command-type sequence of one run, in timestamp order.
    pub fn run_sequence(&self, run_id: RunId) -> Vec<CommandType> {
        self.run_rows(run_id)
            .into_iter()
            .map(|i| self.batch.command_type(i))
            .collect()
    }

    /// `(metadata, command sequence)` for every supervised run, in run
    /// id order — the input of the TF-IDF and perplexity analyses.
    pub fn supervised_sequences(&self) -> Vec<(RunMetadata, Vec<CommandType>)> {
        self.supervised_runs()
            .into_iter()
            .cloned()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|meta| {
                let seq = self.run_sequence(meta.run_id());
                (meta, seq)
            })
            .collect()
    }

    /// Count of trace objects per command type (Fig. 5a).
    pub fn command_histogram(&self) -> BTreeMap<CommandType, u64> {
        let mut hist = BTreeMap::new();
        for &tok in self.batch.command_token_ids() {
            let ct = CommandType::from_token_id(tok as usize)
                .expect("token ids in a batch are valid by construction");
            *hist.entry(ct).or_insert(0) += 1;
        }
        hist
    }

    /// Count of trace objects per device (Fig. 5a legend).
    pub fn device_histogram(&self) -> BTreeMap<DeviceKind, u64> {
        let mut hist = BTreeMap::new();
        for d in self.batch.devices() {
            *hist.entry(d.kind()).or_insert(0) += 1;
        }
        hist
    }

    /// All trace objects of one procedure type, materialized in
    /// capture order.
    pub fn traces_for(&self, procedure: ProcedureKind) -> Vec<TraceObject> {
        self.batch
            .procedures()
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == procedure)
            .map(|(i, _)| self.batch.materialize(i))
            .collect()
    }

    /// The full dataset as one flat command-type stream in timestamp
    /// order — the corpus for the n-gram study of Fig. 5(b).
    pub fn corpus(&self) -> Vec<CommandType> {
        let timestamps = self.batch.timestamps_us();
        let mut rows: Vec<usize> = (0..self.batch.len()).collect();
        rows.sort_by_key(|&i| timestamps[i]);
        rows.into_iter()
            .map(|i| self.batch.command_type(i))
            .collect()
    }

    /// Exports the command dataset as CSV (see [`crate::csv`]).
    pub fn to_csv(&self) -> String {
        let mut out = Vec::new();
        crate::csv::write_traces_csv(&mut out, &self.batch).expect("writing to memory cannot fail");
        String::from_utf8(out).expect("csv output is utf-8")
    }

    /// Inserts every trace as a document into `store` under the
    /// `"traces"` collection and every run under `"runs"`, mirroring
    /// RATracer's MongoDB sink.
    ///
    /// # Errors
    ///
    /// Propagates [`rad_core::RadError::Store`] from the store.
    pub fn store_into(&self, store: &DocumentStore) -> Result<(), Error> {
        for t in self.batch.iter() {
            let doc = json!({
                "trace_id": t.id().0,
                "timestamp_us": t.timestamp().as_micros(),
                "device": t.device().kind().to_string(),
                "command": t.command_type().mnemonic(),
                "mode": t.mode().to_string(),
                "exception": t.exception(),
                "response_time_us": t.response_time().as_micros(),
                "procedure": t.procedure().paper_id(),
                "run_id": t.run_id().map(|r| r.0),
            });
            store.insert("traces", doc)?;
        }
        for r in &self.runs {
            let doc = json!({
                "run_id": r.run_id().0,
                "procedure": r.kind().paper_id(),
                "label": r.label().to_string(),
                "note": r.operator_note(),
            });
            store.insert("runs", doc)?;
        }
        for g in &self.gaps {
            let doc = json!({
                "timestamp_us": g.timestamp.as_micros(),
                "device": g.device.kind().to_string(),
                "command": g.command.mnemonic(),
                "intended_mode": g.intended_mode.to_string(),
                "reason": g.reason,
                "run_id": g.run_id.map(|r| r.0),
            });
            store.insert("gaps", doc)?;
        }
        Ok(())
    }

    /// Merges another dataset into this one.
    pub fn merge(&mut self, other: CommandDataset) {
        self.batch.append(&other.batch);
        self.runs.extend(other.runs);
        self.gaps.extend(other.gaps);
    }
}

/// A dataset is a sink: batches append to the columnar store, gaps
/// and run metadata to their side tables. This is what lets a
/// `tee(dataset, durable)` stack replace the bespoke dataset hand-off.
impl TraceSink for CommandDataset {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), Error> {
        self.batch.append(batch);
        Ok(())
    }

    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), Error> {
        self.gaps.push(gap.clone());
        Ok(())
    }

    fn accept_run(&mut self, run: &RunMetadata) -> Result<(), Error> {
        self.runs.push(run.clone());
        Ok(())
    }
}

/// One labelled telemetry recording in the power dataset.
#[derive(Debug, Clone)]
pub struct PowerRecording {
    /// Procedure that produced the recording (P2, P5, or P6 in RAD).
    pub procedure: ProcedureKind,
    /// Run identifier within the power dataset.
    pub run_id: RunId,
    /// Free-form description (e.g. `"velocity=200mm/s"`, `"solid=CSTI"`).
    pub description: String,
    /// The 25 Hz telemetry stream.
    pub profile: CurrentProfile,
}

/// The power half of RAD.
#[derive(Debug, Clone, Default)]
pub struct PowerDataset {
    recordings: Vec<PowerRecording>,
}

impl PowerDataset {
    /// An empty power dataset.
    pub fn new() -> Self {
        PowerDataset::default()
    }

    /// Adds a recording.
    pub fn push(&mut self, recording: PowerRecording) {
        self.recordings.push(recording);
    }

    /// All recordings.
    pub fn recordings(&self) -> &[PowerRecording] {
        &self.recordings
    }

    /// Recordings of one procedure type.
    pub fn for_procedure(&self, procedure: ProcedureKind) -> Vec<&PowerRecording> {
        self.recordings
            .iter()
            .filter(|r| r.procedure == procedure)
            .collect()
    }

    /// Total number of telemetry entries across recordings.
    pub fn total_entries(&self) -> usize {
        self.recordings.iter().map(|r| r.profile.len()).sum()
    }

    /// Applies the paper's storage policy: quiescent ticks are dropped
    /// unless `keep_quiescent` (days with activity keep them). Returns
    /// a new dataset.
    ///
    /// Filtering is row-wise over the columnar block — no sample
    /// materialization.
    pub fn compacted(&self, keep_quiescent: bool) -> PowerDataset {
        if keep_quiescent {
            return self.clone();
        }
        let recordings = self
            .recordings
            .iter()
            .map(|r| {
                let mut block = PowerBlock::new();
                for row in r.profile.block().iter() {
                    if !row.is_quiescent() {
                        block.push_row(&row);
                    }
                }
                PowerRecording {
                    procedure: r.procedure,
                    run_id: r.run_id,
                    description: r.description.clone(),
                    profile: CurrentProfile::from_block(block),
                }
            })
            .collect();
        PowerDataset { recordings }
    }
}

/// A power dataset is a [`PowerSink`]: each
/// [`PowerSink::begin_recording`] opens a new [`PowerRecording`] and
/// subsequent blocks append to it, so a monitor can stream chunked
/// telemetry straight into the dataset (optionally through
/// filter/chunk/tee combinators).
impl PowerSink for PowerDataset {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), Error> {
        let Some(open) = self.recordings.last_mut() else {
            return Err(Error::Store(
                "power block received before begin_recording".to_owned(),
            ));
        };
        open.profile.append_block(block);
        Ok(())
    }

    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), Error> {
        self.recordings.push(PowerRecording {
            procedure: meta.procedure,
            run_id: meta.run_id,
            description: meta.description.clone(),
            profile: CurrentProfile::default(),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{Command, DeviceId, Label, SimDuration, SimInstant, TraceId, TraceMode};
    use rad_power::{PowerSample, Ur3e};

    fn trace(
        id: u64,
        t_us: u64,
        ct: CommandType,
        run: Option<(ProcedureKind, RunId, Label)>,
    ) -> TraceObject {
        let mut b = TraceObject::builder(
            TraceId(id),
            SimInstant::from_micros(t_us),
            DeviceId::primary(ct.device()),
            Command::nullary(ct),
        )
        .mode(TraceMode::Remote)
        .response_time(SimDuration::from_millis(3));
        if let Some((p, r, l)) = run {
            b = b.run(p, r, l);
        }
        b.build()
    }

    fn labelled_dataset() -> CommandDataset {
        let mut ds = CommandDataset::new();
        let p4 = (ProcedureKind::JoystickMovements, RunId(0), Label::Benign);
        ds.add_run(
            RunMetadata::new(
                RunId(0),
                ProcedureKind::JoystickMovements,
                SimInstant::EPOCH,
            )
            .with_label(Label::Benign),
        );
        // Out-of-order insertion to exercise the timestamp sort.
        ds.push_trace(trace(1, 2_000, CommandType::Mvng, Some(p4)));
        ds.push_trace(trace(0, 1_000, CommandType::Arm, Some(p4)));
        ds.push_trace(trace(2, 3_000, CommandType::Arm, Some(p4)));
        ds.push_trace(trace(3, 4_000, CommandType::TecanGetStatus, None));
        ds
    }

    #[test]
    fn run_sequence_is_timestamp_ordered() {
        let ds = labelled_dataset();
        assert_eq!(
            ds.run_sequence(RunId(0)),
            vec![CommandType::Arm, CommandType::Mvng, CommandType::Arm]
        );
    }

    #[test]
    fn histograms_count_commands_and_devices() {
        let ds = labelled_dataset();
        let cmds = ds.command_histogram();
        assert_eq!(cmds[&CommandType::Arm], 2);
        assert_eq!(cmds[&CommandType::Mvng], 1);
        let devs = ds.device_histogram();
        assert_eq!(devs[&DeviceKind::C9], 3);
        assert_eq!(devs[&DeviceKind::Tecan], 1);
    }

    #[test]
    fn supervised_runs_exclude_unknown() {
        let mut ds = labelled_dataset();
        ds.add_run(RunMetadata::new(
            RunId(5),
            ProcedureKind::Unknown,
            SimInstant::EPOCH,
        ));
        let supervised = ds.supervised_runs();
        assert_eq!(supervised.len(), 1);
        assert_eq!(supervised[0].run_id(), RunId(0));
    }

    #[test]
    fn corpus_interleaves_all_traces_by_time() {
        let ds = labelled_dataset();
        assert_eq!(ds.corpus().len(), 4);
        assert_eq!(ds.corpus()[3], CommandType::TecanGetStatus);
    }

    #[test]
    fn store_into_creates_both_collections() {
        let ds = labelled_dataset();
        let store = DocumentStore::new();
        ds.store_into(&store).unwrap();
        assert_eq!(
            store.collection_names(),
            vec!["runs".to_owned(), "traces".to_owned()]
        );
        assert_eq!(
            store.count("traces", &crate::Filter::eq("device", json!("C9"))),
            3
        );
    }

    #[test]
    fn merge_concatenates() {
        let mut a = labelled_dataset();
        let b = labelled_dataset();
        let n = a.len();
        a.merge(b);
        assert_eq!(a.len(), 2 * n);
        assert_eq!(a.runs().len(), 2);
    }

    #[test]
    fn gaps_ride_along_through_merge_and_store() {
        let gap = TraceGap::new(
            SimInstant::from_micros(9),
            DeviceId::primary(DeviceKind::C9),
            CommandType::Arm,
            TraceMode::Remote,
            "middlebox unavailable",
        );
        let mut a = labelled_dataset().with_gaps(vec![gap.clone()]);
        let mut b = labelled_dataset();
        b.push_gap(gap);
        a.merge(b);
        assert_eq!(a.gaps().len(), 2);
        let store = DocumentStore::new();
        a.store_into(&store).unwrap();
        assert_eq!(store.count("gaps", &crate::Filter::all()), 2);
    }

    #[test]
    fn dataset_as_sink_accepts_batches_gaps_and_runs() {
        let src = labelled_dataset();
        let mut ds = CommandDataset::new();
        ds.accept(src.batch()).unwrap();
        for r in src.runs() {
            ds.accept_run(r).unwrap();
        }
        let gap = TraceGap::new(
            SimInstant::from_micros(9),
            DeviceId::primary(DeviceKind::C9),
            CommandType::Arm,
            TraceMode::Remote,
            "middlebox unavailable",
        );
        ds.accept_gap(&gap).unwrap();
        assert_eq!(ds.len(), src.len());
        assert_eq!(ds.runs(), src.runs());
        assert_eq!(ds.gaps().len(), 1);
        assert_eq!(ds.corpus(), src.corpus());
    }

    #[test]
    fn batch_backed_dataset_round_trips_rows() {
        let ds = labelled_dataset();
        let rows = ds.traces();
        let rebuilt = CommandDataset::from_parts(rows.clone(), ds.runs().to_vec());
        assert_eq!(rebuilt.traces(), rows);
        assert_eq!(rebuilt.to_csv(), ds.to_csv());
    }

    #[test]
    fn power_dataset_compaction_drops_quiescence() {
        let arm = Ur3e::new();
        let mut quiet = arm.quiescent_profile(Ur3e::named_pose(0), 50, 0);
        let seg =
            rad_power::TrajectorySegment::joint_move(Ur3e::named_pose(0), Ur3e::named_pose(1), 1.0);
        quiet.extend(&arm.current_profile(&[seg], 0.0, 1));
        let mut ds = PowerDataset::new();
        ds.push(PowerRecording {
            procedure: ProcedureKind::VelocitySweep,
            run_id: RunId(0),
            description: "test".into(),
            profile: quiet,
        });
        let total = ds.total_entries();
        let compact = ds.compacted(false);
        assert!(compact.total_entries() < total);
        assert!(compact.total_entries() > 0);
        assert_eq!(ds.compacted(true).total_entries(), total);
    }

    #[test]
    fn for_procedure_filters() {
        let mut ds = PowerDataset::new();
        ds.push(PowerRecording {
            procedure: ProcedureKind::VelocitySweep,
            run_id: RunId(0),
            description: "v=100".into(),
            profile: CurrentProfile::from_samples(vec![PowerSample::quiescent(0.0, [0.0; 6])]),
        });
        ds.push(PowerRecording {
            procedure: ProcedureKind::PayloadSweep,
            run_id: RunId(1),
            description: "w=500".into(),
            profile: CurrentProfile::from_samples(vec![]),
        });
        assert_eq!(ds.for_procedure(ProcedureKind::VelocitySweep).len(), 1);
        assert_eq!(ds.for_procedure(ProcedureKind::CrystalSolubility).len(), 0);
    }
}
