//! Append-only, segment-rotating write-ahead log with crash injection.
//!
//! The paper's deliverable is the dataset itself: RATracer logs every
//! intercepted command, and a record that is lost or silently corrupted
//! invalidates the ground truth downstream IDS analyses depend on. The
//! [`Wal`] is the durability primitive under [`DurableStore`](crate::DurableStore): every
//! mutation is framed, CRC-checked, and fsynced to an append-only
//! segment file *before* it is applied, so the store can always be
//! rebuilt from disk after a crash.
//!
//! # Frame format
//!
//! ```text
//! ┌──────────┬──────────┬──────────┬──────────────┐
//! │ len: u32 │ crc: u32 │ seq: u64 │ payload      │   (little endian)
//! │          │          │          │ (len bytes)  │
//! └──────────┴──────────┴──────────┴──────────────┘
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the seq bytes plus the payload, so a bit
//! flip anywhere in a frame body or its sequence number is detected.
//! Frames are packed back to back in segment files named
//! `wal-NNNNNN.log`; the log rotates to a fresh segment once the active
//! one passes [`WalOptions::segment_bytes`].
//!
//! # Recovery invariants
//!
//! [`Wal::open`] replays whatever is on disk and never aborts
//! wholesale:
//!
//! - A segment that ends mid-frame (the process died while appending)
//!   is **truncated** at the last complete frame; the valid prefix is
//!   kept. This is the torn-tail case and is only legal in the final
//!   segment — and, after a crash mid-rotation, the final segment may
//!   simply be empty.
//! - A segment with an invalid frame *before* the final segment (a bit
//!   flip at rest, scribbled bytes) is **quarantined**: the file is
//!   renamed `*.quarantined` and contributes no records, so one damaged
//!   segment can never smuggle a record that was not written.
//! - Recovered records are always a subset of the records appended, in
//!   the order they were appended. Recovery never invents, reorders, or
//!   repairs records.
//!
//! # Crash injection
//!
//! [`CrashPlan`] mirrors the middlebox's `FaultPlan`: every decision is
//! a pure function of `(seed, site, index)`, so a crash campaign is
//! byte-reproducible. A [`CrashInjector`] threads the plan through the
//! write path and simulates process death at five sites
//! ([`CrashSite`]): half a frame reaches disk (`MidRecord`), a full
//! frame reaches the page cache but not the platter (`PreFsync` —
//! simulated by truncating back to the last synced offset), rotation
//! leaves an empty tail segment (`MidRotation`), a checkpoint snapshot
//! is half-written (`MidCompaction`), or fully written but never
//! renamed into place (`MidRename`). After a site fires the component
//! is poisoned: like a dead process, it refuses further writes until
//! reopened.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rad_core::{spec, RadError};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Frame header size: len (4) + crc (4) + seq (8).
const HEADER_LEN: usize = 16;

/// Upper bound on a single record; anything larger in a length field is
/// treated as corruption rather than an allocation request.
const MAX_RECORD: u32 = 16 * 1024 * 1024;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven. Vendored shims provide no checksum
// crate, and sixteen lines beat a dependency.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the per-frame integrity check.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Crash plan
// ---------------------------------------------------------------------

/// A point in the write path where an injected crash can kill the
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashSite {
    /// Mid-append: only a prefix of the frame reaches the platter.
    MidRecord,
    /// After the frame is written but before fsync: the page cache is
    /// lost, simulated by truncating back to the last synced offset.
    PreFsync,
    /// Between finalizing one segment and writing the first frame of
    /// the next: an empty tail segment is left behind.
    MidRotation,
    /// While writing a checkpoint/snapshot temp file: the temp file is
    /// half-written and must be ignored on recovery.
    MidCompaction,
    /// After the temp file is complete but before the atomic rename:
    /// the real file never appears.
    MidRename,
}

impl CrashSite {
    /// Every site, in write-path order — the crash matrix iterates
    /// this.
    pub const ALL: [CrashSite; 5] = [
        CrashSite::MidRecord,
        CrashSite::PreFsync,
        CrashSite::MidRotation,
        CrashSite::MidCompaction,
        CrashSite::MidRename,
    ];

    fn salt(self) -> u64 {
        match self {
            CrashSite::MidRecord => 0x4d49_4452_4543_4f52, // "MIDRECOR"
            CrashSite::PreFsync => 0x5052_4546_5359_4e43,
            CrashSite::MidRotation => 0x4d49_4452_4f54_4154,
            CrashSite::MidCompaction => 0x4d49_4443_4f4d_5041,
            CrashSite::MidRename => 0x4d49_4452_454e_414d,
        }
    }

    fn index(self) -> usize {
        match self {
            CrashSite::MidRecord => 0,
            CrashSite::PreFsync => 1,
            CrashSite::MidRotation => 2,
            CrashSite::MidCompaction => 3,
            CrashSite::MidRename => 4,
        }
    }
}

impl fmt::Display for CrashSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CrashSite::MidRecord => "mid-record",
            CrashSite::PreFsync => "pre-fsync",
            CrashSite::MidRotation => "mid-rotation",
            CrashSite::MidCompaction => "mid-compaction",
            CrashSite::MidRename => "mid-rename",
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
enum CrashMode {
    /// Crash at exactly the `occurrence`-th visit of `site`.
    At { site: CrashSite, occurrence: u64 },
    /// Each visit of any site crashes with probability `prob`,
    /// decided purely from `(seed, site, index)`.
    Seeded { prob: f64 },
}

/// A seeded, deterministic crash schedule over the WAL write path.
///
/// Mirrors the middlebox's `FaultPlan`: every decision is a pure
/// function of `(seed, site, index)` where `index` counts visits to
/// that site, so the same plan kills the same write in every run and
/// under any thread interleaving.
///
/// # Examples
///
/// ```
/// use rad_store::wal::{CrashPlan, CrashSite};
///
/// let plan = CrashPlan::at(CrashSite::PreFsync, 3);
/// assert!(!plan.should_crash(CrashSite::PreFsync, 2));
/// assert!(plan.should_crash(CrashSite::PreFsync, 3));
/// assert!(!plan.should_crash(CrashSite::MidRecord, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPlan {
    seed: u64,
    mode: CrashMode,
}

impl CrashPlan {
    /// Crash at exactly the `occurrence`-th (0-based) visit of `site`.
    pub fn at(site: CrashSite, occurrence: u64) -> Self {
        CrashPlan {
            seed: 0,
            mode: CrashMode::At { site, occurrence },
        }
    }

    /// Crash each site visit with probability `prob`, derived from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn seeded(seed: u64, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "crash probability {prob} out of range"
        );
        CrashPlan {
            seed,
            mode: CrashMode::Seeded { prob },
        }
    }

    /// Whether the `index`-th visit of `site` crashes — a pure
    /// function, safe to call from any thread in any order.
    pub fn should_crash(&self, site: CrashSite, index: u64) -> bool {
        match &self.mode {
            CrashMode::At {
                site: at_site,
                occurrence,
            } => *at_site == site && *occurrence == index,
            CrashMode::Seeded { prob } => {
                let mixed = self
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(site.salt())
                    .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
                let mut rng = ChaCha8Rng::seed_from_u64(mixed);
                rng.gen_range(0.0..1.0) < *prob
            }
        }
    }
}

#[derive(Debug)]
struct InjectorInner {
    plan: CrashPlan,
    visits: [AtomicU64; 5],
    fired: Mutex<Option<(CrashSite, u64)>>,
}

/// Threads a [`CrashPlan`] through the write path, counting visits per
/// site and recording the site that fired. Cheap to clone (an `Arc`).
///
/// Once a site fires, no further site ever fires — a dead process does
/// not crash twice — but the component that hit the crash stays
/// poisoned until it is reopened.
#[derive(Debug, Clone)]
pub struct CrashInjector {
    inner: Arc<InjectorInner>,
}

impl CrashInjector {
    /// A fresh injector over `plan` with zeroed visit counters.
    pub fn new(plan: CrashPlan) -> Self {
        CrashInjector {
            inner: Arc::new(InjectorInner {
                plan,
                visits: Default::default(),
                fired: Mutex::new(None),
            }),
        }
    }

    /// Visits `site`: returns the injected-crash error when the plan
    /// says this visit dies, `None` otherwise.
    pub fn trip(&self, site: CrashSite) -> Option<RadError> {
        let n = self.inner.visits[site.index()].fetch_add(1, Ordering::Relaxed);
        let mut fired = self.inner.fired.lock();
        if fired.is_some() {
            return None;
        }
        if self.inner.plan.should_crash(site, n) {
            *fired = Some((site, n));
            Some(RadError::Store(format!(
                "injected crash at {site} (occurrence {n})"
            )))
        } else {
            None
        }
    }

    /// The site and occurrence that fired, if any.
    pub fn fired(&self) -> Option<(CrashSite, u64)> {
        *self.inner.fired.lock()
    }

    /// How many times `site` has been visited so far.
    pub fn visits(&self, site: CrashSite) -> u64 {
        self.inner.visits[site.index()].load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Recovery report
// ---------------------------------------------------------------------

/// A segment set aside during recovery because a non-tail frame failed
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSegment {
    /// Segment file name (now renamed `*.quarantined`).
    pub segment: String,
    /// Byte offset of the first invalid frame.
    pub offset: u64,
    /// Why the frame was rejected.
    pub reason: String,
    /// Complete frames seen before the damage (dropped with the
    /// segment; reported so the loss is quantified, never silent).
    pub frames_before_damage: usize,
}

/// What [`Wal::open`] (and [`DurableStore::open`]) found on disk.
///
/// [`DurableStore::open`]: crate::DurableStore::open
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Segment files scanned (quarantined ones included).
    pub segments_scanned: usize,
    /// Frames recovered across all healthy segments.
    pub records_recovered: usize,
    /// The torn tail, if the final segment ended mid-frame:
    /// `(segment name, byte offset the file was truncated to)`.
    pub torn_tail: Option<(String, u64)>,
    /// Segments renamed aside because of mid-file damage.
    pub quarantined: Vec<QuarantinedSegment>,
    /// Records replayed into the store (seq past the checkpoint).
    /// Filled by the durable layer; zero for a bare WAL open.
    pub records_replayed: usize,
    /// First sequence number *not* covered by the loaded checkpoint.
    pub checkpoint_next_seq: u64,
    /// Whether a damaged checkpoint file was set aside.
    pub checkpoint_quarantined: bool,
}

impl RecoveryReport {
    /// Whether recovery found a perfectly clean log.
    pub fn is_clean(&self) -> bool {
        self.torn_tail.is_none() && self.quarantined.is_empty() && !self.checkpoint_quarantined
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "segments={} recovered={} replayed={} torn={} quarantined={} checkpoint_seq={}",
            self.segments_scanned,
            self.records_recovered,
            self.records_replayed,
            self.torn_tail
                .as_ref()
                .map(|(s, o)| format!("{s}@{o}"))
                .unwrap_or_else(|| "none".into()),
            self.quarantined.len(),
            self.checkpoint_next_seq,
        )
    }
}

/// One recovered frame: its sequence number and payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number assigned at append time.
    pub seq: u64,
    /// The payload exactly as appended.
    pub payload: Vec<u8>,
}

// ---------------------------------------------------------------------
// The WAL proper
// ---------------------------------------------------------------------

/// Tuning knobs for the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one passes this size.
    pub segment_bytes: u64,
    /// Fsync after this many appends (1 = sync every record). Explicit
    /// [`Wal::sync`] calls flush earlier.
    pub sync_every: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 256 * 1024,
            sync_every: 64,
        }
    }
}

fn io_err(context: &str, e: std::io::Error) -> RadError {
    RadError::Store(format!("{context}: {e}"))
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:06}.log")
}

/// The append-only, segment-rotating write-ahead log.
///
/// Single-writer by design; [`DurableStore`] serializes access behind
/// a mutex. See the module docs for the frame format and the recovery
/// invariants.
///
/// [`DurableStore`]: crate::DurableStore
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    segment_index: u64,
    segment_len: u64,
    synced_len: u64,
    unsynced_appends: u64,
    next_seq: u64,
    options: WalOptions,
    injector: Option<CrashInjector>,
    poisoned: bool,
}

impl Wal {
    /// Opens (or creates) the log in `dir`, recovering every valid
    /// record on disk. Appends continue in a fresh segment after the
    /// highest existing one.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failures. Damaged
    /// frames are *not* errors: torn tails truncate, damaged segments
    /// quarantine, and both are described in the [`RecoveryReport`].
    pub fn open(
        dir: &Path,
        options: WalOptions,
        injector: Option<CrashInjector>,
    ) -> Result<(Wal, Vec<WalRecord>, RecoveryReport), RadError> {
        fs::create_dir_all(dir).map_err(|e| io_err("creating wal dir", e))?;
        let mut report = RecoveryReport::default();
        let mut records = Vec::new();

        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| io_err("listing wal dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing wal dir", e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(index) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                segments.push((index, entry.path()));
            }
        }
        segments.sort();

        for (i, (_, path)) in segments.iter().enumerate() {
            let is_last = i + 1 == segments.len();
            Self::recover_segment(path, is_last, &mut records, &mut report)?;
        }
        report.records_recovered = records.len();

        let next_seq = records.last().map_or(0, |r| r.seq + 1);
        let segment_index = segments.last().map_or(0, |(i, _)| *i) + 1;
        let path = dir.join(segment_name(segment_index));
        let file = File::create(&path).map_err(|e| io_err("creating wal segment", e))?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                file,
                segment_index,
                segment_len: 0,
                synced_len: 0,
                unsynced_appends: 0,
                next_seq,
                options,
                injector,
                poisoned: false,
            },
            records,
            report,
        ))
    }

    /// Scans one segment, appending its valid frames to `records`.
    fn recover_segment(
        path: &Path,
        is_last: bool,
        records: &mut Vec<WalRecord>,
        report: &mut RecoveryReport,
    ) -> Result<(), RadError> {
        report.segments_scanned += 1;
        let data = fs::read(path).map_err(|e| io_err("reading wal segment", e))?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut off = 0usize;
        let mut segment_records = Vec::new();
        let mut damage: Option<(u64, String)> = None;

        while off < data.len() {
            let remaining = data.len() - off;
            if remaining < HEADER_LEN {
                damage = Some((
                    off as u64,
                    format!("{remaining}-byte tail shorter than header"),
                ));
                break;
            }
            let len = u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"));
            let stored_crc =
                u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("4 bytes"));
            if len > MAX_RECORD {
                damage = Some((off as u64, format!("frame length {len} exceeds maximum")));
                break;
            }
            let end = off + HEADER_LEN + len as usize;
            if end > data.len() {
                damage = Some((
                    off as u64,
                    format!("frame of {len} bytes runs past end of segment"),
                ));
                break;
            }
            let crc = crc32(&data[off + 8..end]);
            if crc != stored_crc {
                damage = Some((
                    off as u64,
                    format!("crc mismatch: stored {stored_crc:#010x}, computed {crc:#010x}"),
                ));
                break;
            }
            let seq = u64::from_le_bytes(data[off + 8..off + 16].try_into().expect("8 bytes"));
            segment_records.push(WalRecord {
                seq,
                payload: data[off + HEADER_LEN..end].to_vec(),
            });
            off = end;
        }

        match damage {
            None => records.append(&mut segment_records),
            Some((offset, reason)) if is_last => {
                // Torn tail: keep the valid prefix, truncate the rest.
                let file = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err("opening segment for truncation", e))?;
                file.set_len(offset)
                    .map_err(|e| io_err("truncating torn tail", e))?;
                file.sync_data()
                    .map_err(|e| io_err("syncing truncated segment", e))?;
                report.torn_tail = Some((name, offset));
                let _ = reason; // torn tails are expected; the offset says it all
                records.append(&mut segment_records);
            }
            Some((offset, reason)) => {
                // Mid-log damage: set the whole segment aside. Frames
                // that preceded the damage are dropped with it — a
                // damaged segment contributes nothing, so recovery can
                // never replay a record that was not written.
                let mut quarantine = path.to_path_buf();
                quarantine.set_file_name(format!("{name}.quarantined"));
                fs::rename(path, &quarantine).map_err(|e| io_err("quarantining segment", e))?;
                report.quarantined.push(QuarantinedSegment {
                    segment: name,
                    offset,
                    reason,
                    frames_before_damage: segment_records.len(),
                });
            }
        }
        Ok(())
    }

    /// Appends one record, returning its sequence number. The record
    /// is durable once the batched fsync covers it (every
    /// [`WalOptions::sync_every`] appends, or on [`Wal::sync`]).
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failures, on injected
    /// crashes, and on every call after a crash (the log is poisoned
    /// until reopened).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, RadError> {
        if self.poisoned {
            return Err(RadError::Store(
                "wal is poisoned by an earlier crash; reopen to recover".into(),
            ));
        }
        if payload.len() as u32 > MAX_RECORD {
            return Err(RadError::Store(format!(
                "record of {} bytes exceeds the {MAX_RECORD}-byte maximum",
                payload.len()
            )));
        }
        if self.segment_len >= self.options.segment_bytes {
            self.rotate()?;
        }

        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut body = Vec::with_capacity(8 + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);

        if let Some(err) = self.trip(CrashSite::MidRecord) {
            // Half the frame reaches the platter: the canonical torn
            // write. Sync it so recovery really sees the partial frame.
            let half = frame.len() / 2;
            let _ = self.file.write_all(&frame[..half]);
            let _ = self.file.sync_data();
            self.poisoned = true;
            return Err(err);
        }

        self.file
            .write_all(&frame)
            .map_err(|e| io_err("appending wal frame", e))?;
        self.segment_len += frame.len() as u64;
        self.unsynced_appends += 1;
        self.next_seq += 1;

        if let Some(err) = self.trip(CrashSite::PreFsync) {
            // The frame made it to the page cache but never to disk:
            // simulate the power cut by discarding everything unsynced.
            let _ = self.file.set_len(self.synced_len);
            let _ = self.file.sync_data();
            self.poisoned = true;
            return Err(err);
        }

        if self.unsynced_appends >= self.options.sync_every {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Flushes every buffered append to the platter.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on fsync failure or a poisoned log.
    pub fn sync(&mut self) -> Result<(), RadError> {
        if self.poisoned {
            return Err(RadError::Store(
                "wal is poisoned by an earlier crash; reopen to recover".into(),
            ));
        }
        if self.synced_len == self.segment_len && self.unsynced_appends == 0 {
            return Ok(());
        }
        self.file
            .sync_data()
            .map_err(|e| io_err("syncing wal segment", e))?;
        self.synced_len = self.segment_len;
        self.unsynced_appends = 0;
        Ok(())
    }

    /// Finalizes the active segment and starts a new one.
    fn rotate(&mut self) -> Result<(), RadError> {
        self.sync()?;
        self.segment_index += 1;
        let path = self.dir.join(segment_name(self.segment_index));
        let file = File::create(&path).map_err(|e| io_err("creating wal segment", e))?;
        self.file = file;
        self.segment_len = 0;
        self.synced_len = 0;
        self.unsynced_appends = 0;
        if let Some(err) = self.trip(CrashSite::MidRotation) {
            // The new segment exists but is empty; the old one is fully
            // synced. Recovery must treat the empty tail as healthy.
            self.poisoned = true;
            return Err(err);
        }
        Ok(())
    }

    /// Starts a fresh segment and deletes every older one — called
    /// after a checkpoint has made them redundant. A crash between the
    /// rename of the checkpoint and this cleanup only leaves stale
    /// segments behind; replay filters them out by sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failures or injected
    /// crashes.
    pub fn reset_after_checkpoint(&mut self) -> Result<(), RadError> {
        let retire_below = self.segment_index + 1;
        self.rotate()?;
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("listing wal dir", e))?;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(index) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                if index < retire_below {
                    fs::remove_file(entry.path()).map_err(|e| io_err("retiring wal segment", e))?;
                }
            }
        }
        Ok(())
    }

    fn trip(&self, site: CrashSite) -> Option<RadError> {
        self.injector.as_ref().and_then(|i| i.trip(site))
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Raises the next sequence number to at least `min`. The durable
    /// layer calls this after loading a checkpoint: the records the
    /// checkpoint absorbed are no longer on disk to be counted, but new
    /// appends must still sort after them.
    pub fn ensure_next_seq(&mut self, min: u64) {
        self.next_seq = self.next_seq.max(min);
    }

    /// The directory holding the segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the active segment file.
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Whether an injected crash has poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // A clean shutdown flushes; a crashed one must not resurrect
        // writes the "dead" process never synced.
        if !self.poisoned {
            let _ = self.file.sync_data();
        }
    }
}

// ---------------------------------------------------------------------
// Atomic file replacement
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: a temp file in the same
/// directory is written, fsynced, and renamed into place, so a crash at
/// any point leaves either the old file or the new one — never a
/// truncated hybrid. The injector's [`CrashSite::MidCompaction`] /
/// [`CrashSite::MidRename`] sites cover the two windows.
///
/// # Errors
///
/// Returns [`RadError::Store`] on filesystem failures or injected
/// crashes.
pub fn atomic_write_file(
    path: &Path,
    bytes: &[u8],
    injector: Option<&CrashInjector>,
) -> Result<(), RadError> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or_else(|| RadError::Store(format!("atomic write needs a file name: {path:?}")))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));

    if let Some(err) = injector.and_then(|i| i.trip(CrashSite::MidCompaction)) {
        // Half the snapshot reaches the temp file; the real path is
        // untouched. Recovery must ignore `*.tmp`.
        let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
        return Err(err);
    }

    let mut file = File::create(&tmp).map_err(|e| io_err("creating temp file", e))?;
    file.write_all(bytes)
        .map_err(|e| io_err("writing temp file", e))?;
    file.sync_data()
        .map_err(|e| io_err("syncing temp file", e))?;
    drop(file);

    if let Some(err) = injector.and_then(|i| i.trip(CrashSite::MidRename)) {
        // Temp file complete, rename never happened: the real path is
        // still the old version (or absent).
        return Err(err);
    }

    fs::rename(&tmp, path).map_err(|e| io_err("renaming temp file into place", e))
}

/// Streaming variant of [`atomic_write_file`]: the caller writes into
/// a buffered temp-file writer instead of materializing the whole
/// payload in memory first. Same crash discipline — fsync then rename,
/// with the same two injection windows — so a batched CSV export can
/// stream gigabytes through a fixed-size buffer and still land
/// atomically.
///
/// # Errors
///
/// Returns [`RadError::Store`] on filesystem failures, injected
/// crashes, or errors surfaced by the `write` callback.
pub fn atomic_write_stream<F>(
    path: &Path,
    injector: Option<&CrashInjector>,
    write: F,
) -> Result<(), RadError>
where
    F: FnOnce(&mut dyn Write) -> std::io::Result<()>,
{
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or_else(|| RadError::Store(format!("atomic write needs a file name: {path:?}")))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));

    if let Some(err) = injector.and_then(|i| i.trip(CrashSite::MidCompaction)) {
        // A torn temp file; the real path is untouched. Recovery must
        // ignore `*.tmp`.
        let _ = fs::write(&tmp, b"");
        return Err(err);
    }

    let file = File::create(&tmp).map_err(|e| io_err("creating temp file", e))?;
    let mut buffered = std::io::BufWriter::new(file);
    write(&mut buffered).map_err(|e| io_err("streaming temp file", e))?;
    let file = buffered
        .into_inner()
        .map_err(|e| io_err("flushing temp file", e.into_error()))?;
    file.sync_data()
        .map_err(|e| io_err("syncing temp file", e))?;
    drop(file);

    if let Some(err) = injector.and_then(|i| i.trip(CrashSite::MidRename)) {
        return Err(err);
    }

    fs::rename(&tmp, path).map_err(|e| io_err("renaming temp file into place", e))
}

impl CrashSite {
    /// Parses the kebab-case site name used by scenario documents —
    /// the same strings [`CrashSite`]'s `Display` prints.
    pub fn from_name(name: &str) -> Option<CrashSite> {
        CrashSite::ALL.into_iter().find(|s| s.to_string() == name)
    }
}

/// The declarative form of a [`CrashPlan`] — the `crash` section of a
/// scenario document. Exactly one of the two modes is present:
///
/// ```json
/// {"at": {"site": "pre-fsync", "occurrence": 3}}
/// ```
///
/// or
///
/// ```json
/// {"seeded": {"seed": 7, "prob": 0.01}}
/// ```
///
/// Site names are the kebab-case strings [`CrashSite`] displays:
/// `mid-record`, `pre-fsync`, `mid-rotation`, `mid-compaction`,
/// `mid-rename`.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashSpec {
    plan: CrashPlan,
}

impl CrashSpec {
    /// Captures an existing hand-wired plan as a spec.
    pub fn from_plan(plan: &CrashPlan) -> Self {
        CrashSpec { plan: plan.clone() }
    }

    /// Builds the [`CrashPlan`] this spec describes.
    pub fn to_plan(&self) -> CrashPlan {
        self.plan.clone()
    }

    /// Parses the `crash` section of a scenario document. `ctx` is the
    /// dotted path of `value` for error messages.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on unknown fields, an unknown site name, a
    /// probability outside `[0, 1]`, or when the document names both
    /// modes (or neither).
    pub fn from_json(value: &serde_json::Value, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, &["at", "seeded"])?;
        let at = map.get("at").filter(|v| !v.is_null());
        let seeded = map.get("seeded").filter(|v| !v.is_null());
        match (at, seeded) {
            (Some(_), Some(_)) => Err(RadError::spec(
                ctx,
                "`at` and `seeded` are mutually exclusive",
            )),
            (None, None) => Err(RadError::spec(ctx, "one of `at` or `seeded` is required")),
            (Some(at), None) => {
                let actx = spec::path(ctx, "at");
                let amap = spec::obj(at, &actx)?;
                spec::known_fields(amap, &actx, &["site", "occurrence"])?;
                let name = spec::req_str(amap, &actx, "site")?;
                let site = CrashSite::from_name(name).ok_or_else(|| {
                    RadError::spec(
                        spec::path(&actx, "site"),
                        format!(
                            "unknown crash site `{name}` (accepted: {})",
                            CrashSite::ALL.map(|s| s.to_string()).join(", ")
                        ),
                    )
                })?;
                let occurrence = spec::req_u64(amap, &actx, "occurrence")?;
                Ok(CrashSpec {
                    plan: CrashPlan::at(site, occurrence),
                })
            }
            (None, Some(seeded)) => {
                let sctx = spec::path(ctx, "seeded");
                let smap = spec::obj(seeded, &sctx)?;
                spec::known_fields(smap, &sctx, &["seed", "prob"])?;
                let seed = spec::req_u64(smap, &sctx, "seed")?;
                let prob = spec::req_f64(smap, &sctx, "prob")?;
                if !(0.0..=1.0).contains(&prob) {
                    return Err(RadError::spec(
                        spec::path(&sctx, "prob"),
                        format!("probability {prob} outside [0, 1]"),
                    ));
                }
                Ok(CrashSpec {
                    plan: CrashPlan::seeded(seed, prob),
                })
            }
        }
    }

    /// Serializes the spec back to its JSON form.
    pub fn to_json(&self) -> serde_json::Value {
        let mut inner = serde_json::Map::new();
        let mut outer = serde_json::Map::new();
        match &self.plan.mode {
            CrashMode::At { site, occurrence } => {
                inner.insert("site".into(), serde_json::Value::from(site.to_string()));
                inner.insert("occurrence".into(), serde_json::Value::from(*occurrence));
                outer.insert("at".into(), serde_json::Value::Object(inner));
            }
            CrashMode::Seeded { prob } => {
                inner.insert("seed".into(), serde_json::Value::from(self.plan.seed));
                inner.insert("prob".into(), serde_json::Value::from(*prob));
                outer.insert("seeded".into(), serde_json::Value::Object(inner));
            }
        }
        serde_json::Value::Object(outer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rad-wal-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("record-{i}-{}", "x".repeat(i % 40)).into_bytes())
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE reference value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let dir = tmpdir("roundtrip");
        let written = payloads(50);
        {
            let (mut wal, recovered, report) =
                Wal::open(&dir, WalOptions::default(), None).unwrap();
            assert!(recovered.is_empty() && report.is_clean());
            for p in &written {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        let (wal, recovered, report) = Wal::open(&dir, WalOptions::default(), None).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(recovered.len(), written.len());
        for (i, r) in recovered.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.payload, written[i]);
        }
        assert_eq!(wal.next_seq(), written.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_records_across_segments() {
        let dir = tmpdir("rotate");
        let options = WalOptions {
            segment_bytes: 256,
            sync_every: 4,
        };
        {
            let (mut wal, _, _) = Wal::open(&dir, options.clone(), None).unwrap();
            for p in payloads(40) {
                wal.append(&p).unwrap();
            }
        }
        let segments = fs::read_dir(&dir).unwrap().count();
        assert!(segments > 2, "expected several segments, got {segments}");
        let (_, recovered, report) = Wal::open(&dir, options, None).unwrap();
        assert_eq!(recovered.len(), 40);
        assert!(report.is_clean());
        assert!(report.segments_scanned > 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        {
            let (mut wal, _, _) = Wal::open(&dir, WalOptions::default(), None).unwrap();
            for p in payloads(10) {
                wal.append(&p).unwrap();
            }
            wal.sync().unwrap();
        }
        // Chop bytes off the newest segment: a torn final frame.
        let seg = newest_segment(&dir);
        let len = fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let (_, recovered, report) = Wal::open(&dir, WalOptions::default(), None).unwrap();
        assert_eq!(recovered.len(), 9, "one torn record is dropped");
        let (_, offset) = report.torn_tail.clone().expect("tail reported");
        assert!(offset < len - 5);
        // The segment was physically truncated to the valid prefix.
        assert_eq!(fs::metadata(&seg).unwrap().len(), offset);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_middle_segment_quarantines_it() {
        let dir = tmpdir("flip");
        let options = WalOptions {
            segment_bytes: 128,
            sync_every: 1,
        };
        {
            let (mut wal, _, _) = Wal::open(&dir, options.clone(), None).unwrap();
            for p in payloads(30) {
                wal.append(&p).unwrap();
            }
        }
        // Flip one payload bit in the oldest segment.
        let seg = oldest_segment(&dir);
        let mut data = fs::read(&seg).unwrap();
        let target = HEADER_LEN + 2; // inside the first payload
        data[target] ^= 0x10;
        fs::write(&seg, &data).unwrap();

        let written: Vec<Vec<u8>> = payloads(30);
        let (_, recovered, report) = Wal::open(&dir, options, None).unwrap();
        assert_eq!(report.quarantined.len(), 1, "{report}");
        assert!(report.quarantined[0].reason.contains("crc mismatch"));
        assert!(seg
            .with_file_name(format!(
                "{}.quarantined",
                seg.file_name().unwrap().to_string_lossy()
            ))
            .exists());
        // Nothing recovered was ever not written.
        for r in &recovered {
            assert!(written.contains(&r.payload));
        }
        assert!(recovered.len() < 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_record_crash_leaves_recoverable_prefix() {
        let dir = tmpdir("midrecord");
        let injector = CrashInjector::new(CrashPlan::at(CrashSite::MidRecord, 5));
        let (mut wal, _, _) =
            Wal::open(&dir, WalOptions::default(), Some(injector.clone())).unwrap();
        let mut appended = 0;
        for p in payloads(10) {
            match wal.append(&p) {
                Ok(_) => appended += 1,
                Err(e) => {
                    assert!(e.to_string().contains("injected crash"), "{e}");
                    break;
                }
            }
        }
        assert_eq!(appended, 5);
        assert_eq!(injector.fired(), Some((CrashSite::MidRecord, 5)));
        assert!(wal.is_poisoned());
        assert!(wal.append(b"after death").is_err(), "poisoned stays dead");
        drop(wal);

        let (_, recovered, report) = Wal::open(&dir, WalOptions::default(), None).unwrap();
        assert_eq!(recovered.len(), 5, "the synced prefix survives");
        assert!(report.torn_tail.is_some(), "the half frame is torn away");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_fsync_crash_loses_only_unsynced_records() {
        let dir = tmpdir("prefsync");
        let options = WalOptions {
            segment_bytes: 1 << 20,
            sync_every: 4,
        };
        let injector = CrashInjector::new(CrashPlan::at(CrashSite::PreFsync, 9));
        let (mut wal, _, _) = Wal::open(&dir, options.clone(), Some(injector)).unwrap();
        let mut last_err = None;
        for p in payloads(20) {
            if let Err(e) = wal.append(&p) {
                last_err = Some(e);
                break;
            }
        }
        assert!(last_err.unwrap().to_string().contains("injected crash"));
        drop(wal);
        let (_, recovered, report) = Wal::open(&dir, options, None).unwrap();
        // Appends 0..8 were synced in two batches of four; 8 and 9 were
        // in the page cache when the power died.
        assert_eq!(recovered.len(), 8);
        assert!(report.torn_tail.is_none(), "truncation left a clean file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_rotation_crash_leaves_empty_tail_segment() {
        let dir = tmpdir("midrotate");
        let options = WalOptions {
            segment_bytes: 128,
            sync_every: 1,
        };
        let injector = CrashInjector::new(CrashPlan::at(CrashSite::MidRotation, 1));
        let (mut wal, _, _) = Wal::open(&dir, options.clone(), Some(injector)).unwrap();
        let mut appended = 0;
        for p in payloads(60) {
            match wal.append(&p) {
                Ok(_) => appended += 1,
                Err(_) => break,
            }
        }
        assert!(appended > 0);
        drop(wal);
        let (_, recovered, report) = Wal::open(&dir, options, None).unwrap();
        assert_eq!(recovered.len(), appended, "everything synced survives");
        assert!(
            report.is_clean(),
            "an empty tail segment is healthy: {report}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_after_checkpoint_retires_old_segments() {
        let dir = tmpdir("reset");
        let options = WalOptions {
            segment_bytes: 128,
            sync_every: 1,
        };
        let (mut wal, _, _) = Wal::open(&dir, options.clone(), None).unwrap();
        for p in payloads(30) {
            wal.append(&p).unwrap();
        }
        wal.reset_after_checkpoint().unwrap();
        let seq_after = wal.next_seq();
        wal.append(b"post-checkpoint").unwrap();
        drop(wal);
        let (_, recovered, _) = Wal::open(&dir, options, None).unwrap();
        assert_eq!(recovered.len(), 1, "only post-checkpoint records remain");
        assert_eq!(recovered[0].seq, seq_after);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_survives_both_crash_windows() {
        let dir = tmpdir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.json");
        fs::write(&path, b"old contents").unwrap();

        let injector = CrashInjector::new(CrashPlan::at(CrashSite::MidCompaction, 0));
        assert!(atomic_write_file(&path, b"new contents", Some(&injector)).is_err());
        assert_eq!(fs::read(&path).unwrap(), b"old contents");

        let injector = CrashInjector::new(CrashPlan::at(CrashSite::MidRename, 0));
        assert!(atomic_write_file(&path, b"new contents", Some(&injector)).is_err());
        assert_eq!(fs::read(&path).unwrap(), b"old contents");

        atomic_write_file(&path, b"new contents", None).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new contents");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_crash_plans_are_deterministic() {
        let a = CrashPlan::seeded(7, 0.2);
        let b = CrashPlan::seeded(7, 0.2);
        let c = CrashPlan::seeded(8, 0.2);
        let schedule = |p: &CrashPlan| -> Vec<bool> {
            (0..200)
                .map(|i| p.should_crash(CrashSite::MidRecord, i))
                .collect()
        };
        assert_eq!(schedule(&a), schedule(&b));
        assert_ne!(schedule(&a), schedule(&c));
        let fires = schedule(&a).iter().filter(|f| **f).count();
        assert!((10..80).contains(&fires), "fires = {fires}");
    }

    fn newest_segment(dir: &Path) -> PathBuf {
        segment_paths(dir).into_iter().next_back().unwrap()
    }

    fn oldest_segment(dir: &Path) -> PathBuf {
        segment_paths(dir).into_iter().next().unwrap()
    }

    fn segment_paths(dir: &Path) -> Vec<PathBuf> {
        let mut paths: Vec<PathBuf> = fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == "log")
                    && fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false)
            })
            .collect();
        paths.sort();
        paths
    }
}
