//! Property tests on WAL framing and recovery.
//!
//! Three invariants, each under randomized batches and damage:
//!
//! 1. an undamaged log round-trips every record across rotations;
//! 2. a prefix-truncated final segment recovers an exact prefix;
//! 3. a single flipped bit anywhere never panics recovery and never
//!    yields a record that was not written.
//!
//! Case counts honour `PROPTEST_CASES` (the CI crash-recovery job
//! raises it to 512).

use proptest::prelude::*;
use rad_store::wal::{Wal, WalOptions, WalRecord};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("rad-wal-props-{tag}-{}-{case}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(segment_bytes: u64) -> WalOptions {
    WalOptions {
        segment_bytes,
        sync_every: 1,
    }
}

/// Appends `payloads` into a fresh WAL at `dir` and closes it cleanly.
fn write_batch(dir: &Path, payloads: &[Vec<u8>], segment_bytes: u64) {
    let (mut wal, existing, report) = Wal::open(dir, opts(segment_bytes), None).unwrap();
    assert!(existing.is_empty());
    assert!(report.is_clean());
    for (i, payload) in payloads.iter().enumerate() {
        assert_eq!(wal.append(payload).unwrap(), i as u64);
    }
    wal.sync().unwrap();
}

/// All `wal-*.log` segments under `dir`, in index order.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    found.sort();
    found
}

/// Every recovered record must be byte-identical to the written record
/// with the same sequence number — damage may *lose* records, never
/// invent or alter them.
fn assert_no_invented_records(recovered: &[WalRecord], written: &[Vec<u8>]) {
    for rec in recovered {
        let idx = rec.seq as usize;
        assert!(
            idx < written.len(),
            "recovered seq {} was never written",
            rec.seq
        );
        assert_eq!(
            rec.payload, written[idx],
            "recovered payload for seq {} differs from what was written",
            rec.seq
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round trip: every appended record comes back, in order, across
    /// however many rotations the segment budget forces.
    #[test]
    fn frames_round_trip_across_rotation(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..96),
            1..24,
        ),
        segment_bytes in 128u64..2048,
    ) {
        let dir = tmpdir("round-trip");
        write_batch(&dir, &payloads, segment_bytes);

        let (_wal, recovered, report) =
            Wal::open(&dir, opts(segment_bytes), None).unwrap();
        prop_assert!(report.is_clean(), "clean log reported damage: {report}");
        prop_assert_eq!(recovered.len(), payloads.len());
        for (i, (rec, written)) in recovered.iter().zip(&payloads).enumerate() {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(&rec.payload, written);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Truncating the final segment at an arbitrary byte recovers an
    /// exact prefix of what was written — never a panic, never a
    /// record past the cut.
    #[test]
    fn truncated_tail_recovers_a_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..64),
            1..16,
        ),
        segment_bytes in 128u64..1024,
        cut in 0u64..4096,
    ) {
        let dir = tmpdir("truncate");
        write_batch(&dir, &payloads, segment_bytes);

        let last = segments(&dir).pop().unwrap();
        let len = fs::metadata(&last).unwrap().len();
        let keep = cut % (len + 1);
        let file = fs::OpenOptions::new().write(true).open(&last).unwrap();
        file.set_len(keep).unwrap();
        drop(file);

        let (_wal, recovered, _report) =
            Wal::open(&dir, opts(segment_bytes), None).unwrap();
        prop_assert!(recovered.len() <= payloads.len());
        for (rec, written) in recovered.iter().zip(&payloads) {
            prop_assert_eq!(&rec.payload, written, "recovery must keep a prefix");
        }
        assert_no_invented_records(&recovered, &payloads);
        let _ = fs::remove_dir_all(&dir);
    }

    /// One flipped bit anywhere in any segment: recovery never panics
    /// and the surviving records are a subset of what was written.
    #[test]
    fn single_bit_flip_never_invents_records(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..64),
            1..16,
        ),
        segment_bytes in 128u64..1024,
        segment_pick in 0usize..64,
        byte_pick in 0u64..65536,
        bit in 0u8..8,
    ) {
        let dir = tmpdir("bit-flip");
        write_batch(&dir, &payloads, segment_bytes);

        let segs = segments(&dir);
        let target = &segs[segment_pick % segs.len()];
        let mut bytes = fs::read(target).unwrap();
        prop_assume!(!bytes.is_empty());
        let at = (byte_pick % bytes.len() as u64) as usize;
        bytes[at] ^= 1 << bit;
        fs::write(target, &bytes).unwrap();

        let (_wal, recovered, report) =
            Wal::open(&dir, opts(segment_bytes), None).unwrap();
        prop_assert!(
            !report.is_clean(),
            "a flipped bit at {target:?}+{at} went unnoticed"
        );
        prop_assert!(recovered.len() <= payloads.len());
        assert_no_invented_records(&recovered, &payloads);
        let _ = fs::remove_dir_all(&dir);
    }
}
