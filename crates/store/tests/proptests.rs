//! Property tests on the document store and the CSV codec.

use proptest::prelude::*;
use rad_store::{csv, DocumentStore, Filter};
use serde_json::json;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV field quoting round-trips any printable content, including
    /// embedded quotes, commas, and newlines.
    #[test]
    fn csv_field_quoting_round_trips(
        fields in proptest::collection::vec("[ -~\n]{0,40}", 1..8),
    ) {
        let row = csv::encode_row(&fields);
        prop_assume!(!row.contains('\n') || fields.iter().any(|f| f.contains('\n')));
        let back = csv::decode_row(&row).unwrap();
        prop_assert_eq!(back, fields);
    }

    /// Inserting n documents yields n distinct ids and a store of
    /// size n.
    #[test]
    fn insert_count_and_id_uniqueness(n in 1usize..100) {
        let store = DocumentStore::new();
        let mut ids = std::collections::BTreeSet::new();
        for i in 0..n {
            let id = store.insert("c", json!({ "i": i })).unwrap();
            prop_assert!(ids.insert(id));
        }
        prop_assert_eq!(store.len(), n);
    }

    /// A numeric range filter partitions the collection: every
    /// document matches exactly one of (< bound) and (>= bound).
    #[test]
    fn range_filters_partition(
        values in proptest::collection::vec(-1000.0f64..1000.0, 1..60),
        bound in -1000.0f64..1000.0,
    ) {
        let store = DocumentStore::new();
        for v in &values {
            store.insert("t", json!({ "v": v })).unwrap();
        }
        let ge = store.count("t", &Filter::gte("v", bound));
        let lt = values.iter().filter(|v| **v < bound).count();
        prop_assert_eq!(ge + lt, values.len());
    }

    /// delete + count are consistent: deleting matches removes exactly
    /// the matched documents.
    #[test]
    fn delete_is_consistent_with_count(
        labels in proptest::collection::vec(0u8..4, 1..50),
        victim in 0u8..4,
    ) {
        let store = DocumentStore::new();
        for l in &labels {
            store.insert("t", json!({ "label": l })).unwrap();
        }
        let expected = store.count("t", &Filter::eq("label", json!(victim)));
        let removed = store.delete("t", &Filter::eq("label", json!(victim)));
        prop_assert_eq!(removed, expected);
        prop_assert_eq!(store.count("t", &Filter::eq("label", json!(victim))), 0);
        prop_assert_eq!(store.len(), labels.len() - removed);
    }

    /// Filter conjunction is intersection: and(a, b) matches no more
    /// than either side.
    #[test]
    fn conjunction_shrinks_matches(
        values in proptest::collection::vec((0u8..4, -100.0f64..100.0), 1..40),
        label in 0u8..4,
        bound in -100.0f64..100.0,
    ) {
        let store = DocumentStore::new();
        for (l, v) in &values {
            store.insert("t", json!({ "label": l, "v": v })).unwrap();
        }
        let a = Filter::eq("label", json!(label));
        let b = Filter::gte("v", bound);
        let both = store.count("t", &a.clone().and(b.clone()));
        prop_assert!(both <= store.count("t", &a));
        prop_assert!(both <= store.count("t", &b));
    }
}
