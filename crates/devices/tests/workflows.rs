//! Cross-device workflow tests: complete lab scenarios on one rig,
//! exercising the state machines the way the Hein Lab scripts do.

use rad_core::{Command, CommandType, DeviceFault, Value};
use rad_devices::{geometry::deck, LabRig};

fn cmd(ct: CommandType) -> Command {
    Command::nullary(ct)
}

fn arm_to(x: f64, y: f64, z: f64) -> Command {
    Command::new(CommandType::Arm, vec![Value::Location { x, y, z }])
}

fn drain_mvng(rig: &mut LabRig) {
    for _ in 0..64 {
        if rig.execute(&cmd(CommandType::Mvng)).unwrap().return_value == Value::Bool(false) {
            return;
        }
    }
    panic!("MVNG never drained");
}

fn drain_q(rig: &mut LabRig) {
    for _ in 0..64 {
        if rig
            .execute(&cmd(CommandType::TecanGetStatus))
            .unwrap()
            .return_value
            == Value::Str("idle".into())
        {
            return;
        }
    }
    panic!("Q never drained");
}

/// The full P1-style dosing workflow on bare devices (no middlebox):
/// fetch vial, dose in the Quantos, stir, dispense, spin, park.
#[test]
fn complete_solubility_workflow_runs_clean() {
    let mut rig = LabRig::new(1);
    // Init everything.
    for init in [
        CommandType::InitC9,
        CommandType::InitQuantos,
        CommandType::InitTecan,
        CommandType::InitIka,
    ] {
        rig.execute(&cmd(init)).unwrap();
    }
    rig.execute(&cmd(CommandType::Home)).unwrap();
    drain_mvng(&mut rig);
    rig.execute(&cmd(CommandType::HomeZStage)).unwrap();
    rig.execute(&cmd(CommandType::LockDosingPin)).unwrap();
    rig.execute(&cmd(CommandType::TecanSetHomePosition))
        .unwrap();
    drain_q(&mut rig);

    // Vial into the Quantos through the doorway.
    rig.execute(&arm_to(
        deck::VIAL_RACK.x,
        deck::VIAL_RACK.y,
        deck::VIAL_RACK.z,
    ))
    .unwrap();
    drain_mvng(&mut rig);
    rig.execute(&Command::new(CommandType::Grip, vec![Value::Bool(true)]))
        .unwrap();
    rig.execute(&Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("open".into())],
    ))
    .unwrap();
    rig.execute(&arm_to(
        deck::QUANTOS_PAN.x,
        deck::QUANTOS_PAN.y,
        deck::QUANTOS_PAN.z,
    ))
    .unwrap();
    drain_mvng(&mut rig);
    rig.execute(&Command::new(CommandType::Grip, vec![Value::Bool(false)]))
        .unwrap();
    rig.execute(&arm_to(
        deck::VIAL_RACK.x,
        deck::VIAL_RACK.y,
        deck::VIAL_RACK.z,
    ))
    .unwrap();
    drain_mvng(&mut rig);
    rig.execute(&Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("close".into())],
    ))
    .unwrap();

    // Dose.
    rig.execute(&Command::new(
        CommandType::TargetMass,
        vec![Value::Float(80.0)],
    ))
    .unwrap();
    let dosed = rig.execute(&cmd(CommandType::StartDosing)).unwrap();
    assert!((dosed.return_value.as_float().unwrap() - 80.0).abs() < 2.0);

    // Stir + dispense.
    rig.execute(&Command::new(
        CommandType::IkaSetSpeed,
        vec![Value::Float(400.0)],
    ))
    .unwrap();
    rig.execute(&cmd(CommandType::IkaStartMotor)).unwrap();
    rig.execute(&Command::new(
        CommandType::TecanSetValvePosition,
        vec![Value::Int(1)],
    ))
    .unwrap();
    rig.execute(&Command::new(
        CommandType::TecanSetPosition,
        vec![Value::Int(1200)],
    ))
    .unwrap();
    drain_q(&mut rig);
    rig.execute(&Command::new(
        CommandType::TecanSetValvePosition,
        vec![Value::Int(2)],
    ))
    .unwrap();
    rig.execute(&Command::new(
        CommandType::TecanSetPosition,
        vec![Value::Int(0)],
    ))
    .unwrap();
    drain_q(&mut rig);
    rig.execute(&cmd(CommandType::IkaStopMotor)).unwrap();

    // Spin and park.
    rig.execute(&Command::new(CommandType::Outp, vec![Value::Bool(true)]))
        .unwrap();
    rig.execute(&Command::new(CommandType::Outp, vec![Value::Bool(false)]))
        .unwrap();
    rig.execute(&cmd(CommandType::Home)).unwrap();
    drain_mvng(&mut rig);

    assert!(rig.c9().is_homed());
    assert!(!rig.c9().centrifuge_on());
    assert!(!rig.ika().motor_on());
    assert_eq!(rig.tecan().plunger_position(), 0);
    assert!(!rig.lab().quantos_door_open);
}

/// Interleaved device usage: starting the stirrer does not perturb the
/// Tecan's plunger state, and vice versa — devices are isolated except
/// through the shared geometry.
#[test]
fn device_state_is_isolated_across_devices() {
    let mut rig = LabRig::new(2);
    rig.execute(&cmd(CommandType::InitIka)).unwrap();
    rig.execute(&cmd(CommandType::InitTecan)).unwrap();
    rig.execute(&cmd(CommandType::TecanSetHomePosition))
        .unwrap();
    drain_q(&mut rig);
    rig.execute(&Command::new(
        CommandType::TecanSetPosition,
        vec![Value::Int(2500)],
    ))
    .unwrap();
    let plunger_before = rig.tecan().plunger_position();

    rig.execute(&Command::new(
        CommandType::IkaSetSpeed,
        vec![Value::Float(900.0)],
    ))
    .unwrap();
    rig.execute(&cmd(CommandType::IkaStartMotor)).unwrap();
    for _ in 0..20 {
        rig.execute(&cmd(CommandType::IkaReadStirringSpeed))
            .unwrap();
    }
    assert_eq!(rig.tecan().plunger_position(), plunger_before);
    assert!(rig.ika().stir_speed_rpm() > 500.0);
}

/// The door interlock geometry cuts both ways: a closed door blocks
/// arm ingress, and an open door blocks the pass-by corridor.
#[test]
fn door_geometry_is_symmetric() {
    let mut rig = LabRig::new(3);
    rig.execute(&cmd(CommandType::InitC9)).unwrap();
    rig.execute(&cmd(CommandType::InitQuantos)).unwrap();
    rig.execute(&cmd(CommandType::Home)).unwrap();
    drain_mvng(&mut rig);

    // Ingress with the door closed: collision with the closed door.
    let err = rig
        .execute(&arm_to(
            deck::QUANTOS_PAN.x,
            deck::QUANTOS_PAN.y,
            deck::QUANTOS_PAN.z,
        ))
        .unwrap_err();
    assert!(matches!(err, DeviceFault::Collision { .. }));

    // Recover: the protective stop leaves the arm mid-path; re-home.
    rig.execute(&cmd(CommandType::Home)).unwrap();
    drain_mvng(&mut rig);

    // With the door open the same move succeeds.
    rig.execute(&Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("open".into())],
    ))
    .unwrap();
    rig.execute(&arm_to(
        deck::QUANTOS_PAN.x,
        deck::QUANTOS_PAN.y,
        deck::QUANTOS_PAN.z,
    ))
    .unwrap();
    drain_mvng(&mut rig);
}

/// Protective stops leave consistent state: after a collision the
/// device still answers queries and accepts recovery commands.
#[test]
fn collisions_do_not_wedge_the_controller() {
    let mut rig = LabRig::new(4);
    rig.execute(&cmd(CommandType::InitC9)).unwrap();
    rig.execute(&cmd(CommandType::InitQuantos)).unwrap();
    rig.execute(&cmd(CommandType::Home)).unwrap();
    drain_mvng(&mut rig);
    let err = rig
        .execute(&arm_to(
            deck::QUANTOS_PAN.x,
            deck::QUANTOS_PAN.y,
            deck::QUANTOS_PAN.z,
        ))
        .unwrap_err();
    assert!(matches!(err, DeviceFault::Collision { .. }));
    // Queries still work; homing recovers.
    rig.execute(&cmd(CommandType::Mvng)).unwrap();
    rig.execute(&cmd(CommandType::Curr)).unwrap();
    rig.execute(&cmd(CommandType::Home)).unwrap();
    drain_mvng(&mut rig);
    assert!(rig.c9().is_homed());
}

/// Gripper/payload bookkeeping across a pick-and-place on the UR3e.
#[test]
fn ur3e_pick_and_place_bookkeeping() {
    let mut rig = LabRig::new(5);
    rig.execute(&cmd(CommandType::InitUr3Arm)).unwrap();
    rig.execute(&cmd(CommandType::OpenGripper)).unwrap();
    assert!(rig.ur3e().gripper_open());
    rig.execute(&cmd(CommandType::CloseGripper)).unwrap();
    rig.ur3e_mut().set_payload_g(25.0);
    assert_eq!(rig.ur3e().payload_g(), 25.0);
    // Opening the gripper drops whatever it held.
    rig.execute(&cmd(CommandType::OpenGripper)).unwrap();
    assert_eq!(rig.ur3e().payload_g(), 0.0);
}
