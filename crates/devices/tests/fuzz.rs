//! Fuzz-style property tests: the device simulators must be total —
//! no input sequence may panic them, and their state invariants must
//! survive arbitrary traffic.

use proptest::prelude::*;
use rad_core::{Command, CommandType, Value};
use rad_devices::LabRig;

fn arb_command_type() -> impl Strategy<Value = CommandType> {
    (0..CommandType::all().len()).prop_map(|i| CommandType::from_token_id(i).unwrap())
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        proptest::num::f64::ANY.prop_map(Value::Float),
        "[ -~]{0,16}".prop_map(Value::Str),
        (
            proptest::num::f64::ANY,
            proptest::num::f64::ANY,
            proptest::num::f64::ANY
        )
            .prop_map(|(x, y, z)| Value::Location { x, y, z }),
        proptest::array::uniform6(proptest::num::f64::ANY).prop_map(Value::Joints),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No command sequence, however hostile its arguments (NaN,
    /// infinities, huge ints), panics the rig.
    #[test]
    fn rig_survives_hostile_arguments(
        script in proptest::collection::vec(
            (arb_command_type(), proptest::collection::vec(arb_value(), 0..4)),
            1..80,
        ),
        seed in 0u64..256,
    ) {
        let mut rig = LabRig::new(seed);
        for (ct, args) in script {
            let _ = rig.execute(&Command::new(ct, args));
        }
    }

    /// Tecan invariant: the plunger position stays within the stroke
    /// whatever traffic arrives.
    #[test]
    fn tecan_plunger_stays_in_stroke(
        positions in proptest::collection::vec(any::<i64>(), 1..40),
        seed in 0u64..64,
    ) {
        let mut rig = LabRig::new(seed);
        let _ = rig.execute(&Command::nullary(CommandType::InitTecan));
        let _ = rig.execute(&Command::nullary(CommandType::TecanSetHomePosition));
        for p in positions {
            let _ = rig.execute(&Command::new(
                CommandType::TecanSetPosition,
                vec![Value::Int(p)],
            ));
            let pos = rig.tecan().plunger_position();
            prop_assert!((0..=6000).contains(&pos), "plunger at {pos}");
        }
    }

    /// IKA invariant: the hotplate temperature stays physical
    /// (between ambient-ish and the setpoint ceiling) under any poll
    /// pattern.
    #[test]
    fn ika_temperature_stays_physical(
        script in proptest::collection::vec(0u8..5, 1..100),
        setpoint in 0.0f64..340.0,
        seed in 0u64..64,
    ) {
        let mut rig = LabRig::new(seed);
        let _ = rig.execute(&Command::nullary(CommandType::InitIka));
        let _ = rig.execute(&Command::new(
            CommandType::IkaSetTemperature,
            vec![Value::Float(setpoint)],
        ));
        for step in script {
            let cmd = match step {
                0 => Command::nullary(CommandType::IkaStartHeater),
                1 => Command::nullary(CommandType::IkaStopHeater),
                2 => Command::nullary(CommandType::IkaReadHotplateSensor),
                3 => Command::nullary(CommandType::IkaReadExternalSensor),
                _ => Command::nullary(CommandType::IkaReadStirringSpeed),
            };
            let _ = rig.execute(&cmd);
            let t = rig.ika().plate_temp_c();
            prop_assert!(t > 0.0 && t < 360.0, "plate at {t} C");
        }
    }

    /// C9 invariant: MVNG eventually reports idle after any motion —
    /// poll loops cannot hang forever.
    #[test]
    fn mvng_always_drains(
        x in -100.0f64..400.0,
        y in -100.0f64..300.0,
        seed in 0u64..64,
    ) {
        let mut rig = LabRig::new(seed);
        rig.execute(&Command::nullary(CommandType::InitC9)).unwrap();
        rig.execute(&Command::nullary(CommandType::Home)).unwrap();
        let _ = rig.execute(&Command::new(
            CommandType::Arm,
            vec![Value::Location { x, y, z: 200.0 }],
        ));
        let mut drained = false;
        for _ in 0..64 {
            if rig.execute(&Command::nullary(CommandType::Mvng)).unwrap().return_value
                == Value::Bool(false)
            {
                drained = true;
                break;
            }
        }
        prop_assert!(drained, "MVNG never went idle");
    }

    /// Reset restores a rig to a state equivalent to a fresh one for
    /// any prior traffic: the same probe script then behaves
    /// identically modulo RNG noise.
    #[test]
    fn reset_restores_initial_behaviour(
        script in proptest::collection::vec(arb_command_type(), 0..40),
        seed in 0u64..64,
    ) {
        let mut rig = LabRig::new(seed);
        for ct in &script {
            let _ = rig.execute(&Command::nullary(*ct));
        }
        rig.reset();
        // After reset, uninitialized-device probes fail exactly like on
        // a fresh rig.
        for probe in [
            CommandType::Mvng,
            CommandType::IkaReadDeviceName,
            CommandType::TecanGetStatus,
            CommandType::HomeZStage,
        ] {
            prop_assert!(rig.execute(&Command::nullary(probe)).is_err(), "{probe}");
        }
    }
}
