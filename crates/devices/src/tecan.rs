//! The Tecan Cavro XLP 6000 syringe pump.
//!
//! The XLP speaks the Cavro OEM protocol: terse single-letter commands
//! (`A` absolute plunger move, `P` relative pickup, `I` valve switch,
//! `V` top velocity, `Q` status poll, ...). The Hein Lab's
//! `TecanCavro` wrapper polls `Q` until the pump reports idle after
//! every motion, which is why `Q` dominates the Tecan share of the
//! command dataset and why `Q Q`, `Q Q Q`, ... appear among the top
//! n-grams of Fig. 5(b). The simulator reproduces the busy/idle status
//! machine, plunger/valve state, and batch (`g`/`G`) execution.

use rad_core::{Command, CommandType, DeviceFault, DeviceId, DeviceKind, SimDuration, Value};
use rand::RngCore;

use crate::geometry::LabState;
use crate::{check_routing, Device, Outcome};

/// Full plunger stroke, in half-steps.
const MAX_POSITION: i64 = 6000;
/// Number of valve ports on the lab's distribution head.
const VALVE_PORTS: i64 = 6;
/// Velocity limits, half-steps per second.
const MIN_VELOCITY: i64 = 5;
/// Upper velocity limit, half-steps per second.
const MAX_VELOCITY: i64 = 6000;
/// Serial round trip for one OEM-protocol exchange.
const SERIAL_RTT: SimDuration = SimDuration::from_millis(25);
/// Status polls that report busy per second of plunger motion.
const POLLS_PER_SECOND: f64 = 4.0;

/// Simulated Cavro XLP 6000.
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType, Value};
/// use rad_devices::{Device, LabState, Tecan};
/// use rand::SeedableRng;
///
/// let mut pump = Tecan::new();
/// let mut lab = LabState::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// pump.execute(&Command::nullary(CommandType::InitTecan), &mut lab, &mut rng)?;
/// pump.execute(&Command::nullary(CommandType::TecanSetHomePosition), &mut lab, &mut rng)?;
/// let status = pump.execute(&Command::nullary(CommandType::TecanGetStatus), &mut lab, &mut rng)?;
/// assert_eq!(status.return_value, Value::Str("busy".into())); // still homing
/// # Ok::<(), rad_core::DeviceFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tecan {
    id: DeviceId,
    initialized: bool,
    homed: bool,
    plunger_position: i64,
    valve_position: i64,
    velocity: i64,
    dead_volume: i64,
    slope_code: i64,
    busy_polls_remaining: u32,
    batch: Option<Vec<Command>>,
}

impl Tecan {
    /// A powered-on, unhomed pump.
    pub fn new() -> Self {
        Tecan {
            id: DeviceId::primary(DeviceKind::Tecan),
            initialized: false,
            homed: false,
            plunger_position: 0,
            valve_position: 1,
            velocity: 1400,
            dead_volume: 0,
            slope_code: 14,
            busy_polls_remaining: 0,
            batch: None,
        }
    }

    /// Current absolute plunger position in half-steps.
    pub fn plunger_position(&self) -> i64 {
        self.plunger_position
    }

    /// Current valve port (1-based).
    pub fn valve_position(&self) -> i64 {
        self.valve_position
    }

    /// Whether the plunger has been homed since power-on.
    pub fn is_homed(&self) -> bool {
        self.homed
    }

    /// Whether a batch (`g`...`G`) is currently being recorded.
    pub fn in_batch(&self) -> bool {
        self.batch.is_some()
    }

    fn require_init(&self) -> Result<(), DeviceFault> {
        if self.initialized {
            Ok(())
        } else {
            Err(DeviceFault::InvalidState {
                reason: "tecan serial port not opened".into(),
            })
        }
    }

    fn require_homed(&self) -> Result<(), DeviceFault> {
        self.require_init()?;
        if self.homed {
            Ok(())
        } else {
            Err(DeviceFault::InvalidState {
                reason: "plunger not initialized (send Z first)".into(),
            })
        }
    }

    fn start_motion(&mut self, duration: SimDuration) {
        self.busy_polls_remaining = self
            .busy_polls_remaining
            .max((duration.as_secs_f64() * POLLS_PER_SECOND).ceil() as u32);
    }

    fn int_arg(command: &Command) -> Result<i64, DeviceFault> {
        command
            .args()
            .first()
            .and_then(Value::as_int)
            .ok_or_else(|| DeviceFault::InvalidArgument {
                reason: format!("{} needs an integer argument", command.command_type()),
            })
    }

    /// Executes one motion/config command, assuming validation of
    /// batch recording has already happened.
    fn run_single(&mut self, command: &Command) -> Result<Outcome, DeviceFault> {
        match command.command_type() {
            CommandType::TecanSetHomePosition => {
                self.require_init()?;
                let travel = self.plunger_position;
                self.plunger_position = 0;
                self.homed = true;
                let duration =
                    SimDuration::from_secs_f64(1.0 + travel as f64 / self.velocity as f64);
                self.start_motion(duration);
                Ok(Outcome::new(Value::Unit, duration))
            }
            CommandType::TecanSetPosition => {
                self.require_homed()?;
                let target = Self::int_arg(command)?;
                if !(0..=MAX_POSITION).contains(&target) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("plunger position {target} outside 0..={MAX_POSITION}"),
                    });
                }
                let delta = (target - self.plunger_position).unsigned_abs();
                self.plunger_position = target;
                let duration = SimDuration::from_secs_f64(delta as f64 / self.velocity as f64);
                self.start_motion(duration);
                Ok(Outcome::new(Value::Unit, duration))
            }
            CommandType::TecanSetDistance => {
                self.require_homed()?;
                let steps = Self::int_arg(command)?;
                let target = self.plunger_position + steps;
                if !(0..=MAX_POSITION).contains(&target) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!(
                            "relative move of {steps} from {} overtravels the stroke",
                            self.plunger_position
                        ),
                    });
                }
                self.plunger_position = target;
                let duration =
                    SimDuration::from_secs_f64(steps.unsigned_abs() as f64 / self.velocity as f64);
                self.start_motion(duration);
                Ok(Outcome::new(Value::Unit, duration))
            }
            CommandType::TecanSetValvePosition => {
                self.require_init()?;
                let port = Self::int_arg(command)?;
                if !(1..=VALVE_PORTS).contains(&port) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("valve port {port} outside 1..={VALVE_PORTS}"),
                    });
                }
                self.valve_position = port;
                let duration = SimDuration::from_millis(300);
                self.start_motion(duration);
                Ok(Outcome::new(Value::Unit, duration))
            }
            CommandType::TecanSetVelocity => {
                self.require_init()?;
                let v = Self::int_arg(command)?;
                if !(MIN_VELOCITY..=MAX_VELOCITY).contains(&v) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("velocity {v} outside {MIN_VELOCITY}..={MAX_VELOCITY}"),
                    });
                }
                self.velocity = v;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::TecanSetDeadVolume => {
                self.require_init()?;
                let k = Self::int_arg(command)?;
                if !(0..=100).contains(&k) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("dead volume {k} outside 0..=100"),
                    });
                }
                self.dead_volume = k;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::TecanSetSlopeCode => {
                self.require_init()?;
                let l = Self::int_arg(command)?;
                if !(1..=20).contains(&l) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("slope code {l} outside 1..=20"),
                    });
                }
                self.slope_code = l;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            other => Err(DeviceFault::InvalidState {
                reason: format!("command {other} cannot run inside the pump executor"),
            }),
        }
    }
}

impl Default for Tecan {
    fn default() -> Self {
        Tecan::new()
    }
}

impl Device for Tecan {
    fn id(&self) -> DeviceId {
        self.id
    }

    fn execute(
        &mut self,
        command: &Command,
        _lab: &mut LabState,
        _rng: &mut dyn RngCore,
    ) -> Result<Outcome, DeviceFault> {
        check_routing(self.id, command)?;
        match command.command_type() {
            CommandType::InitTecan => {
                self.initialized = true;
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(150)))
            }
            CommandType::TecanGetStatus => {
                self.require_init()?;
                let busy = self.busy_polls_remaining > 0;
                self.busy_polls_remaining = self.busy_polls_remaining.saturating_sub(1);
                Ok(Outcome::new(
                    Value::Str(if busy { "busy".into() } else { "idle".into() }),
                    SERIAL_RTT,
                ))
            }
            CommandType::TecanStartBatch => {
                self.require_init()?;
                if self.batch.is_some() {
                    return Err(DeviceFault::InvalidState {
                        reason: "batch already being recorded".into(),
                    });
                }
                self.batch = Some(Vec::new());
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::TecanStopBatch => {
                self.require_init()?;
                let recorded = self.batch.take().ok_or_else(|| DeviceFault::InvalidState {
                    reason: "G without a matching g".into(),
                })?;
                let mut total = SERIAL_RTT;
                for cmd in &recorded {
                    total += self.run_single(cmd)?.busy_for;
                }
                Ok(Outcome::new(Value::Int(recorded.len() as i64), total))
            }
            ct if self.batch.is_some() => {
                // Motion/config commands issued during batch recording
                // are queued, not executed.
                if matches!(
                    ct,
                    CommandType::TecanSetPosition
                        | CommandType::TecanSetDistance
                        | CommandType::TecanSetValvePosition
                        | CommandType::TecanSetVelocity
                ) {
                    self.batch
                        .as_mut()
                        .expect("batch is Some in this arm")
                        .push(command.clone());
                    Ok(Outcome::new(Value::Unit, SERIAL_RTT))
                } else {
                    Err(DeviceFault::InvalidState {
                        reason: format!("command {ct} is not batchable"),
                    })
                }
            }
            _ => self.run_single(command),
        }
    }

    fn reset(&mut self) {
        *self = Tecan {
            id: self.id,
            ..Tecan::new()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Tecan, LabState, ChaCha8Rng) {
        let mut pump = Tecan::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        pump.execute(
            &Command::nullary(CommandType::InitTecan),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        pump.execute(
            &Command::nullary(CommandType::TecanSetHomePosition),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        // Drain the homing busy polls.
        loop {
            let s = pump
                .execute(
                    &Command::nullary(CommandType::TecanGetStatus),
                    &mut lab,
                    &mut rng,
                )
                .unwrap();
            if s.return_value == Value::Str("idle".into()) {
                break;
            }
        }
        (pump, lab, rng)
    }

    fn cmd(ct: CommandType, v: i64) -> Command {
        Command::new(ct, vec![Value::Int(v)])
    }

    #[test]
    fn plunger_moves_take_time_proportional_to_travel() {
        let (mut pump, mut lab, mut rng) = setup();
        pump.execute(
            &cmd(CommandType::TecanSetVelocity, 1000),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let o = pump
            .execute(
                &cmd(CommandType::TecanSetPosition, 3000),
                &mut lab,
                &mut rng,
            )
            .unwrap();
        assert!((o.busy_for.as_secs_f64() - 3.0).abs() < 1e-6);
        assert_eq!(pump.plunger_position(), 3000);
    }

    #[test]
    fn status_polls_report_busy_then_idle() {
        let (mut pump, mut lab, mut rng) = setup();
        pump.execute(
            &cmd(CommandType::TecanSetPosition, 2000),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let q = Command::nullary(CommandType::TecanGetStatus);
        let mut busy_count = 0;
        loop {
            let s = pump.execute(&q, &mut lab, &mut rng).unwrap();
            if s.return_value == Value::Str("busy".into()) {
                busy_count += 1;
            } else {
                break;
            }
        }
        assert!(
            busy_count >= 2,
            "a ~1.4s move keeps several Q polls busy, saw {busy_count}"
        );
    }

    #[test]
    fn relative_move_cannot_overtravel() {
        let (mut pump, mut lab, mut rng) = setup();
        pump.execute(
            &cmd(CommandType::TecanSetPosition, 5500),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let err = pump
            .execute(
                &cmd(CommandType::TecanSetDistance, 1000),
                &mut lab,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, DeviceFault::InvalidArgument { .. }));
        assert_eq!(
            pump.plunger_position(),
            5500,
            "failed move leaves position unchanged"
        );
    }

    #[test]
    fn motion_requires_homing() {
        let mut pump = Tecan::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        pump.execute(
            &Command::nullary(CommandType::InitTecan),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let err = pump
            .execute(&cmd(CommandType::TecanSetPosition, 100), &mut lab, &mut rng)
            .unwrap_err();
        assert!(err.to_string().contains("send Z first"));
    }

    #[test]
    fn valve_port_validation() {
        let (mut pump, mut lab, mut rng) = setup();
        pump.execute(
            &cmd(CommandType::TecanSetValvePosition, 3),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        assert_eq!(pump.valve_position(), 3);
        assert!(pump
            .execute(
                &cmd(CommandType::TecanSetValvePosition, 9),
                &mut lab,
                &mut rng
            )
            .is_err());
        assert!(pump
            .execute(
                &cmd(CommandType::TecanSetValvePosition, 0),
                &mut lab,
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn batch_queues_then_executes_on_stop() {
        let (mut pump, mut lab, mut rng) = setup();
        pump.execute(
            &Command::nullary(CommandType::TecanStartBatch),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        pump.execute(
            &cmd(CommandType::TecanSetValvePosition, 2),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        pump.execute(
            &cmd(CommandType::TecanSetPosition, 1400),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        // Nothing executed yet.
        assert_eq!(pump.plunger_position(), 0);
        assert_eq!(pump.valve_position(), 1);
        let o = pump
            .execute(
                &Command::nullary(CommandType::TecanStopBatch),
                &mut lab,
                &mut rng,
            )
            .unwrap();
        assert_eq!(o.return_value, Value::Int(2));
        assert_eq!(pump.plunger_position(), 1400);
        assert_eq!(pump.valve_position(), 2);
        assert!(
            o.busy_for.as_secs_f64() >= 1.0,
            "batch duration covers the queued moves"
        );
    }

    #[test]
    fn stop_batch_without_start_fails() {
        let (mut pump, mut lab, mut rng) = setup();
        let err = pump
            .execute(
                &Command::nullary(CommandType::TecanStopBatch),
                &mut lab,
                &mut rng,
            )
            .unwrap_err();
        assert!(err.to_string().contains("without a matching"));
    }

    #[test]
    fn nested_batch_recording_fails() {
        let (mut pump, mut lab, mut rng) = setup();
        pump.execute(
            &Command::nullary(CommandType::TecanStartBatch),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        assert!(pump
            .execute(
                &Command::nullary(CommandType::TecanStartBatch),
                &mut lab,
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn config_commands_validate_ranges() {
        let (mut pump, mut lab, mut rng) = setup();
        assert!(pump
            .execute(&cmd(CommandType::TecanSetVelocity, 2), &mut lab, &mut rng)
            .is_err());
        assert!(pump
            .execute(
                &cmd(CommandType::TecanSetVelocity, 9000),
                &mut lab,
                &mut rng
            )
            .is_err());
        assert!(pump
            .execute(
                &cmd(CommandType::TecanSetDeadVolume, 500),
                &mut lab,
                &mut rng
            )
            .is_err());
        assert!(pump
            .execute(&cmd(CommandType::TecanSetSlopeCode, 0), &mut lab, &mut rng)
            .is_err());
        assert!(pump
            .execute(&cmd(CommandType::TecanSetSlopeCode, 14), &mut lab, &mut rng)
            .is_ok());
    }

    #[test]
    fn reset_forgets_homing() {
        let (mut pump, mut lab, mut rng) = setup();
        pump.reset();
        assert!(!pump.is_homed());
        assert!(pump
            .execute(&cmd(CommandType::TecanSetPosition, 100), &mut lab, &mut rng)
            .is_err());
    }
}
