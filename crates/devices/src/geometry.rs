//! Lab-deck geometry shared between the devices.
//!
//! The Hein Lab bench hosts the two robot arms and the stationary
//! devices in fixed positions. Collisions — the anomalies of §IV — are
//! geometric events: a moving arm entering the swept volume of the open
//! Quantos front door, or overshooting into the Tecan's dock. This
//! module models the deck as a set of named axis-aligned boxes
//! ([`Zone`]) and tracks the dynamic state shared between devices in
//! [`LabState`].
//!
//! Coordinates are millimetres in a lab frame whose origin sits at the
//! N9 base; +x runs along the bench toward the UR3e, +y away from the
//! operator, +z up.

use std::fmt;

/// A point on the lab deck, in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Location {
    /// X coordinate (mm).
    pub x: f64,
    /// Y coordinate (mm).
    pub y: f64,
    /// Z coordinate (mm).
    pub z: f64,
}

impl Location {
    /// Creates a location from coordinates.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Location { x, y, z }
    }

    /// Euclidean distance to `other`, in millimetres.
    pub fn distance_to(self, other: Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Linear interpolation from `self` toward `other`; `t` is clamped
    /// to `[0, 1]`.
    pub fn lerp(self, other: Location, t: f64) -> Location {
        let t = t.clamp(0.0, 1.0);
        Location {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
            z: self.z + (other.z - self.z) * t,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1}, {:.1})", self.x, self.y, self.z)
    }
}

impl From<Location> for rad_core::Value {
    fn from(l: Location) -> Self {
        rad_core::Value::Location {
            x: l.x,
            y: l.y,
            z: l.z,
        }
    }
}

/// A named axis-aligned box on the deck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zone {
    /// Human-readable zone name (used in collision fault messages).
    pub name: &'static str,
    min: Location,
    max: Location,
}

impl Zone {
    /// Creates a zone from two opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if any `min` coordinate exceeds the matching `max`.
    pub fn new(name: &'static str, min: Location, max: Location) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "zone corners must be ordered min <= max"
        );
        Zone { name, min, max }
    }

    /// Whether `p` lies inside (or on the boundary of) the zone.
    pub fn contains(&self, p: Location) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Whether the straight segment from `a` to `b` intersects the zone,
    /// sampled at millimetre resolution (fine enough for bench-scale
    /// moves; the longest bench move is under two metres).
    pub fn intersects_segment(&self, a: Location, b: Location) -> bool {
        let length = a.distance_to(b);
        let steps = (length.ceil() as usize).max(1);
        (0..=steps).any(|i| self.contains(a.lerp(b, i as f64 / steps as f64)))
    }

    /// Geometric centre of the zone.
    pub fn center(&self) -> Location {
        self.min.lerp(self.max, 0.5)
    }
}

/// Fixed deck layout used by all rigs.
///
/// The absolute coordinates are invented (the paper does not publish
/// bench measurements) but the *topology* matters: the Quantos dock is
/// reachable by both arms, its open front door sweeps into the shared
/// approach corridor, and the Tecan sits beside the N9's vial rack.
pub mod deck {
    use super::{Location, Zone};

    /// N9 home (carriage parked over its base).
    pub const N9_HOME: Location = Location::new(0.0, 0.0, 200.0);
    /// UR3e home pose tool position.
    pub const UR3E_HOME: Location = Location::new(900.0, 0.0, 300.0);
    /// Centre of the vial storage rack.
    pub const VIAL_RACK: Location = Location::new(250.0, 150.0, 60.0);
    /// Vial slot in front of the IKA stirrer plate.
    pub const IKA_PLATE: Location = Location::new(420.0, 220.0, 80.0);
    /// The Tecan's dispensing nozzle.
    pub const TECAN_NOZZLE: Location = Location::new(150.0, 320.0, 120.0);
    /// Loading pan inside the Quantos.
    pub const QUANTOS_PAN: Location = Location::new(650.0, 280.0, 100.0);
    /// Centrifuge bucket position (clear of the Tecan's corridor).
    pub const CENTRIFUGE: Location = Location::new(450.0, 450.0, 70.0);

    /// Swept volume of the Quantos front door when open.
    pub fn quantos_door_sweep() -> Zone {
        Zone::new(
            "quantos front door",
            Location::new(540.0, 170.0, 0.0),
            Location::new(760.0, 290.0, 350.0),
        )
    }

    /// The Tecan body and tubing.
    pub fn tecan_body() -> Zone {
        Zone::new(
            "tecan syringe pump",
            Location::new(100.0, 350.0, 0.0),
            Location::new(210.0, 450.0, 260.0),
        )
    }

    /// Interior of the Quantos (reachable only through the open door).
    pub fn quantos_interior() -> Zone {
        Zone::new(
            "quantos interior",
            Location::new(600.0, 230.0, 0.0),
            Location::new(720.0, 330.0, 300.0),
        )
    }
}

/// Validates that a commanded location is finite and within the
/// bench-scale workspace (|coordinate| <= 10 m). Real controllers
/// reject such targets at the kinematic layer; the simulators reject
/// them here so hostile arguments (NaN, infinities) surface as typed
/// faults instead of panics.
///
/// # Errors
///
/// Returns [`rad_core::DeviceFault::InvalidArgument`] for non-finite
/// or out-of-workspace coordinates.
pub fn validate_workspace(l: Location) -> Result<Location, rad_core::DeviceFault> {
    const LIMIT_MM: f64 = 10_000.0;
    let ok = [l.x, l.y, l.z]
        .iter()
        .all(|c| c.is_finite() && c.abs() <= LIMIT_MM);
    if ok {
        Ok(l)
    } else {
        Err(rad_core::DeviceFault::InvalidArgument {
            reason: format!("location {l} outside the reachable workspace"),
        })
    }
}

/// Dynamic state shared between devices on one rig.
///
/// Devices read and write this during [`crate::Device::execute`]; it is
/// how a Quantos door opening can collide with an arm that another
/// device moved earlier.
#[derive(Debug, Clone)]
pub struct LabState {
    /// Whether the Quantos front door is currently open.
    pub quantos_door_open: bool,
    /// Current N9 gripper position.
    pub n9_position: Location,
    /// Current UR3e tool position.
    pub ur3e_position: Location,
    /// When `true`, collision checks are suppressed (used to model the
    /// operator physically removing obstacles during prototyping).
    pub collision_checks_disabled: bool,
}

impl LabState {
    /// Lab state with both arms at home and the Quantos door closed.
    pub fn new() -> Self {
        LabState {
            quantos_door_open: false,
            n9_position: deck::N9_HOME,
            ur3e_position: deck::UR3E_HOME,
            collision_checks_disabled: false,
        }
    }

    /// Checks a straight-line arm move from `from` to `to` against the
    /// static obstacles and the door state. Returns the name of the
    /// obstacle hit, or `None` if the path is clear.
    pub fn collision_on_path(&self, from: Location, to: Location) -> Option<&'static str> {
        if self.collision_checks_disabled {
            return None;
        }
        if self.quantos_door_open && deck::quantos_door_sweep().intersects_segment(from, to) {
            // Moving through the door sweep while the door is open:
            // allowed only for a deliberate load/unload through the
            // doorway, i.e. a move that ends or begins inside the
            // Quantos.
            let interior = deck::quantos_interior();
            if !interior.contains(to) && !interior.contains(from) {
                return Some("quantos front door");
            }
        }
        if !self.quantos_door_open && deck::quantos_interior().intersects_segment(from, to) {
            return Some("quantos closed door");
        }
        let tecan = deck::tecan_body();
        if tecan.intersects_segment(from, to) && !tecan.contains(to) {
            // Passing *through* the Tecan is a crash; ending at the
            // nozzle (inside the zone) is a normal approach.
            return Some("tecan syringe pump");
        }
        None
    }

    /// Checks whether opening the Quantos door right now would strike an
    /// arm parked in its sweep. Returns the arm's name if so.
    pub fn door_strikes_arm(&self) -> Option<&'static str> {
        if self.collision_checks_disabled {
            return None;
        }
        let sweep = deck::quantos_door_sweep();
        if sweep.contains(self.n9_position) {
            Some("n9 arm")
        } else if sweep.contains(self.ur3e_position) {
            Some("ur3e arm")
        } else {
            None
        }
    }
}

impl Default for LabState {
    fn default() -> Self {
        LabState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_lerp_are_consistent() {
        let a = Location::new(0.0, 0.0, 0.0);
        let b = Location::new(100.0, 0.0, 0.0);
        assert_eq!(a.distance_to(b), 100.0);
        assert_eq!(a.lerp(b, 0.5), Location::new(50.0, 0.0, 0.0));
        assert_eq!(a.lerp(b, 2.0), b, "lerp clamps t");
    }

    #[test]
    fn zone_contains_boundary_points() {
        let z = Zone::new(
            "z",
            Location::new(0.0, 0.0, 0.0),
            Location::new(10.0, 10.0, 10.0),
        );
        assert!(z.contains(Location::new(0.0, 0.0, 0.0)));
        assert!(z.contains(Location::new(10.0, 10.0, 10.0)));
        assert!(!z.contains(Location::new(10.1, 5.0, 5.0)));
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn zone_rejects_inverted_corners() {
        let _ = Zone::new(
            "bad",
            Location::new(1.0, 0.0, 0.0),
            Location::new(0.0, 1.0, 1.0),
        );
    }

    #[test]
    fn segment_intersection_detects_pass_through() {
        let z = Zone::new(
            "wall",
            Location::new(40.0, -10.0, -10.0),
            Location::new(60.0, 10.0, 10.0),
        );
        let a = Location::new(0.0, 0.0, 0.0);
        let b = Location::new(100.0, 0.0, 0.0);
        assert!(z.intersects_segment(a, b));
        let c = Location::new(0.0, 50.0, 0.0);
        let d = Location::new(100.0, 50.0, 0.0);
        assert!(!z.intersects_segment(c, d));
    }

    #[test]
    fn closed_door_blocks_quantos_interior() {
        let lab = LabState::new();
        let hit = lab.collision_on_path(deck::VIAL_RACK, deck::QUANTOS_PAN);
        assert_eq!(hit, Some("quantos closed door"));
    }

    #[test]
    fn open_door_allows_deliberate_load() {
        let mut lab = LabState::new();
        lab.quantos_door_open = true;
        assert_eq!(
            lab.collision_on_path(deck::VIAL_RACK, deck::QUANTOS_PAN),
            None
        );
    }

    #[test]
    fn open_door_blocks_pass_by() {
        let mut lab = LabState::new();
        lab.quantos_door_open = true;
        // A move that crosses the door sweep but does not end inside the
        // Quantos is a crash.
        let past_quantos = Location::new(760.0, 230.0, 100.0);
        let start = Location::new(500.0, 230.0, 100.0);
        assert_eq!(
            lab.collision_on_path(start, past_quantos),
            Some("quantos front door")
        );
    }

    #[test]
    fn door_strike_detects_parked_arm() {
        let mut lab = LabState::new();
        assert_eq!(lab.door_strikes_arm(), None);
        lab.ur3e_position = deck::quantos_door_sweep().center();
        assert_eq!(lab.door_strikes_arm(), Some("ur3e arm"));
        lab.ur3e_position = deck::UR3E_HOME;
        lab.n9_position = deck::quantos_door_sweep().center();
        assert_eq!(lab.door_strikes_arm(), Some("n9 arm"));
    }

    #[test]
    fn disabled_checks_suppress_all_collisions() {
        let mut lab = LabState::new();
        lab.collision_checks_disabled = true;
        assert_eq!(
            lab.collision_on_path(deck::VIAL_RACK, deck::QUANTOS_PAN),
            None
        );
        lab.n9_position = deck::quantos_door_sweep().center();
        assert_eq!(lab.door_strikes_arm(), None);
    }

    #[test]
    fn approaching_tecan_nozzle_is_not_a_crash() {
        let lab = LabState::new();
        assert_eq!(
            lab.collision_on_path(deck::VIAL_RACK, deck::TECAN_NOZZLE),
            None
        );
    }
}
