//! The Mettler Toledo Quantos solid-dosing balance.
//!
//! The Quantos doses powders to a target mass inside a draft-shielded
//! enclosure whose motorized front door opens toward the robot arms —
//! which is exactly how two of the paper's three anomalies happened
//! ("the Quantos front door crashed with the robot"). The Hein Lab
//! augments the unit with an Arduino-driven z-axis stepper for the
//! dosing head, which the paper folds into the Quantos; `home_z_stage` /
//! `move_z_stage` drive it.
//!
//! The simulator models the door (including door-vs-arm collisions via
//! the shared [`LabState`]), the z stage, the dosing-pin interlock, and
//! a gravimetric dosing loop with realistic tolerance.

use rad_core::{Command, CommandType, DeviceFault, DeviceId, DeviceKind, SimDuration, Value};
use rand::Rng;
use rand::RngCore;

use crate::geometry::LabState;
use crate::{check_routing, Device, Outcome};

/// Z-stage travel, in stepper steps.
const Z_MAX: i64 = 4000;
/// Largest dosable mass, mg.
const MAX_TARGET_MG: f64 = 5000.0;
/// Relative dosing tolerance (the QB1 head doses within ~0.5 %).
const DOSE_TOLERANCE: f64 = 0.005;

/// Simulated Quantos (balance + door + Arduino z-stepper).
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType, Value};
/// use rad_devices::{Device, LabState, Quantos};
/// use rand::SeedableRng;
///
/// let mut q = Quantos::new();
/// let mut lab = LabState::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// q.execute(&Command::nullary(CommandType::InitQuantos), &mut lab, &mut rng)?;
/// let door = Command::new(CommandType::FrontDoorPosition, vec![Value::Str("open".into())]);
/// q.execute(&door, &mut lab, &mut rng)?;
/// assert!(lab.quantos_door_open);
/// # Ok::<(), rad_core::DeviceFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Quantos {
    id: DeviceId,
    initialized: bool,
    z_homed: bool,
    z_position: i64,
    home_direction_up: bool,
    pin_locked: bool,
    target_mass_mg: Option<f64>,
    balance_tare_mg: f64,
    last_dosed_mg: Option<f64>,
}

impl Quantos {
    /// A powered-on Quantos with the door closed and the pin unlocked.
    pub fn new() -> Self {
        Quantos {
            id: DeviceId::primary(DeviceKind::Quantos),
            initialized: false,
            z_homed: false,
            z_position: 0,
            home_direction_up: true,
            pin_locked: false,
            target_mass_mg: None,
            balance_tare_mg: 0.0,
            last_dosed_mg: None,
        }
    }

    /// Whether the z stage has been homed.
    pub fn z_homed(&self) -> bool {
        self.z_homed
    }

    /// Current z-stage position in steps.
    pub fn z_position(&self) -> i64 {
        self.z_position
    }

    /// Whether the dosing pin is locked (head secured).
    pub fn pin_locked(&self) -> bool {
        self.pin_locked
    }

    /// Configured target mass in milligrams, if any.
    pub fn target_mass_mg(&self) -> Option<f64> {
        self.target_mass_mg
    }

    /// Mass dispensed by the most recent dose, in milligrams.
    pub fn last_dosed_mg(&self) -> Option<f64> {
        self.last_dosed_mg
    }

    fn require_init(&self) -> Result<(), DeviceFault> {
        if self.initialized {
            Ok(())
        } else {
            Err(DeviceFault::InvalidState {
                reason: "quantos not connected".into(),
            })
        }
    }

    fn door_arg(command: &Command) -> Result<bool, DeviceFault> {
        match command.args().first() {
            Some(Value::Str(s)) if s == "open" => Ok(true),
            Some(Value::Str(s)) if s == "close" => Ok(false),
            Some(Value::Bool(b)) => Ok(*b),
            other => Err(DeviceFault::InvalidArgument {
                reason: format!("front_door_position expects \"open\"/\"close\", got {other:?}"),
            }),
        }
    }
}

impl Default for Quantos {
    fn default() -> Self {
        Quantos::new()
    }
}

impl Device for Quantos {
    fn id(&self) -> DeviceId {
        self.id
    }

    fn execute(
        &mut self,
        command: &Command,
        lab: &mut LabState,
        rng: &mut dyn RngCore,
    ) -> Result<Outcome, DeviceFault> {
        check_routing(self.id, command)?;
        match command.command_type() {
            CommandType::InitQuantos => {
                self.initialized = true;
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(600)))
            }
            CommandType::FrontDoorPosition => {
                self.require_init()?;
                let open = Self::door_arg(command)?;
                if open && !lab.quantos_door_open {
                    if let Some(arm) = lab.door_strikes_arm() {
                        // The door motor stalls against the arm; this is
                        // the crash geometry of supervised runs 16 / 17.
                        lab.quantos_door_open = true;
                        return Err(DeviceFault::Collision {
                            obstacle: arm.to_owned(),
                        });
                    }
                }
                lab.quantos_door_open = open;
                Ok(Outcome::new(Value::Unit, SimDuration::from_secs(2)))
            }
            CommandType::HomeZStage => {
                self.require_init()?;
                let travel = self.z_position.unsigned_abs();
                self.z_position = 0;
                self.z_homed = true;
                Ok(Outcome::new(
                    Value::Unit,
                    SimDuration::from_secs_f64(1.5 + travel as f64 / 2000.0),
                ))
            }
            CommandType::MoveZStage => {
                self.require_init()?;
                if !self.z_homed {
                    return Err(DeviceFault::InvalidState {
                        reason: "z stage not homed".into(),
                    });
                }
                let target = command
                    .args()
                    .first()
                    .and_then(Value::as_int)
                    .ok_or_else(|| DeviceFault::InvalidArgument {
                        reason: "move_z_stage needs a position".into(),
                    })?;
                if !(0..=Z_MAX).contains(&target) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("z position {target} outside 0..={Z_MAX}"),
                    });
                }
                let delta = (target - self.z_position).unsigned_abs();
                self.z_position = target;
                Ok(Outcome::new(
                    Value::Unit,
                    SimDuration::from_secs_f64(delta as f64 / 2000.0),
                ))
            }
            CommandType::SetHomeDirection => {
                self.require_init()?;
                let up = match command.args().first() {
                    Some(Value::Str(s)) if s == "up" => true,
                    Some(Value::Str(s)) if s == "down" => false,
                    other => {
                        return Err(DeviceFault::InvalidArgument {
                            reason: format!(
                                "set_home_direction expects \"up\"/\"down\", got {other:?}"
                            ),
                        })
                    }
                };
                self.home_direction_up = up;
                Ok(Outcome::instant(Value::Unit))
            }
            CommandType::ZeroBalance => {
                self.require_init()?;
                self.balance_tare_mg = rng.gen_range(-0.02..0.02);
                Ok(Outcome::new(
                    Value::Float(self.balance_tare_mg),
                    SimDuration::from_secs(1),
                ))
            }
            CommandType::TargetMass => {
                self.require_init()?;
                let mg = command
                    .args()
                    .first()
                    .and_then(Value::as_float)
                    .ok_or_else(|| DeviceFault::InvalidArgument {
                        reason: "target_mass needs a mass in mg".into(),
                    })?;
                if !(0.1..=MAX_TARGET_MG).contains(&mg) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("target mass {mg} outside 0.1..={MAX_TARGET_MG} mg"),
                    });
                }
                self.target_mass_mg = Some(mg);
                Ok(Outcome::instant(Value::Unit))
            }
            CommandType::LockDosingPin => {
                self.require_init()?;
                self.pin_locked = true;
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(300)))
            }
            CommandType::UnlockDosingPin => {
                self.require_init()?;
                self.pin_locked = false;
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(300)))
            }
            CommandType::StartDosing => {
                self.require_init()?;
                if lab.quantos_door_open {
                    return Err(DeviceFault::InvalidState {
                        reason: "cannot dose with the front door open".into(),
                    });
                }
                if !self.pin_locked {
                    return Err(DeviceFault::InvalidState {
                        reason: "dosing pin not locked".into(),
                    });
                }
                let target = self
                    .target_mass_mg
                    .ok_or_else(|| DeviceFault::InvalidState {
                        reason: "no target mass configured".into(),
                    })?;
                let dosed = target * (1.0 + rng.gen_range(-DOSE_TOLERANCE..DOSE_TOLERANCE));
                self.last_dosed_mg = Some(dosed);
                // Dosing time grows sublinearly with mass: head taps
                // faster once the coarse phase is done.
                let duration = SimDuration::from_secs_f64(4.0 + (target / 50.0).sqrt());
                Ok(Outcome::new(
                    Value::Float(dosed - self.balance_tare_mg),
                    duration,
                ))
            }
            other => Err(DeviceFault::InvalidState {
                reason: format!("unroutable command {other} reached quantos"),
            }),
        }
    }

    fn reset(&mut self) {
        *self = Quantos {
            id: self.id,
            ..Quantos::new()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::deck;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Quantos, LabState, ChaCha8Rng) {
        let mut q = Quantos::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        q.execute(
            &Command::nullary(CommandType::InitQuantos),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        (q, lab, rng)
    }

    fn door(open: bool) -> Command {
        Command::new(
            CommandType::FrontDoorPosition,
            vec![Value::Str(if open { "open" } else { "close" }.into())],
        )
    }

    fn dose_ready(q: &mut Quantos, lab: &mut LabState, rng: &mut ChaCha8Rng, mg: f64) {
        q.execute(&Command::nullary(CommandType::HomeZStage), lab, rng)
            .unwrap();
        q.execute(&Command::nullary(CommandType::LockDosingPin), lab, rng)
            .unwrap();
        q.execute(
            &Command::new(CommandType::TargetMass, vec![Value::Float(mg)]),
            lab,
            rng,
        )
        .unwrap();
    }

    #[test]
    fn door_updates_shared_state() {
        let (mut q, mut lab, mut rng) = setup();
        q.execute(&door(true), &mut lab, &mut rng).unwrap();
        assert!(lab.quantos_door_open);
        q.execute(&door(false), &mut lab, &mut rng).unwrap();
        assert!(!lab.quantos_door_open);
    }

    #[test]
    fn door_opening_into_parked_arm_is_a_collision() {
        let (mut q, mut lab, mut rng) = setup();
        lab.ur3e_position = deck::quantos_door_sweep().center();
        let err = q.execute(&door(true), &mut lab, &mut rng).unwrap_err();
        assert!(matches!(err, DeviceFault::Collision { .. }), "{err}");
        assert!(
            lab.quantos_door_open,
            "the door is jammed against the arm, not closed"
        );
    }

    #[test]
    fn dosing_happy_path_hits_tolerance() {
        let (mut q, mut lab, mut rng) = setup();
        dose_ready(&mut q, &mut lab, &mut rng, 200.0);
        let o = q
            .execute(
                &Command::nullary(CommandType::StartDosing),
                &mut lab,
                &mut rng,
            )
            .unwrap();
        let dosed = o.return_value.as_float().unwrap();
        assert!(
            (dosed - 200.0).abs() < 200.0 * 0.01,
            "dosed {dosed} mg for a 200 mg target"
        );
        assert!(o.busy_for.as_secs_f64() > 4.0);
    }

    #[test]
    fn dosing_with_open_door_is_rejected() {
        let (mut q, mut lab, mut rng) = setup();
        dose_ready(&mut q, &mut lab, &mut rng, 100.0);
        q.execute(&door(true), &mut lab, &mut rng).unwrap();
        let err = q
            .execute(
                &Command::nullary(CommandType::StartDosing),
                &mut lab,
                &mut rng,
            )
            .unwrap_err();
        assert!(err.to_string().contains("door open"));
    }

    #[test]
    fn dosing_needs_pin_and_target() {
        let (mut q, mut lab, mut rng) = setup();
        let err = q
            .execute(
                &Command::nullary(CommandType::StartDosing),
                &mut lab,
                &mut rng,
            )
            .unwrap_err();
        assert!(err.to_string().contains("pin"));
        q.execute(
            &Command::nullary(CommandType::LockDosingPin),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let err = q
            .execute(
                &Command::nullary(CommandType::StartDosing),
                &mut lab,
                &mut rng,
            )
            .unwrap_err();
        assert!(err.to_string().contains("target mass"));
    }

    #[test]
    fn z_stage_requires_homing_before_moves() {
        let (mut q, mut lab, mut rng) = setup();
        let mv = Command::new(CommandType::MoveZStage, vec![Value::Int(1000)]);
        assert!(q.execute(&mv, &mut lab, &mut rng).is_err());
        q.execute(
            &Command::nullary(CommandType::HomeZStage),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        q.execute(&mv, &mut lab, &mut rng).unwrap();
        assert_eq!(q.z_position(), 1000);
    }

    #[test]
    fn z_stage_range_is_validated() {
        let (mut q, mut lab, mut rng) = setup();
        q.execute(
            &Command::nullary(CommandType::HomeZStage),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let mv = Command::new(CommandType::MoveZStage, vec![Value::Int(Z_MAX + 1)]);
        assert!(q.execute(&mv, &mut lab, &mut rng).is_err());
    }

    #[test]
    fn target_mass_range_is_validated() {
        let (mut q, mut lab, mut rng) = setup();
        for bad in [0.0, -5.0, 9999.0] {
            let c = Command::new(CommandType::TargetMass, vec![Value::Float(bad)]);
            assert!(q.execute(&c, &mut lab, &mut rng).is_err(), "{bad}");
        }
    }

    #[test]
    fn home_direction_parses_up_down_only() {
        let (mut q, mut lab, mut rng) = setup();
        let up = Command::new(CommandType::SetHomeDirection, vec![Value::Str("up".into())]);
        assert!(q.execute(&up, &mut lab, &mut rng).is_ok());
        let bad = Command::new(CommandType::SetHomeDirection, vec![Value::Int(1)]);
        assert!(q.execute(&bad, &mut lab, &mut rng).is_err());
    }

    #[test]
    fn zero_returns_small_tare() {
        let (mut q, mut lab, mut rng) = setup();
        let o = q
            .execute(
                &Command::nullary(CommandType::ZeroBalance),
                &mut lab,
                &mut rng,
            )
            .unwrap();
        let tare = o.return_value.as_float().unwrap();
        assert!(tare.abs() < 0.05);
    }
}
