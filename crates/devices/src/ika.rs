//! The IKA C-Mag HS 7 magnetic stirrer and heater.
//!
//! The C-Mag speaks the NAMUR serial protocol: `IN_*` reads, `OUT_SP_*`
//! setpoint writes, `START_*`/`STOP_*` channel controls, where channel 1
//! is the heater and channel 4 the stirrer motor. The simulator keeps
//! first-order thermal and rotational dynamics: each process-value read
//! advances the plant a small step toward its setpoint, so a polling
//! loop in a workload observes a realistic ramp.

use rad_core::{Command, CommandType, DeviceFault, DeviceId, DeviceKind, SimDuration, Value};
use rand::Rng;
use rand::RngCore;

use crate::geometry::LabState;
use crate::{check_routing, Device, Outcome};

/// Ambient lab temperature, °C.
const AMBIENT_C: f64 = 21.0;
/// Maximum plate temperature setpoint, °C.
const MAX_TEMP_C: f64 = 340.0;
/// Maximum stirring speed, rpm.
const MAX_SPEED_RPM: f64 = 1500.0;
/// Fraction of the remaining gap closed per process-value poll.
const THERMAL_ALPHA: f64 = 0.08;
/// Stirrer response is much faster than the hotplate's.
const STIR_ALPHA: f64 = 0.5;
/// Serial round trip for a NAMUR exchange.
const SERIAL_RTT: SimDuration = SimDuration::from_millis(60);

/// Simulated IKA C-Mag HS 7.
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType, Value};
/// use rad_devices::{Device, Ika, LabState};
/// use rand::SeedableRng;
///
/// let mut ika = Ika::new();
/// let mut lab = LabState::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// ika.execute(&Command::nullary(CommandType::InitIka), &mut lab, &mut rng)?;
/// let name = ika.execute(&Command::nullary(CommandType::IkaReadDeviceName), &mut lab, &mut rng)?;
/// assert_eq!(name.return_value, Value::Str("C-MAG HS 7".into()));
/// # Ok::<(), rad_core::DeviceFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ika {
    id: DeviceId,
    initialized: bool,
    heater_on: bool,
    motor_on: bool,
    temp_setpoint_c: f64,
    speed_setpoint_rpm: f64,
    plate_temp_c: f64,
    external_temp_c: f64,
    stir_speed_rpm: f64,
}

impl Ika {
    /// A powered-on C-Mag at ambient temperature, everything off.
    pub fn new() -> Self {
        Ika {
            id: DeviceId::primary(DeviceKind::Ika),
            initialized: false,
            heater_on: false,
            motor_on: false,
            temp_setpoint_c: AMBIENT_C,
            speed_setpoint_rpm: 0.0,
            plate_temp_c: AMBIENT_C,
            external_temp_c: AMBIENT_C,
            stir_speed_rpm: 0.0,
        }
    }

    /// Whether the heater channel is enabled.
    pub fn heater_on(&self) -> bool {
        self.heater_on
    }

    /// Whether the stirrer motor channel is enabled.
    pub fn motor_on(&self) -> bool {
        self.motor_on
    }

    /// Current hotplate temperature, °C.
    pub fn plate_temp_c(&self) -> f64 {
        self.plate_temp_c
    }

    /// Current stirring speed, rpm.
    pub fn stir_speed_rpm(&self) -> f64 {
        self.stir_speed_rpm
    }

    fn require_init(&self) -> Result<(), DeviceFault> {
        if self.initialized {
            Ok(())
        } else {
            Err(DeviceFault::InvalidState {
                reason: "ika serial port not opened".into(),
            })
        }
    }

    /// Advances the plant one poll step.
    fn step_plant(&mut self, rng: &mut dyn RngCore) {
        let temp_target = if self.heater_on {
            self.temp_setpoint_c
        } else {
            AMBIENT_C
        };
        self.plate_temp_c +=
            (temp_target - self.plate_temp_c) * THERMAL_ALPHA + rng.gen_range(-0.05..0.05);
        // The external (in-solution) probe lags the plate.
        self.external_temp_c += (self.plate_temp_c - self.external_temp_c) * (THERMAL_ALPHA * 0.5)
            + rng.gen_range(-0.05..0.05);
        let speed_target = if self.motor_on {
            self.speed_setpoint_rpm
        } else {
            0.0
        };
        self.stir_speed_rpm += (speed_target - self.stir_speed_rpm) * STIR_ALPHA
            + if self.motor_on {
                rng.gen_range(-2.0..2.0)
            } else {
                0.0
            };
        if self.stir_speed_rpm < 0.0 {
            self.stir_speed_rpm = 0.0;
        }
    }

    fn float_arg(command: &Command) -> Result<f64, DeviceFault> {
        command
            .args()
            .first()
            .and_then(Value::as_float)
            .ok_or_else(|| DeviceFault::InvalidArgument {
                reason: format!("{} needs a numeric argument", command.command_type()),
            })
    }
}

impl Default for Ika {
    fn default() -> Self {
        Ika::new()
    }
}

impl Device for Ika {
    fn id(&self) -> DeviceId {
        self.id
    }

    fn execute(
        &mut self,
        command: &Command,
        _lab: &mut LabState,
        rng: &mut dyn RngCore,
    ) -> Result<Outcome, DeviceFault> {
        check_routing(self.id, command)?;
        match command.command_type() {
            CommandType::InitIka => {
                self.initialized = true;
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(200)))
            }
            CommandType::IkaReadDeviceName => {
                self.require_init()?;
                Ok(Outcome::new(Value::Str("C-MAG HS 7".into()), SERIAL_RTT))
            }
            CommandType::IkaSetTemperature => {
                self.require_init()?;
                let t = Self::float_arg(command)?;
                if !(0.0..=MAX_TEMP_C).contains(&t) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("temperature {t} outside 0..={MAX_TEMP_C} C"),
                    });
                }
                self.temp_setpoint_c = t;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::IkaSetSpeed => {
                self.require_init()?;
                let s = Self::float_arg(command)?;
                if !(0.0..=MAX_SPEED_RPM).contains(&s) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("speed {s} outside 0..={MAX_SPEED_RPM} rpm"),
                    });
                }
                self.speed_setpoint_rpm = s;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::IkaStartHeater => {
                self.require_init()?;
                self.heater_on = true;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::IkaStopHeater => {
                self.require_init()?;
                self.heater_on = false;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::IkaStartMotor => {
                self.require_init()?;
                if self.speed_setpoint_rpm <= 0.0 {
                    return Err(DeviceFault::InvalidState {
                        reason: "stirrer started with zero speed setpoint".into(),
                    });
                }
                self.motor_on = true;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::IkaStopMotor => {
                self.require_init()?;
                self.motor_on = false;
                Ok(Outcome::new(Value::Unit, SERIAL_RTT))
            }
            CommandType::IkaReadStirringSpeed => {
                self.require_init()?;
                self.step_plant(rng);
                Ok(Outcome::new(Value::Float(self.stir_speed_rpm), SERIAL_RTT))
            }
            CommandType::IkaReadRatedSpeed => {
                self.require_init()?;
                Ok(Outcome::new(
                    Value::Float(self.speed_setpoint_rpm),
                    SERIAL_RTT,
                ))
            }
            CommandType::IkaReadRatedTemp => {
                self.require_init()?;
                Ok(Outcome::new(Value::Float(self.temp_setpoint_c), SERIAL_RTT))
            }
            CommandType::IkaReadExternalSensor => {
                self.require_init()?;
                self.step_plant(rng);
                Ok(Outcome::new(Value::Float(self.external_temp_c), SERIAL_RTT))
            }
            CommandType::IkaReadHotplateSensor => {
                self.require_init()?;
                self.step_plant(rng);
                Ok(Outcome::new(Value::Float(self.plate_temp_c), SERIAL_RTT))
            }
            other => Err(DeviceFault::InvalidState {
                reason: format!("unroutable command {other} reached ika"),
            }),
        }
    }

    fn reset(&mut self) {
        *self = Ika {
            id: self.id,
            ..Ika::new()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Ika, LabState, ChaCha8Rng) {
        let mut ika = Ika::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        ika.execute(&Command::nullary(CommandType::InitIka), &mut lab, &mut rng)
            .unwrap();
        (ika, lab, rng)
    }

    fn set(ct: CommandType, v: f64) -> Command {
        Command::new(ct, vec![Value::Float(v)])
    }

    #[test]
    fn heating_ramps_toward_setpoint_on_polls() {
        let (mut ika, mut lab, mut rng) = setup();
        ika.execute(
            &set(CommandType::IkaSetTemperature, 80.0),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        ika.execute(
            &Command::nullary(CommandType::IkaStartHeater),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let mut last = AMBIENT_C;
        for _ in 0..60 {
            let v = ika
                .execute(
                    &Command::nullary(CommandType::IkaReadHotplateSensor),
                    &mut lab,
                    &mut rng,
                )
                .unwrap()
                .return_value
                .as_float()
                .unwrap();
            last = v;
        }
        assert!(
            last > 70.0,
            "after 60 polls the plate should be near 80C, got {last}"
        );
    }

    #[test]
    fn stopping_heater_cools_back_down() {
        let (mut ika, mut lab, mut rng) = setup();
        ika.execute(
            &set(CommandType::IkaSetTemperature, 100.0),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        ika.execute(
            &Command::nullary(CommandType::IkaStartHeater),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        for _ in 0..50 {
            ika.execute(
                &Command::nullary(CommandType::IkaReadHotplateSensor),
                &mut lab,
                &mut rng,
            )
            .unwrap();
        }
        let hot = ika.plate_temp_c();
        ika.execute(
            &Command::nullary(CommandType::IkaStopHeater),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        for _ in 0..80 {
            ika.execute(
                &Command::nullary(CommandType::IkaReadHotplateSensor),
                &mut lab,
                &mut rng,
            )
            .unwrap();
        }
        assert!(
            ika.plate_temp_c() < hot - 30.0,
            "plate should cool after STOP_1"
        );
    }

    #[test]
    fn stirrer_cannot_start_with_zero_setpoint() {
        let (mut ika, mut lab, mut rng) = setup();
        let err = ika
            .execute(
                &Command::nullary(CommandType::IkaStartMotor),
                &mut lab,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, DeviceFault::InvalidState { .. }));
    }

    #[test]
    fn stirrer_reaches_speed_quickly() {
        let (mut ika, mut lab, mut rng) = setup();
        ika.execute(&set(CommandType::IkaSetSpeed, 600.0), &mut lab, &mut rng)
            .unwrap();
        ika.execute(
            &Command::nullary(CommandType::IkaStartMotor),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        for _ in 0..10 {
            ika.execute(
                &Command::nullary(CommandType::IkaReadStirringSpeed),
                &mut lab,
                &mut rng,
            )
            .unwrap();
        }
        assert!((ika.stir_speed_rpm() - 600.0).abs() < 20.0);
    }

    #[test]
    fn setpoint_reads_do_not_advance_the_plant() {
        let (mut ika, mut lab, mut rng) = setup();
        ika.execute(
            &set(CommandType::IkaSetTemperature, 200.0),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        ika.execute(
            &Command::nullary(CommandType::IkaStartHeater),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let before = ika.plate_temp_c();
        for _ in 0..20 {
            let sp = ika
                .execute(
                    &Command::nullary(CommandType::IkaReadRatedTemp),
                    &mut lab,
                    &mut rng,
                )
                .unwrap()
                .return_value
                .as_float()
                .unwrap();
            assert_eq!(sp, 200.0);
        }
        assert_eq!(
            ika.plate_temp_c(),
            before,
            "IN_SP_1 is a pure setpoint read"
        );
    }

    #[test]
    fn argument_validation() {
        let (mut ika, mut lab, mut rng) = setup();
        assert!(ika
            .execute(
                &set(CommandType::IkaSetTemperature, 900.0),
                &mut lab,
                &mut rng
            )
            .is_err());
        assert!(ika
            .execute(&set(CommandType::IkaSetSpeed, -5.0), &mut lab, &mut rng)
            .is_err());
        assert!(ika
            .execute(
                &Command::nullary(CommandType::IkaSetSpeed),
                &mut lab,
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn uninitialized_reads_fail() {
        let mut ika = Ika::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(ika
            .execute(
                &Command::nullary(CommandType::IkaReadDeviceName),
                &mut lab,
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn external_probe_lags_plate() {
        let (mut ika, mut lab, mut rng) = setup();
        ika.execute(
            &set(CommandType::IkaSetTemperature, 150.0),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        ika.execute(
            &Command::nullary(CommandType::IkaStartHeater),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        for _ in 0..15 {
            ika.execute(
                &Command::nullary(CommandType::IkaReadHotplateSensor),
                &mut lab,
                &mut rng,
            )
            .unwrap();
        }
        let plate = ika.plate_temp_c();
        let external = ika
            .execute(
                &Command::nullary(CommandType::IkaReadExternalSensor),
                &mut lab,
                &mut rng,
            )
            .unwrap()
            .return_value
            .as_float()
            .unwrap();
        assert!(
            external < plate,
            "solution probe lags the hotplate during a ramp"
        );
    }
}
