//! The assembled lab rig: one of each device plus the shared geometry.
//!
//! [`LabRig`] is the single entry point the middlebox and the workload
//! generators use: it routes each command to the owning device, threads
//! the shared [`LabState`] through, and owns the deterministic RNG that
//! gives devices their measurement noise.

use rad_core::{Command, DeviceFault, DeviceKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{Device, Ika, LabState, Outcome, Quantos, Tecan, Ur3eDevice, C9};

/// A complete simulated Hein Lab bench.
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType};
/// use rad_devices::LabRig;
///
/// let mut rig = LabRig::new(7);
/// rig.execute(&Command::nullary(CommandType::InitC9))?;
/// rig.execute(&Command::nullary(CommandType::Home))?;
/// assert!(rig.c9().is_homed());
/// # Ok::<(), rad_core::DeviceFault>(())
/// ```
#[derive(Debug)]
pub struct LabRig {
    lab: LabState,
    rng: ChaCha8Rng,
    c9: C9,
    ur3e: Ur3eDevice,
    ika: Ika,
    tecan: Tecan,
    quantos: Quantos,
}

impl LabRig {
    /// Builds a rig whose measurement noise derives from `seed`.
    pub fn new(seed: u64) -> Self {
        LabRig {
            lab: LabState::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            c9: C9::new(),
            ur3e: Ur3eDevice::new(),
            ika: Ika::new(),
            tecan: Tecan::new(),
            quantos: Quantos::new(),
        }
    }

    /// Executes `command` on the owning device.
    ///
    /// # Errors
    ///
    /// Propagates the device's [`DeviceFault`]; the rig itself never
    /// fails routing because every [`rad_core::CommandType`] has an
    /// owning device.
    pub fn execute(&mut self, command: &Command) -> Result<Outcome, DeviceFault> {
        let lab = &mut self.lab;
        let rng = &mut self.rng;
        match command.device() {
            DeviceKind::C9 => self.c9.execute(command, lab, rng),
            DeviceKind::Ur3e => self.ur3e.execute(command, lab, rng),
            DeviceKind::Ika => self.ika.execute(command, lab, rng),
            DeviceKind::Tecan => self.tecan.execute(command, lab, rng),
            DeviceKind::Quantos => self.quantos.execute(command, lab, rng),
        }
    }

    /// Shared deck geometry and dynamic state.
    pub fn lab(&self) -> &LabState {
        &self.lab
    }

    /// Mutable access to the shared state (used by workloads to stage
    /// anomaly scenarios, e.g. parking an arm in the door sweep).
    pub fn lab_mut(&mut self) -> &mut LabState {
        &mut self.lab
    }

    /// The C9 (N9 arm + centrifuge).
    pub fn c9(&self) -> &C9 {
        &self.c9
    }

    /// The UR3e arm.
    pub fn ur3e(&self) -> &Ur3eDevice {
        &self.ur3e
    }

    /// Mutable UR3e access (payload staging for the power experiments).
    pub fn ur3e_mut(&mut self) -> &mut Ur3eDevice {
        &mut self.ur3e
    }

    /// The IKA stirrer/heater.
    pub fn ika(&self) -> &Ika {
        &self.ika
    }

    /// The Tecan syringe pump.
    pub fn tecan(&self) -> &Tecan {
        &self.tecan
    }

    /// The Quantos balance.
    pub fn quantos(&self) -> &Quantos {
        &self.quantos
    }

    /// Power-cycles every device and restores the deck to its initial
    /// state. The RNG stream is left where it was so repeated procedure
    /// runs on one rig see fresh noise.
    pub fn reset(&mut self) {
        self.lab = LabState::new();
        self.c9.reset();
        self.ur3e.reset();
        self.ika.reset();
        self.tecan.reset();
        self.quantos.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{CommandType, Value};

    #[test]
    fn rig_routes_to_every_device() {
        let mut rig = LabRig::new(1);
        for init in [
            CommandType::InitC9,
            CommandType::InitUr3Arm,
            CommandType::InitIka,
            CommandType::InitTecan,
            CommandType::InitQuantos,
        ] {
            rig.execute(&Command::nullary(init)).unwrap();
        }
        // One follow-up command per device proves the init landed on the
        // right instance.
        rig.execute(&Command::nullary(CommandType::Home)).unwrap();
        rig.execute(&Command::nullary(CommandType::IkaReadDeviceName))
            .unwrap();
        rig.execute(&Command::nullary(CommandType::TecanSetHomePosition))
            .unwrap();
        rig.execute(&Command::nullary(CommandType::HomeZStage))
            .unwrap();
        assert!(rig.c9().is_homed());
        assert!(rig.tecan().is_homed());
        assert!(rig.quantos().z_homed());
    }

    #[test]
    fn identical_seeds_give_identical_noise() {
        let run = |seed: u64| -> Vec<f64> {
            let mut rig = LabRig::new(seed);
            rig.execute(&Command::nullary(CommandType::InitC9)).unwrap();
            (0..5)
                .map(|_| {
                    rig.execute(&Command::nullary(CommandType::Temp))
                        .unwrap()
                        .return_value
                        .as_float()
                        .unwrap()
                })
                .collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn cross_device_crash_scenario_door_vs_arm() {
        // Reproduces the §V narrative of run 17: the UR3e parks at the
        // Quantos while the door opens into it.
        let mut rig = LabRig::new(2);
        rig.execute(&Command::nullary(CommandType::InitUr3Arm))
            .unwrap();
        rig.execute(&Command::nullary(CommandType::InitQuantos))
            .unwrap();
        // Drive the UR3e into the door sweep (door is closed, so the
        // approach itself is fine as long as it stays out of the
        // interior).
        let park = Command::new(
            CommandType::MoveToLocation,
            vec![Value::Location {
                x: 750.0,
                y: 200.0,
                z: 150.0,
            }],
        );
        rig.execute(&park).unwrap();
        let open = Command::new(
            CommandType::FrontDoorPosition,
            vec![Value::Str("open".into())],
        );
        let err = rig.execute(&open).unwrap_err();
        assert!(matches!(err, DeviceFault::Collision { .. }), "{err}");
    }

    #[test]
    fn reset_restores_deck_and_devices() {
        let mut rig = LabRig::new(3);
        rig.execute(&Command::nullary(CommandType::InitQuantos))
            .unwrap();
        rig.execute(&Command::new(
            CommandType::FrontDoorPosition,
            vec![Value::Str("open".into())],
        ))
        .unwrap();
        assert!(rig.lab().quantos_door_open);
        rig.reset();
        assert!(!rig.lab().quantos_door_open);
        assert!(rig
            .execute(&Command::nullary(CommandType::HomeZStage))
            .is_err());
    }
}
