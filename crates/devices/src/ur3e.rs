//! The Universal Robots UR3e six-axis arm.
//!
//! The Hein Lab drives the UR3e through the `urx` Python package; the
//! traced API surface is six methods (Fig. 5(a)): `move_joints`,
//! `move_to_location`, `move_circular`, `open_gripper`, `close_gripper`,
//! and the constructor. The simulator implements those with a simplified
//! forward-kinematic model (full dynamics live in `rad-power`), linear
//! and joint-space timing, and collision checks against the shared deck
//! geometry.

use rad_core::{Command, CommandType, DeviceFault, DeviceId, DeviceKind, SimDuration, Value};
use rand::RngCore;

use crate::geometry::{LabState, Location};
use crate::{check_routing, Device, Outcome};

/// UR3e base position on the deck (mm).
const BASE: Location = Location::new(900.0, 0.0, 0.0);
/// Shoulder height above the deck (mm).
const SHOULDER_HEIGHT: f64 = 152.0;
/// Upper-arm length (mm).
const UPPER_ARM: f64 = 244.0;
/// Forearm length (mm).
const FOREARM: f64 = 213.0;
/// Default tool linear velocity (mm/s) for Cartesian moves.
const DEFAULT_LINEAR_VELOCITY: f64 = 250.0;
/// Maximum accepted tool velocity (mm/s). The UR3e tops out at 1 m/s.
const MAX_LINEAR_VELOCITY: f64 = 1000.0;
/// Joint speed used for `move_joints` timing (rad/s).
const JOINT_SPEED: f64 = 1.05;

/// Simulated UR3e arm.
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType, Value};
/// use rad_devices::{Device, LabState, Ur3eDevice};
/// use rand::SeedableRng;
///
/// let mut arm = Ur3eDevice::new();
/// let mut lab = LabState::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// arm.execute(&Command::nullary(CommandType::InitUr3Arm), &mut lab, &mut rng)?;
/// let move_cmd = Command::new(
///     CommandType::MoveToLocation,
///     vec![Value::Location { x: 700.0, y: 100.0, z: 200.0 }],
/// );
/// let outcome = arm.execute(&move_cmd, &mut lab, &mut rng)?;
/// assert!(outcome.busy_for.as_secs_f64() > 0.5);
/// # Ok::<(), rad_core::DeviceFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ur3eDevice {
    id: DeviceId,
    initialized: bool,
    joints: [f64; 6],
    gripper_open: bool,
    payload_g: f64,
}

impl Ur3eDevice {
    /// A powered-on but unconnected UR3e.
    pub fn new() -> Self {
        Ur3eDevice {
            id: DeviceId::primary(DeviceKind::Ur3e),
            initialized: false,
            joints: [0.0, -1.57, 1.57, -1.57, -1.57, 0.0],
            gripper_open: true,
            payload_g: 0.0,
        }
    }

    /// Current joint vector (radians, base to wrist-3).
    pub fn joints(&self) -> [f64; 6] {
        self.joints
    }

    /// Whether the gripper is open.
    pub fn gripper_open(&self) -> bool {
        self.gripper_open
    }

    /// Mass currently held by the gripper, in grams. Set by the
    /// workloads when the arm picks up vials or calibration weights;
    /// used by the power model.
    pub fn payload_g(&self) -> f64 {
        self.payload_g
    }

    /// Sets the simulated payload mass in grams.
    ///
    /// # Panics
    ///
    /// Panics if `grams` is negative or not finite.
    pub fn set_payload_g(&mut self, grams: f64) {
        assert!(
            grams.is_finite() && grams >= 0.0,
            "payload must be finite and non-negative"
        );
        self.payload_g = grams;
    }

    /// Simplified forward kinematics: tool position for a joint vector.
    ///
    /// Uses the shoulder-pan / shoulder-lift / elbow joints of a planar
    /// 2-link chain rotated about the base; wrist joints only orient the
    /// tool, so they are ignored for position. Good enough for deck
    /// collision checks; the dynamics crate has the torque-level model.
    pub fn forward_kinematics(joints: &[f64; 6]) -> Location {
        let (q0, q1, q2) = (joints[0], joints[1], joints[2]);
        // q1 = 0 points the upper arm horizontally outward; negative lifts it.
        let reach = UPPER_ARM * q1.cos() + FOREARM * (q1 + q2).cos();
        let height = SHOULDER_HEIGHT - UPPER_ARM * q1.sin() - FOREARM * (q1 + q2).sin();
        Location::new(
            BASE.x + reach * q0.cos(),
            BASE.y + reach * q0.sin(),
            BASE.z + height,
        )
    }

    fn require_init(&self) -> Result<(), DeviceFault> {
        if self.initialized {
            Ok(())
        } else {
            Err(DeviceFault::InvalidState {
                reason: "ur3e not connected".into(),
            })
        }
    }

    fn linear_move(
        &mut self,
        lab: &mut LabState,
        target: Location,
        velocity: f64,
    ) -> Result<SimDuration, DeviceFault> {
        if !(1.0..=MAX_LINEAR_VELOCITY).contains(&velocity) {
            return Err(DeviceFault::InvalidArgument {
                reason: format!("velocity {velocity} outside 1..={MAX_LINEAR_VELOCITY} mm/s"),
            });
        }
        if let Some(obstacle) = lab.collision_on_path(lab.ur3e_position, target) {
            lab.ur3e_position = lab.ur3e_position.lerp(target, 0.5);
            return Err(DeviceFault::Collision {
                obstacle: obstacle.to_owned(),
            });
        }
        let distance = lab.ur3e_position.distance_to(target);
        lab.ur3e_position = target;
        Ok(SimDuration::from_secs_f64(distance / velocity))
    }

    fn velocity_arg(command: &Command, index: usize) -> Result<f64, DeviceFault> {
        match command.args().get(index) {
            None => Ok(DEFAULT_LINEAR_VELOCITY),
            Some(v) => v.as_float().ok_or_else(|| DeviceFault::InvalidArgument {
                reason: format!("velocity argument must be numeric, got {v}"),
            }),
        }
    }

    fn location_arg(command: &Command, index: usize) -> Result<Location, DeviceFault> {
        match command.args().get(index) {
            Some(Value::Location { x, y, z }) => {
                crate::geometry::validate_workspace(Location::new(*x, *y, *z))
            }
            other => Err(DeviceFault::InvalidArgument {
                reason: format!("expected location argument at index {index}, got {other:?}"),
            }),
        }
    }
}

impl Default for Ur3eDevice {
    fn default() -> Self {
        Ur3eDevice::new()
    }
}

impl Device for Ur3eDevice {
    fn id(&self) -> DeviceId {
        self.id
    }

    fn execute(
        &mut self,
        command: &Command,
        lab: &mut LabState,
        _rng: &mut dyn RngCore,
    ) -> Result<Outcome, DeviceFault> {
        check_routing(self.id, command)?;
        match command.command_type() {
            CommandType::InitUr3Arm => {
                self.initialized = true;
                lab.ur3e_position = Self::forward_kinematics(&self.joints);
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(800)))
            }
            CommandType::MoveJoints => {
                self.require_init()?;
                let target = match command.args().first() {
                    Some(Value::Joints(q)) => *q,
                    other => {
                        return Err(DeviceFault::InvalidArgument {
                            reason: format!("move_joints needs a joint vector, got {other:?}"),
                        })
                    }
                };
                if target
                    .iter()
                    .any(|q| !q.is_finite() || q.abs() > 2.0 * std::f64::consts::TAU)
                {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("joint target out of range: {target:?}"),
                    });
                }
                let tool_target = Self::forward_kinematics(&target);
                if let Some(obstacle) = lab.collision_on_path(lab.ur3e_position, tool_target) {
                    lab.ur3e_position = lab.ur3e_position.lerp(tool_target, 0.5);
                    return Err(DeviceFault::Collision {
                        obstacle: obstacle.to_owned(),
                    });
                }
                let max_delta = self
                    .joints
                    .iter()
                    .zip(&target)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                self.joints = target;
                lab.ur3e_position = tool_target;
                Ok(Outcome::new(
                    Value::Unit,
                    SimDuration::from_secs_f64(max_delta / JOINT_SPEED),
                ))
            }
            CommandType::MoveToLocation => {
                self.require_init()?;
                let target = Self::location_arg(command, 0)?;
                let velocity = Self::velocity_arg(command, 1)?;
                let duration = self.linear_move(lab, target, velocity)?;
                Ok(Outcome::new(Value::Unit, duration))
            }
            CommandType::MoveCircular => {
                self.require_init()?;
                let via = Self::location_arg(command, 0)?;
                let target = Self::location_arg(command, 1)?;
                let velocity = Self::velocity_arg(command, 2)?;
                let first = self.linear_move(lab, via, velocity)?;
                let second = self.linear_move(lab, target, velocity)?;
                Ok(Outcome::new(Value::Unit, first + second))
            }
            CommandType::OpenGripper => {
                self.require_init()?;
                self.gripper_open = true;
                self.payload_g = 0.0;
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(500)))
            }
            CommandType::CloseGripper => {
                self.require_init()?;
                self.gripper_open = false;
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(500)))
            }
            other => Err(DeviceFault::InvalidState {
                reason: format!("unroutable command {other} reached ur3e"),
            }),
        }
    }

    fn reset(&mut self) {
        *self = Ur3eDevice {
            id: self.id,
            ..Ur3eDevice::new()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Ur3eDevice, LabState, ChaCha8Rng) {
        let mut arm = Ur3eDevice::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        arm.execute(
            &Command::nullary(CommandType::InitUr3Arm),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        (arm, lab, rng)
    }

    #[test]
    fn init_places_tool_at_fk_of_home_joints() {
        let (arm, lab, _) = setup();
        assert_eq!(
            lab.ur3e_position,
            Ur3eDevice::forward_kinematics(&arm.joints())
        );
    }

    #[test]
    fn fk_straight_up_configuration() {
        // q1 = -90°: upper arm points straight up; q2 = 0 keeps the
        // forearm aligned with it.
        let q = [0.0, -std::f64::consts::FRAC_PI_2, 0.0, 0.0, 0.0, 0.0];
        let tool = Ur3eDevice::forward_kinematics(&q);
        assert!((tool.x - BASE.x).abs() < 1e-9);
        assert!((tool.z - (SHOULDER_HEIGHT + UPPER_ARM + FOREARM)).abs() < 1e-9);
    }

    #[test]
    fn fk_base_rotation_swings_tool_in_xy() {
        let mut q = [0.0, -0.8, 1.2, 0.0, 0.0, 0.0];
        let a = Ur3eDevice::forward_kinematics(&q);
        q[0] = std::f64::consts::FRAC_PI_2;
        let b = Ur3eDevice::forward_kinematics(&q);
        assert!((a.z - b.z).abs() < 1e-9, "base rotation keeps height");
        assert!((a.distance_to(BASE) - b.distance_to(BASE)).abs() < 1.0);
    }

    #[test]
    fn linear_move_duration_matches_velocity() {
        let (mut arm, mut lab, mut rng) = setup();
        let start = lab.ur3e_position;
        let target = Location::new(start.x, start.y + 200.0, start.z);
        let cmd = Command::new(
            CommandType::MoveToLocation,
            vec![Value::from(target), Value::Float(100.0)],
        );
        let o = arm.execute(&cmd, &mut lab, &mut rng).unwrap();
        assert!((o.busy_for.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn move_requires_connection() {
        let mut arm = Ur3eDevice::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cmd = Command::new(
            CommandType::MoveToLocation,
            vec![Value::Location {
                x: 700.0,
                y: 0.0,
                z: 200.0,
            }],
        );
        assert!(arm.execute(&cmd, &mut lab, &mut rng).is_err());
    }

    #[test]
    fn velocity_out_of_range_is_rejected() {
        let (mut arm, mut lab, mut rng) = setup();
        let cmd = Command::new(
            CommandType::MoveToLocation,
            vec![
                Value::Location {
                    x: 700.0,
                    y: 0.0,
                    z: 200.0,
                },
                Value::Float(5000.0),
            ],
        );
        let err = arm.execute(&cmd, &mut lab, &mut rng).unwrap_err();
        assert!(matches!(err, DeviceFault::InvalidArgument { .. }));
    }

    #[test]
    fn move_joints_times_by_largest_joint_delta() {
        let (mut arm, mut lab, mut rng) = setup();
        let mut target = arm.joints();
        target[0] += 1.05; // exactly one second at JOINT_SPEED
        let cmd = Command::new(CommandType::MoveJoints, vec![Value::Joints(target)]);
        let o = arm.execute(&cmd, &mut lab, &mut rng).unwrap();
        assert!((o.busy_for.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(arm.joints(), target);
    }

    #[test]
    fn open_gripper_drops_payload() {
        let (mut arm, mut lab, mut rng) = setup();
        arm.execute(
            &Command::nullary(CommandType::CloseGripper),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        arm.set_payload_g(500.0);
        assert_eq!(arm.payload_g(), 500.0);
        arm.execute(
            &Command::nullary(CommandType::OpenGripper),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        assert_eq!(arm.payload_g(), 0.0);
        assert!(arm.gripper_open());
    }

    #[test]
    fn pass_by_open_quantos_door_collides() {
        let (mut arm, mut lab, mut rng) = setup();
        lab.quantos_door_open = true;
        // Start on the far side of the door sweep, drive through it to a
        // point that is not inside the Quantos.
        lab.ur3e_position = Location::new(800.0, 230.0, 100.0);
        let cmd = Command::new(
            CommandType::MoveToLocation,
            vec![Value::Location {
                x: 500.0,
                y: 230.0,
                z: 100.0,
            }],
        );
        let err = arm.execute(&cmd, &mut lab, &mut rng).unwrap_err();
        assert!(matches!(err, DeviceFault::Collision { .. }), "{err}");
    }

    #[test]
    fn move_circular_sums_both_legs() {
        let (mut arm, mut lab, mut rng) = setup();
        let start = lab.ur3e_position;
        let via = Location::new(start.x, start.y + 100.0, start.z);
        let end = Location::new(start.x, start.y + 100.0, start.z + 100.0);
        let cmd = Command::new(
            CommandType::MoveCircular,
            vec![Value::from(via), Value::from(end), Value::Float(100.0)],
        );
        let o = arm.execute(&cmd, &mut lab, &mut rng).unwrap();
        assert!((o.busy_for.as_secs_f64() - 2.0).abs() < 1e-6);
        assert_eq!(lab.ur3e_position, end);
    }

    #[test]
    fn foreign_command_is_rejected() {
        let (mut arm, mut lab, mut rng) = setup();
        let err = arm
            .execute(&Command::nullary(CommandType::Home), &mut lab, &mut rng)
            .unwrap_err();
        assert!(err.to_string().contains("C9"));
    }
}
