//! Simulators for the five Hein Lab CPS devices.
//!
//! The paper's analyses consume *traces* of the communication between
//! the lab computer and the devices; this crate provides the devices
//! themselves as faithful state machines so the rest of the workspace
//! can regenerate RAD-shaped traces without the physical lab.
//!
//! Each device implements [`Device`]: it accepts a [`rad_core::Command`]
//! addressed to it, validates arguments against its grammar, advances
//! its internal state, and reports an [`Outcome`] — the logged return
//! value plus how long the command occupies the device in simulated
//! time. Motion commands additionally interact with the shared
//! [`LabState`] geometry, which is how crashes (the anomalies of §IV)
//! arise: e.g. an arm moving into the Quantos dock while the Quantos
//! front door is open raises [`rad_core::DeviceFault::Collision`].
//!
//! # Examples
//!
//! ```
//! use rad_core::{Command, CommandType, Value};
//! use rad_devices::LabRig;
//!
//! let mut rig = LabRig::new(42);
//! rig.execute(&Command::nullary(CommandType::InitIka))
//!     .expect("connecting to an idle IKA succeeds");
//! let outcome = rig
//!     .execute(&Command::nullary(CommandType::IkaReadDeviceName))
//!     .expect("query cannot fail once connected");
//! assert_eq!(outcome.return_value, Value::Str("C-MAG HS 7".into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c9;
pub mod geometry;
pub mod ika;
pub mod quantos;
pub mod rig;
pub mod tecan;
pub mod ur3e;

use rad_core::{Command, DeviceFault, DeviceId, SimDuration, Value};
use rand::RngCore;

pub use c9::C9;
pub use geometry::{LabState, Location, Zone};
pub use ika::Ika;
pub use quantos::Quantos;
pub use rig::LabRig;
pub use tecan::Tecan;
pub use ur3e::Ur3eDevice;

/// Result of successfully executing one command on a device.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The value the device returned (logged in the trace object).
    pub return_value: Value,
    /// How long the device is busy executing the command. Queries are
    /// near-instant; arm motions take seconds.
    pub busy_for: SimDuration,
}

impl Outcome {
    /// An outcome returning `value` after `busy_for` of device time.
    pub fn new(return_value: Value, busy_for: SimDuration) -> Self {
        Outcome {
            return_value,
            busy_for,
        }
    }

    /// A near-instant outcome returning `value` (used by queries; the
    /// transport latency is added separately by the middlebox).
    pub fn instant(return_value: Value) -> Self {
        Outcome {
            return_value,
            busy_for: SimDuration::ZERO,
        }
    }
}

/// A simulated CPS device.
///
/// Implementations are sequential: the caller (the [`LabRig`] or the
/// middlebox server loop) serializes command execution, mirroring the
/// single RPC server thread of the original RATracer deployment.
pub trait Device: Send {
    /// Identity of this device instance.
    fn id(&self) -> DeviceId;

    /// Executes `command`, mutating device state and the shared lab
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceFault`] when the command is malformed, invalid
    /// in the current state, or causes a collision. The fault string is
    /// what RATracer would log as the exception.
    fn execute(
        &mut self,
        command: &Command,
        lab: &mut LabState,
        rng: &mut dyn RngCore,
    ) -> Result<Outcome, DeviceFault>;

    /// Restores the device to its power-on state. Does not touch the
    /// shared lab geometry.
    fn reset(&mut self);
}

/// Validates that `command` is addressed to device `id`, returning the
/// canonical wrong-device fault otherwise.
///
/// # Errors
///
/// Returns [`DeviceFault::InvalidState`] naming both devices when the
/// command belongs to a different device.
pub fn check_routing(id: DeviceId, command: &Command) -> Result<(), DeviceFault> {
    if command.device() == id.kind() {
        Ok(())
    } else {
        Err(DeviceFault::InvalidState {
            reason: format!(
                "command {} belongs to {} but reached {}",
                command.command_type(),
                command.device(),
                id.kind()
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{CommandType, DeviceKind};

    #[test]
    fn check_routing_accepts_own_commands() {
        let id = DeviceId::primary(DeviceKind::Tecan);
        assert!(check_routing(id, &Command::nullary(CommandType::TecanGetStatus)).is_ok());
    }

    #[test]
    fn check_routing_rejects_foreign_commands() {
        let id = DeviceId::primary(DeviceKind::Ika);
        let err = check_routing(id, &Command::nullary(CommandType::TecanGetStatus)).unwrap_err();
        assert!(err.to_string().contains("Tecan"));
    }

    #[test]
    fn outcome_instant_is_zero_duration() {
        let o = Outcome::instant(Value::Unit);
        assert_eq!(o.busy_for, SimDuration::ZERO);
    }
}
