//! The C9: North Robotics N9 four-axis arm plus the Fisherbrand
//! mini-centrifuge, both driven through the N9 controller box.
//!
//! The controller speaks a terse four-letter serial protocol (`ARM`,
//! `MVNG`, `CURR`, ...; see Fig. 5(a)). The simulator reproduces the
//! protocol semantics that matter for the dataset:
//!
//! - `ARM`/`MOVE`/`HOME` are motions: they take simulated time
//!   proportional to distance over the configured speed, move the shared
//!   [`LabState::n9_position`], and can collide.
//! - `MVNG` is the completion poll. The Hein Lab software busy-waits on
//!   it after issuing a motion, which is what produces the
//!   `ARM MVNG MVNG ...` n-grams of Fig. 5(b). The simulator reproduces
//!   this by answering `true` for a number of polls proportional to the
//!   duration of the last motion.
//! - `OUTP` toggles the centrifuge; `GRIP` toggles the gripper.

use rad_core::{Command, CommandType, DeviceFault, DeviceId, DeviceKind, SimDuration, Value};
use rand::Rng;
use rand::RngCore;

use crate::geometry::{deck, LabState, Location};
use crate::{check_routing, Device, Outcome};

/// Default N9 linear speed, mm/s.
const DEFAULT_SPEED: f64 = 150.0;
/// Maximum accepted speed, mm/s.
const MAX_SPEED: f64 = 500.0;
/// How many `MVNG` polls a motion of one second keeps answering `true`.
const POLLS_PER_SECOND: f64 = 2.0;

/// Simulated C9 (N9 arm + centrifuge).
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType, Value};
/// use rad_devices::{Device, LabState, C9};
/// use rand::SeedableRng;
///
/// let mut c9 = C9::new();
/// let mut lab = LabState::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// c9.execute(&Command::nullary(CommandType::InitC9), &mut lab, &mut rng)?;
/// let homed = c9.execute(&Command::nullary(CommandType::Home), &mut lab, &mut rng)?;
/// assert!(homed.busy_for.as_secs_f64() > 0.0);
/// # Ok::<(), rad_core::DeviceFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct C9 {
    id: DeviceId,
    initialized: bool,
    homed: bool,
    speed_mm_s: f64,
    elbow_bias: i64,
    joint_length_mm: f64,
    gripper_closed: bool,
    centrifuge_on: bool,
    mvng_polls_remaining: u32,
    axis_targets: [f64; 4],
}

impl C9 {
    /// A powered-on but uninitialized C9.
    pub fn new() -> Self {
        C9 {
            id: DeviceId::primary(DeviceKind::C9),
            initialized: false,
            homed: false,
            speed_mm_s: DEFAULT_SPEED,
            elbow_bias: 0,
            joint_length_mm: 170.0,
            gripper_closed: false,
            centrifuge_on: false,
            mvng_polls_remaining: 0,
            axis_targets: [0.0; 4],
        }
    }

    /// Whether the arm has been homed since power-on.
    pub fn is_homed(&self) -> bool {
        self.homed
    }

    /// Whether the centrifuge output is currently on.
    pub fn centrifuge_on(&self) -> bool {
        self.centrifuge_on
    }

    /// Whether the gripper is closed.
    pub fn gripper_closed(&self) -> bool {
        self.gripper_closed
    }

    /// Configured linear speed in mm/s.
    pub fn speed(&self) -> f64 {
        self.speed_mm_s
    }

    fn require_init(&self) -> Result<(), DeviceFault> {
        if self.initialized {
            Ok(())
        } else {
            Err(DeviceFault::InvalidState {
                reason: "c9 controller not initialized".into(),
            })
        }
    }

    fn require_homed(&self) -> Result<(), DeviceFault> {
        self.require_init()?;
        if self.homed {
            Ok(())
        } else {
            Err(DeviceFault::InvalidState {
                reason: "n9 arm not homed".into(),
            })
        }
    }

    fn start_motion(&mut self, duration: SimDuration) {
        self.mvng_polls_remaining =
            (duration.as_secs_f64() * POLLS_PER_SECOND).ceil().max(1.0) as u32;
    }

    fn move_to(
        &mut self,
        lab: &mut LabState,
        target: Location,
    ) -> Result<SimDuration, DeviceFault> {
        if let Some(obstacle) = lab.collision_on_path(lab.n9_position, target) {
            // The arm stops where it hit; the controller raises a
            // protective stop.
            lab.n9_position = lab.n9_position.lerp(target, 0.5);
            return Err(DeviceFault::Collision {
                obstacle: obstacle.to_owned(),
            });
        }
        let distance = lab.n9_position.distance_to(target);
        lab.n9_position = target;
        let duration = SimDuration::from_secs_f64(distance / self.speed_mm_s);
        self.start_motion(duration);
        Ok(duration)
    }

    fn location_arg(command: &Command) -> Result<Location, DeviceFault> {
        match command.args().first() {
            Some(Value::Location { x, y, z }) => {
                crate::geometry::validate_workspace(Location::new(*x, *y, *z))
            }
            other => Err(DeviceFault::InvalidArgument {
                reason: format!("expected location argument, got {other:?}"),
            }),
        }
    }
}

impl Default for C9 {
    fn default() -> Self {
        C9::new()
    }
}

impl Device for C9 {
    fn id(&self) -> DeviceId {
        self.id
    }

    fn execute(
        &mut self,
        command: &Command,
        lab: &mut LabState,
        rng: &mut dyn RngCore,
    ) -> Result<Outcome, DeviceFault> {
        check_routing(self.id, command)?;
        match command.command_type() {
            CommandType::InitC9 => {
                self.initialized = true;
                Ok(Outcome::new(Value::Unit, SimDuration::from_millis(300)))
            }
            CommandType::Home => {
                self.require_init()?;
                let duration = self.move_to(lab, deck::N9_HOME)?;
                self.homed = true;
                self.axis_targets = [0.0; 4];
                // Homing runs each axis to its limit switch: slower than
                // the plain travel time.
                Ok(Outcome::new(
                    Value::Unit,
                    duration + SimDuration::from_secs(3),
                ))
            }
            CommandType::Arm => {
                self.require_homed()?;
                let target = Self::location_arg(command)?;
                let duration = self.move_to(lab, target)?;
                Ok(Outcome::new(Value::Unit, duration))
            }
            CommandType::Move => {
                self.require_homed()?;
                let axis = command
                    .args()
                    .first()
                    .and_then(Value::as_int)
                    .ok_or_else(|| DeviceFault::InvalidArgument {
                        reason: "MOVE needs an axis index".into(),
                    })?;
                if !(0..4).contains(&axis) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("axis {axis} out of range 0..4"),
                    });
                }
                let target = command
                    .args()
                    .get(1)
                    .and_then(Value::as_float)
                    .ok_or_else(|| DeviceFault::InvalidArgument {
                        reason: "MOVE needs a target value".into(),
                    })?;
                if !target.is_finite() || target.abs() > 1e4 {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("axis target {target} out of range"),
                    });
                }
                let delta = (target - self.axis_targets[axis as usize]).abs();
                self.axis_targets[axis as usize] = target;
                let duration = SimDuration::from_secs_f64(delta / self.speed_mm_s);
                self.start_motion(duration);
                Ok(Outcome::new(Value::Unit, duration))
            }
            CommandType::Mvng => {
                self.require_init()?;
                let moving = self.mvng_polls_remaining > 0;
                self.mvng_polls_remaining = self.mvng_polls_remaining.saturating_sub(1);
                Ok(Outcome::instant(Value::Bool(moving)))
            }
            CommandType::Curr => {
                self.require_init()?;
                // Holding current plus a little measurement noise; the
                // detailed current model lives in `rad-power`.
                let base = if self.mvng_polls_remaining > 0 {
                    1.2
                } else {
                    0.15
                };
                let noise = rng.gen_range(-0.02..0.02);
                Ok(Outcome::instant(Value::Float(base + noise)))
            }
            CommandType::Sped => {
                self.require_init()?;
                let speed = command
                    .args()
                    .first()
                    .and_then(Value::as_float)
                    .ok_or_else(|| DeviceFault::InvalidArgument {
                        reason: "SPED needs a speed".into(),
                    })?;
                if !(1.0..=MAX_SPEED).contains(&speed) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("speed {speed} outside 1..={MAX_SPEED} mm/s"),
                    });
                }
                self.speed_mm_s = speed;
                Ok(Outcome::instant(Value::Unit))
            }
            CommandType::Bias => {
                self.require_init()?;
                let bias = command
                    .args()
                    .first()
                    .and_then(Value::as_int)
                    .ok_or_else(|| DeviceFault::InvalidArgument {
                        reason: "BIAS needs an integer".into(),
                    })?;
                if !(-1..=1).contains(&bias) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("elbow bias {bias} must be -1, 0, or 1"),
                    });
                }
                self.elbow_bias = bias;
                Ok(Outcome::instant(Value::Unit))
            }
            CommandType::Jlen => {
                self.require_init()?;
                let len = command
                    .args()
                    .first()
                    .and_then(Value::as_float)
                    .ok_or_else(|| DeviceFault::InvalidArgument {
                        reason: "JLEN needs a length".into(),
                    })?;
                if !(50.0..=400.0).contains(&len) {
                    return Err(DeviceFault::InvalidArgument {
                        reason: format!("joint length {len} outside 50..=400 mm"),
                    });
                }
                self.joint_length_mm = len;
                Ok(Outcome::instant(Value::Unit))
            }
            CommandType::Outp => {
                self.require_init()?;
                let on = command
                    .args()
                    .first()
                    .and_then(Value::as_bool)
                    .unwrap_or(!self.centrifuge_on);
                self.centrifuge_on = on;
                Ok(Outcome::new(Value::Bool(on), SimDuration::from_millis(50)))
            }
            CommandType::Grip => {
                self.require_init()?;
                let close = command
                    .args()
                    .first()
                    .and_then(Value::as_bool)
                    .unwrap_or(!self.gripper_closed);
                self.gripper_closed = close;
                Ok(Outcome::new(
                    Value::Bool(close),
                    SimDuration::from_millis(400),
                ))
            }
            CommandType::Temp => {
                self.require_init()?;
                let temp = 31.0 + rng.gen_range(-0.5..0.5);
                Ok(Outcome::instant(Value::Float(temp)))
            }
            other => Err(DeviceFault::InvalidState {
                reason: format!("unroutable command {other} reached c9"),
            }),
        }
    }

    fn reset(&mut self) {
        *self = C9 {
            id: self.id,
            ..C9::new()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (C9, LabState, ChaCha8Rng) {
        let mut c9 = C9::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        c9.execute(&Command::nullary(CommandType::InitC9), &mut lab, &mut rng)
            .unwrap();
        c9.execute(&Command::nullary(CommandType::Home), &mut lab, &mut rng)
            .unwrap();
        (c9, lab, rng)
    }

    fn arm_to(x: f64, y: f64, z: f64) -> Command {
        Command::new(CommandType::Arm, vec![Value::Location { x, y, z }])
    }

    #[test]
    fn motion_requires_homing() {
        let mut c9 = C9::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        c9.execute(&Command::nullary(CommandType::InitC9), &mut lab, &mut rng)
            .unwrap();
        let err = c9
            .execute(&arm_to(100.0, 0.0, 100.0), &mut lab, &mut rng)
            .unwrap_err();
        assert!(err.to_string().contains("not homed"));
    }

    #[test]
    fn everything_requires_init() {
        let mut c9 = C9::new();
        let mut lab = LabState::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = c9
            .execute(&Command::nullary(CommandType::Mvng), &mut lab, &mut rng)
            .unwrap_err();
        assert!(err.to_string().contains("not initialized"));
    }

    #[test]
    fn motion_duration_scales_with_distance_and_speed() {
        let (mut c9, mut lab, mut rng) = setup();
        let o1 = c9
            .execute(&arm_to(0.0, 150.0, 200.0), &mut lab, &mut rng)
            .unwrap();
        assert!(
            (o1.busy_for.as_secs_f64() - 1.0).abs() < 1e-6,
            "150mm at 150mm/s"
        );

        c9.execute(
            &Command::new(CommandType::Sped, vec![Value::Float(300.0)]),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        let o2 = c9
            .execute(&arm_to(0.0, 0.0, 200.0), &mut lab, &mut rng)
            .unwrap();
        assert!(
            (o2.busy_for.as_secs_f64() - 0.5).abs() < 1e-6,
            "150mm at 300mm/s"
        );
    }

    #[test]
    fn mvng_polls_true_while_moving_then_false() {
        let (mut c9, mut lab, mut rng) = setup();
        c9.execute(&arm_to(0.0, 300.0, 200.0), &mut lab, &mut rng)
            .unwrap();
        let mvng = Command::nullary(CommandType::Mvng);
        let mut saw_true = 0;
        loop {
            let o = c9.execute(&mvng, &mut lab, &mut rng).unwrap();
            match o.return_value {
                Value::Bool(true) => saw_true += 1,
                Value::Bool(false) => break,
                other => panic!("MVNG returned {other}"),
            }
        }
        assert!(
            saw_true >= 2,
            "a 2s motion answers several polls, saw {saw_true}"
        );
    }

    #[test]
    fn arm_updates_shared_position() {
        let (mut c9, mut lab, mut rng) = setup();
        c9.execute(&arm_to(250.0, 150.0, 60.0), &mut lab, &mut rng)
            .unwrap();
        assert_eq!(lab.n9_position, Location::new(250.0, 150.0, 60.0));
    }

    #[test]
    fn driving_into_closed_quantos_is_a_collision() {
        let (mut c9, mut lab, mut rng) = setup();
        let err = c9
            .execute(&arm_to(650.0, 280.0, 100.0), &mut lab, &mut rng)
            .unwrap_err();
        assert!(matches!(err, DeviceFault::Collision { .. }), "{err}");
    }

    #[test]
    fn speed_validation_rejects_out_of_range() {
        let (mut c9, mut lab, mut rng) = setup();
        for bad in [0.0, -10.0, 1000.0] {
            let err = c9
                .execute(
                    &Command::new(CommandType::Sped, vec![Value::Float(bad)]),
                    &mut lab,
                    &mut rng,
                )
                .unwrap_err();
            assert!(matches!(err, DeviceFault::InvalidArgument { .. }));
        }
    }

    #[test]
    fn outp_and_grip_toggle_without_args() {
        let (mut c9, mut lab, mut rng) = setup();
        assert!(!c9.centrifuge_on());
        c9.execute(&Command::nullary(CommandType::Outp), &mut lab, &mut rng)
            .unwrap();
        assert!(c9.centrifuge_on());
        c9.execute(&Command::nullary(CommandType::Outp), &mut lab, &mut rng)
            .unwrap();
        assert!(!c9.centrifuge_on());

        c9.execute(
            &Command::new(CommandType::Grip, vec![Value::Bool(true)]),
            &mut lab,
            &mut rng,
        )
        .unwrap();
        assert!(c9.gripper_closed());
    }

    #[test]
    fn move_axis_validates_axis_index() {
        let (mut c9, mut lab, mut rng) = setup();
        let err = c9
            .execute(
                &Command::new(CommandType::Move, vec![Value::Int(7), Value::Float(10.0)]),
                &mut lab,
                &mut rng,
            )
            .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn reset_returns_to_power_on_state() {
        let (mut c9, mut lab, mut rng) = setup();
        c9.execute(&Command::nullary(CommandType::Outp), &mut lab, &mut rng)
            .unwrap();
        c9.reset();
        assert!(!c9.is_homed());
        assert!(!c9.centrifuge_on());
        assert!(c9
            .execute(&Command::nullary(CommandType::Mvng), &mut lab, &mut rng)
            .is_err());
    }

    #[test]
    fn curr_reflects_motion_state() {
        let (mut c9, mut lab, mut rng) = setup();
        // Drain the homing completion polls so the arm reads as idle.
        while c9
            .execute(&Command::nullary(CommandType::Mvng), &mut lab, &mut rng)
            .unwrap()
            .return_value
            == Value::Bool(true)
        {}
        let idle = c9
            .execute(&Command::nullary(CommandType::Curr), &mut lab, &mut rng)
            .unwrap()
            .return_value
            .as_float()
            .unwrap();
        c9.execute(&arm_to(0.0, 300.0, 200.0), &mut lab, &mut rng)
            .unwrap();
        let moving = c9
            .execute(&Command::nullary(CommandType::Curr), &mut lab, &mut rng)
            .unwrap()
            .return_value
            .as_float()
            .unwrap();
        assert!(moving > idle, "current is higher while moving");
    }
}
