//! The 52-command vocabulary of the RAD command dataset.
//!
//! Fig. 5(a) of the paper enumerates 52 command types across the five
//! logical devices. [`CommandType`] reconstructs that vocabulary: each
//! variant knows its owning [`DeviceKind`], its wire mnemonic (the short
//! token that appears on the serial/TCP link, e.g. `"Q"` for the Tecan
//! status poll), a human-readable name, and a coarse [`CommandCategory`]
//! used by the device simulators to decide execution semantics.
//!
//! A [`Command`] is a concrete invocation: a command type plus its
//! positional arguments.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::device::DeviceKind;
use crate::error::RadError;
use crate::value::Value;

/// Coarse behavioural class of a command, used by the simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandCategory {
    /// Constructor / connection setup (`__init__` in the Python stack).
    Init,
    /// Pure read of device state; never changes state.
    Query,
    /// Robot-arm or axis motion; takes simulated time proportional to the
    /// move and can collide.
    Motion,
    /// Non-motion actuation (start/stop heater, toggle centrifuge, dose,
    /// dispense, grip).
    Actuation,
    /// Configuration write (set speed, set velocity, set home position).
    Config,
}

impl fmt::Display for CommandCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandCategory::Init => "init",
            CommandCategory::Query => "query",
            CommandCategory::Motion => "motion",
            CommandCategory::Actuation => "actuation",
            CommandCategory::Config => "config",
        };
        f.write_str(s)
    }
}

macro_rules! command_types {
    ($( $variant:ident => ($device:ident, $mnemonic:literal, $readable:literal, $category:ident) ),+ $(,)?) => {
        /// One of the 52 command types observed in the RAD command dataset.
        ///
        /// # Examples
        ///
        /// ```
        /// use rad_core::{CommandType, DeviceKind, CommandCategory};
        ///
        /// let ct = CommandType::TecanGetStatus;
        /// assert_eq!(ct.device(), DeviceKind::Tecan);
        /// assert_eq!(ct.mnemonic(), "Q");
        /// assert_eq!(ct.readable(), "get_status");
        /// assert_eq!(ct.category(), CommandCategory::Query);
        /// ```
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub enum CommandType {
            $(
                #[doc = concat!("`", $mnemonic, "` (", $readable, ") on the ", stringify!($device), ".")]
                $variant,
            )+
        }

        impl CommandType {
            /// Every command type, in Fig. 5(a) order (grouped by device).
            pub const fn all() -> &'static [CommandType] {
                &[ $( CommandType::$variant, )+ ]
            }

            /// The device this command type is addressed to.
            pub const fn device(self) -> DeviceKind {
                match self {
                    $( CommandType::$variant => DeviceKind::$device, )+
                }
            }

            /// Wire mnemonic: the token that appears on the transport
            /// (serial opcode, method name, or NAMUR command).
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $( CommandType::$variant => $mnemonic, )+
                }
            }

            /// Human-readable name, as given in parentheses in Fig. 5(a).
            pub const fn readable(self) -> &'static str {
                match self {
                    $( CommandType::$variant => $readable, )+
                }
            }

            /// Coarse behavioural category.
            pub const fn category(self) -> CommandCategory {
                match self {
                    $( CommandType::$variant => CommandCategory::$category, )+
                }
            }
        }
    };
}

command_types! {
    // ---- UR3e (6) -------------------------------------------------------
    MoveJoints       => (Ur3e, "move_joints", "move_joints", Motion),
    MoveToLocation   => (Ur3e, "move_to_location", "move_to_location", Motion),
    OpenGripper      => (Ur3e, "open_gripper", "open_gripper", Actuation),
    InitUr3Arm       => (Ur3e, "__init__(UR3Arm)", "init_ur3_arm", Init),
    CloseGripper     => (Ur3e, "close_gripper", "close_gripper", Actuation),
    MoveCircular     => (Ur3e, "move_circular", "move_circular", Motion),

    // ---- Tecan Cavro XLP 6000 (11) --------------------------------------
    TecanGetStatus        => (Tecan, "Q", "get_status", Query),
    TecanSetDistance      => (Tecan, "P", "set_distance", Config),
    TecanSetVelocity      => (Tecan, "V", "set_velocity", Config),
    TecanSetValvePosition => (Tecan, "I", "set_valve_position", Actuation),
    TecanSetPosition      => (Tecan, "A", "set_position", Motion),
    InitTecan             => (Tecan, "__init__(Tecan)", "init_tecan", Init),
    TecanStopBatch        => (Tecan, "G", "stop_batch_command", Actuation),
    TecanStartBatch       => (Tecan, "g", "start_batch_command", Actuation),
    TecanSetDeadVolume    => (Tecan, "k", "set_dead_volume", Config),
    TecanSetSlopeCode     => (Tecan, "L", "set_slope_code", Config),
    TecanSetHomePosition  => (Tecan, "Z", "set_home_position", Config),

    // ---- IKA C-Mag HS 7 (13) --------------------------------------------
    IkaReadStirringSpeed  => (Ika, "IN_PV_4", "read_stirring_speed", Query),
    IkaReadRatedSpeed     => (Ika, "IN_SP_4", "read_rated_speed", Query),
    IkaReadDeviceName     => (Ika, "IN_NAME", "read_device_name", Query),
    IkaReadRatedTemp      => (Ika, "IN_SP_1", "read_rated_temperature", Query),
    IkaStopMotor          => (Ika, "STOP_4", "stop_the_motor", Actuation),
    IkaStopHeater         => (Ika, "STOP_1", "stop_the_heater", Actuation),
    IkaReadExternalSensor => (Ika, "IN_PV_1", "read_external_sensor", Query),
    IkaReadHotplateSensor => (Ika, "IN_PV_2", "read_hotplate_sensor", Query),
    InitIka               => (Ika, "__init__(IKA)", "init_ika", Init),
    IkaSetSpeed           => (Ika, "OUT_SP_4", "set_speed", Config),
    IkaStartMotor         => (Ika, "START_4", "start_the_motor", Actuation),
    IkaStartHeater        => (Ika, "START_1", "start_the_heater", Actuation),
    IkaSetTemperature     => (Ika, "OUT_SP_1", "set_temperature", Config),

    // ---- C9: N9 arm + centrifuge through the N9 controller (12) ---------
    Mvng      => (C9, "MVNG", "get_axes_moving_states", Query),
    Outp      => (C9, "OUTP", "toggle_centrifuge", Actuation),
    Arm       => (C9, "ARM", "move_arm", Motion),
    Bias      => (C9, "BIAS", "set_elbow_bias", Config),
    Curr      => (C9, "CURR", "get_axis_current", Query),
    Sped      => (C9, "SPED", "set_speed", Config),
    InitC9    => (C9, "__init__(C9)", "init_c9", Init),
    Home      => (C9, "HOME", "home_n9", Motion),
    Jlen      => (C9, "JLEN", "set_joint_length", Config),
    Move      => (C9, "MOVE", "move_axis", Motion),
    Grip      => (C9, "GRIP", "toggle_gripper", Actuation),
    Temp      => (C9, "TEMP", "read_controller_temperature", Query),

    // ---- Quantos (incl. Arduino z-stepper) (10) --------------------------
    InitQuantos           => (Quantos, "__init__(Quantos)", "init_quantos", Init),
    FrontDoorPosition     => (Quantos, "front_door_position", "front_door_position", Actuation),
    HomeZStage            => (Quantos, "home_z_stage", "home_z_stage", Motion),
    ZeroBalance           => (Quantos, "zero", "zero_balance_reading", Actuation),
    SetHomeDirection      => (Quantos, "set_home_direction", "set_home_direction", Config),
    StartDosing           => (Quantos, "start_dosing", "start_dosing", Actuation),
    TargetMass            => (Quantos, "target_mass", "target_mass", Config),
    MoveZStage            => (Quantos, "move_z_stage", "move_z_stage", Motion),
    LockDosingPin         => (Quantos, "lock_dosing_pin_position", "lock_dosing_pin_position", Actuation),
    UnlockDosingPin       => (Quantos, "unlock_dosing_pin_position", "unlock_dosing_pin_position", Actuation),
}

impl CommandType {
    /// All command types belonging to `device`, in Fig. 5(a) order.
    ///
    /// # Examples
    ///
    /// ```
    /// use rad_core::{CommandType, DeviceKind};
    ///
    /// assert_eq!(CommandType::for_device(DeviceKind::Ur3e).len(), 6);
    /// assert_eq!(CommandType::for_device(DeviceKind::Ika).len(), 13);
    /// ```
    pub fn for_device(device: DeviceKind) -> Vec<CommandType> {
        CommandType::all()
            .iter()
            .copied()
            .filter(|c| c.device() == device)
            .collect()
    }

    /// Whether this is a constructor (`__init__`) token.
    pub const fn is_init(self) -> bool {
        matches!(self.category(), CommandCategory::Init)
    }

    /// Stable index of this command type within [`CommandType::all`],
    /// usable as a dense token id by the language models.
    ///
    /// O(1): the enum declares its variants in `all()` order, so the
    /// discriminant *is* the index.
    pub const fn token_id(self) -> usize {
        self as usize
    }

    /// Inverse of [`CommandType::token_id`].
    ///
    /// Returns `None` if `id` is out of range.
    pub fn from_token_id(id: usize) -> Option<CommandType> {
        CommandType::all().get(id).copied()
    }
}

impl fmt::Display for CommandType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for CommandType {
    type Err = RadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Mnemonics are unique per device but `set_speed`-style readable
        // names are not globally unique, so parsing goes via mnemonic only.
        // The table is built once; lookups on the tokenization hot path
        // are a single hash probe instead of a linear scan.
        static MNEMONICS: std::sync::OnceLock<
            std::collections::HashMap<&'static str, CommandType>,
        > = std::sync::OnceLock::new();
        MNEMONICS
            .get_or_init(|| {
                CommandType::all()
                    .iter()
                    .map(|&c| (c.mnemonic(), c))
                    .collect()
            })
            .get(s)
            .copied()
            .ok_or_else(|| RadError::UnknownCommand(s.to_owned()))
    }
}

/// A concrete command invocation: a [`CommandType`] plus positional
/// arguments.
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType, Value};
///
/// let cmd = Command::new(CommandType::TecanSetVelocity, vec![Value::Int(900)]);
/// assert_eq!(cmd.args().len(), 1);
/// assert_eq!(cmd.to_string(), "V(900)");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    command_type: CommandType,
    args: Vec<Value>,
}

impl Command {
    /// Creates a command with positional arguments.
    pub fn new(command_type: CommandType, args: Vec<Value>) -> Self {
        Command { command_type, args }
    }

    /// Creates an argument-less command.
    pub fn nullary(command_type: CommandType) -> Self {
        Command::new(command_type, Vec::new())
    }

    /// The command type.
    pub fn command_type(&self) -> CommandType {
        self.command_type
    }

    /// Positional arguments.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The device this command is addressed to.
    pub fn device(&self) -> DeviceKind {
        self.command_type.device()
    }

    /// Deconstructs into the command type and its arguments.
    pub fn into_parts(self) -> (CommandType, Vec<Value>) {
        (self.command_type, self.args)
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.command_type)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

impl From<CommandType> for Command {
    fn from(command_type: CommandType) -> Self {
        Command::nullary(command_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_52_command_types() {
        assert_eq!(CommandType::all().len(), 52);
    }

    #[test]
    fn per_device_counts_match_design() {
        assert_eq!(CommandType::for_device(DeviceKind::Ur3e).len(), 6);
        assert_eq!(CommandType::for_device(DeviceKind::Tecan).len(), 11);
        assert_eq!(CommandType::for_device(DeviceKind::Ika).len(), 13);
        assert_eq!(CommandType::for_device(DeviceKind::C9).len(), 12);
        assert_eq!(CommandType::for_device(DeviceKind::Quantos).len(), 10);
    }

    #[test]
    fn mnemonics_are_globally_unique() {
        let all = CommandType::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.mnemonic(), b.mnemonic(), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn every_device_has_exactly_one_init() {
        for device in DeviceKind::all() {
            let inits = CommandType::for_device(device)
                .into_iter()
                .filter(|c| c.is_init())
                .count();
            assert_eq!(inits, 1, "{device}");
        }
    }

    #[test]
    fn token_ids_round_trip() {
        for &ct in CommandType::all() {
            assert_eq!(CommandType::from_token_id(ct.token_id()), Some(ct));
        }
        assert_eq!(CommandType::from_token_id(52), None);
    }

    #[test]
    fn from_str_round_trips_mnemonics() {
        for &ct in CommandType::all() {
            let parsed: CommandType = ct.mnemonic().parse().unwrap();
            assert_eq!(parsed, ct);
        }
    }

    #[test]
    fn from_str_rejects_unknown() {
        assert!("SELF_DESTRUCT".parse::<CommandType>().is_err());
    }

    #[test]
    fn command_display_shows_args() {
        let cmd = Command::new(
            CommandType::Arm,
            vec![Value::Float(1.5), Value::Str("fast".into())],
        );
        assert_eq!(cmd.to_string(), "ARM(1.5, \"fast\")");
        assert_eq!(Command::nullary(CommandType::Mvng).to_string(), "MVNG()");
    }

    #[test]
    fn tecan_status_is_a_query_named_q() {
        // Fig. 5(b) calls out Q-runs (Q_Q, QQQ, ...) as the top Tecan n-grams.
        let q = CommandType::TecanGetStatus;
        assert_eq!(q.mnemonic(), "Q");
        assert_eq!(q.category(), CommandCategory::Query);
    }
}
