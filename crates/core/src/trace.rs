//! The trace-object schema of the RAD command dataset.
//!
//! Each [`TraceObject`] corresponds to one intercepted command instance:
//! RATracer logs the timestamp, intercepted function, arguments, return
//! value, and exception (Fig. 3 of the paper), and the curated dataset
//! additionally carries the procedure-run labels of §IV.

use std::borrow::Cow;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::command::{Command, CommandType};
use crate::device::DeviceId;
use crate::procedure::{Label, ProcedureKind, RunId};
use crate::time::{SimDuration, SimInstant};
use crate::value::Value;

/// Monotonic identifier of a trace object within a dataset.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace-{}", self.0)
    }
}

/// Which RATracer mode captured a trace object.
///
/// In DIRECT mode the middlebox only collects trace data while the lab
/// computer talks to the device directly; in REMOTE mode every command is
/// relayed through the middlebox; CLOUD is the Azure replay configuration
/// of the paper's footnote 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceMode {
    /// Middlebox traces passively; lab computer talks to the device.
    Direct,
    /// Middlebox relays commands between lab computer and device.
    Remote,
    /// Commands replayed against a cloud-hosted middlebox (footnote 1).
    Cloud,
}

impl fmt::Display for TraceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceMode::Direct => "DIRECT",
            TraceMode::Remote => "REMOTE",
            TraceMode::Cloud => "CLOUD",
        };
        f.write_str(s)
    }
}

/// An explicit marker for a command whose trace was lost to a
/// middlebox outage.
///
/// The paper's availability argument for the trusted middlebox cuts
/// both ways: when the middlebox is down, REMOTE-mode devices fall
/// back to talking to the hardware directly so the experiment
/// survives — but the interception point is gone and the trace object
/// is lost. A `TraceGap` makes that loss explicit in the dataset
/// instead of silently shrinking it: delivered traces plus gaps always
/// equal the command count a fault-free run would have produced.
///
/// # Examples
///
/// ```
/// use rad_core::{CommandType, DeviceId, DeviceKind, SimInstant, TraceGap, TraceMode};
///
/// let gap = TraceGap::new(
///     SimInstant::EPOCH,
///     DeviceId::primary(DeviceKind::C9),
///     CommandType::Arm,
///     TraceMode::Remote,
///     "middlebox unavailable",
/// );
/// assert_eq!(gap.intended_mode, TraceMode::Remote);
/// assert!(gap.run_id.is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGap {
    /// Simulated time at which the untraced command was issued.
    pub timestamp: SimInstant,
    /// The device the command went to (directly, bypassing the
    /// middlebox).
    pub device: DeviceId,
    /// The command type that executed without being traced.
    pub command: CommandType,
    /// The mode the device was configured for when the outage hit.
    pub intended_mode: TraceMode,
    /// Why the trace was lost (e.g. `"middlebox unavailable"`).
    ///
    /// The middlebox only ever emits a handful of fixed reasons, so
    /// this is a `Cow`: known reasons borrow a `'static` string and
    /// cost nothing per gap, while deserialized or ad-hoc reasons
    /// allocate. Serde sees a plain string either way.
    pub reason: Cow<'static, str>,
    /// Supervised run the command belonged to, if any — gaps inside a
    /// labelled run tell the analyst exactly which sequences are
    /// incomplete.
    pub run_id: Option<RunId>,
}

impl TraceGap {
    /// A gap marker with no run attribution.
    pub fn new(
        timestamp: SimInstant,
        device: DeviceId,
        command: CommandType,
        intended_mode: TraceMode,
        reason: impl Into<Cow<'static, str>>,
    ) -> Self {
        TraceGap {
            timestamp,
            device,
            command,
            intended_mode,
            reason: reason.into(),
            run_id: None,
        }
    }

    /// Interns `reason` against the fixed vocabulary the middlebox
    /// emits, borrowing the `'static` string when it matches and
    /// allocating otherwise. Use when the reason arrives as a
    /// short-lived `&str`.
    pub fn intern_reason(reason: &str) -> Cow<'static, str> {
        const KNOWN: &[&str] = &["middlebox unavailable", "rpc retries exhausted"];
        match KNOWN.iter().find(|k| **k == reason) {
            Some(k) => Cow::Borrowed(k),
            None => Cow::Owned(reason.to_owned()),
        }
    }

    /// Attributes the gap to a supervised run.
    #[must_use]
    pub fn with_run(mut self, run_id: RunId) -> Self {
        self.run_id = Some(run_id);
        self
    }
}

/// One intercepted command instance, as logged by the middlebox.
///
/// Construct with [`TraceObject::builder`].
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType, DeviceId, DeviceKind, SimInstant, TraceId, TraceMode,
///                TraceObject, Value};
///
/// let trace = TraceObject::builder(
///         TraceId(0),
///         SimInstant::EPOCH,
///         DeviceId::primary(DeviceKind::Tecan),
///         Command::nullary(CommandType::TecanGetStatus),
///     )
///     .mode(TraceMode::Remote)
///     .return_value(Value::Str("idle".into()))
///     .build();
/// assert!(trace.exception().is_none());
/// assert_eq!(trace.command_type(), CommandType::TecanGetStatus);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceObject {
    id: TraceId,
    timestamp: SimInstant,
    device: DeviceId,
    command: Command,
    mode: TraceMode,
    return_value: Value,
    exception: Option<String>,
    response_time: SimDuration,
    procedure: ProcedureKind,
    run_id: Option<RunId>,
    label: Label,
}

impl TraceObject {
    /// Starts building a trace object for `command` on `device` at
    /// `timestamp`.
    pub fn builder(
        id: TraceId,
        timestamp: SimInstant,
        device: DeviceId,
        command: Command,
    ) -> TraceObjectBuilder {
        TraceObjectBuilder {
            inner: TraceObject {
                id,
                timestamp,
                device,
                command,
                mode: TraceMode::Direct,
                return_value: Value::Unit,
                exception: None,
                response_time: SimDuration::ZERO,
                procedure: ProcedureKind::Unknown,
                run_id: None,
                label: Label::Unknown,
            },
        }
    }

    /// Dataset-wide identifier.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Simulated time at which the command was issued.
    pub fn timestamp(&self) -> SimInstant {
        self.timestamp
    }

    /// Target device instance.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The intercepted command (type + arguments).
    pub fn command(&self) -> &Command {
        &self.command
    }

    /// Shorthand for `self.command().command_type()`.
    pub fn command_type(&self) -> CommandType {
        self.command.command_type()
    }

    /// Capture mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Logged return value ([`Value::Unit`] when the call returned
    /// nothing or raised).
    pub fn return_value(&self) -> &Value {
        &self.return_value
    }

    /// Logged exception message, if the call raised.
    pub fn exception(&self) -> Option<&str> {
        self.exception.as_deref()
    }

    /// End-to-end response time observed by the lab computer.
    pub fn response_time(&self) -> SimDuration {
        self.response_time
    }

    /// Procedure type this command belongs to (`Unknown` for
    /// unsupervised activity).
    pub fn procedure(&self) -> ProcedureKind {
        self.procedure
    }

    /// Supervised run id, if the command belongs to a supervised run.
    pub fn run_id(&self) -> Option<RunId> {
        self.run_id
    }

    /// Ground-truth label inherited from the run.
    pub fn label(&self) -> Label {
        self.label
    }

    /// Deconstructs into raw columns for [`crate::batch::TraceBatch`].
    /// Crate-internal so the batch can round-trip field combinations
    /// the public builder cannot express (e.g. a procedure without a
    /// run id).
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_raw(
        self,
    ) -> (
        TraceId,
        SimInstant,
        DeviceId,
        Command,
        TraceMode,
        Value,
        Option<String>,
        SimDuration,
        ProcedureKind,
        Option<RunId>,
        Label,
    ) {
        (
            self.id,
            self.timestamp,
            self.device,
            self.command,
            self.mode,
            self.return_value,
            self.exception,
            self.response_time,
            self.procedure,
            self.run_id,
            self.label,
        )
    }

    /// Rebuilds a trace object from raw columns. Inverse of
    /// [`TraceObject::into_raw`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw(
        id: TraceId,
        timestamp: SimInstant,
        device: DeviceId,
        command: Command,
        mode: TraceMode,
        return_value: Value,
        exception: Option<String>,
        response_time: SimDuration,
        procedure: ProcedureKind,
        run_id: Option<RunId>,
        label: Label,
    ) -> TraceObject {
        TraceObject {
            id,
            timestamp,
            device,
            command,
            mode,
            return_value,
            exception,
            response_time,
            procedure,
            run_id,
            label,
        }
    }
}

/// Builder for [`TraceObject`].
#[derive(Debug, Clone)]
pub struct TraceObjectBuilder {
    inner: TraceObject,
}

impl TraceObjectBuilder {
    /// Sets the capture mode (default [`TraceMode::Direct`]).
    #[must_use]
    pub fn mode(mut self, mode: TraceMode) -> Self {
        self.inner.mode = mode;
        self
    }

    /// Sets the logged return value (default [`Value::Unit`]).
    #[must_use]
    pub fn return_value(mut self, value: Value) -> Self {
        self.inner.return_value = value;
        self
    }

    /// Records an exception raised by the call.
    #[must_use]
    pub fn exception(mut self, message: impl Into<String>) -> Self {
        self.inner.exception = Some(message.into());
        self
    }

    /// Sets the observed response time (default zero).
    #[must_use]
    pub fn response_time(mut self, rt: SimDuration) -> Self {
        self.inner.response_time = rt;
        self
    }

    /// Attributes the command to a supervised procedure run.
    #[must_use]
    pub fn run(mut self, procedure: ProcedureKind, run_id: RunId, label: Label) -> Self {
        self.inner.procedure = procedure;
        self.inner.run_id = Some(run_id);
        self.inner.label = label;
        self
    }

    /// Finalizes the trace object.
    pub fn build(self) -> TraceObject {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn sample() -> TraceObject {
        TraceObject::builder(
            TraceId(42),
            SimInstant::EPOCH + SimDuration::from_secs(5),
            DeviceId::primary(DeviceKind::C9),
            Command::new(CommandType::Arm, vec![Value::Int(3)]),
        )
        .mode(TraceMode::Remote)
        .return_value(Value::Bool(true))
        .response_time(SimDuration::from_millis(6))
        .run(ProcedureKind::JoystickMovements, RunId(1), Label::Benign)
        .build()
    }

    #[test]
    fn builder_populates_all_fields() {
        let t = sample();
        assert_eq!(t.id(), TraceId(42));
        assert_eq!(t.device().kind(), DeviceKind::C9);
        assert_eq!(t.command_type(), CommandType::Arm);
        assert_eq!(t.mode(), TraceMode::Remote);
        assert_eq!(t.return_value(), &Value::Bool(true));
        assert_eq!(t.response_time(), SimDuration::from_millis(6));
        assert_eq!(t.procedure(), ProcedureKind::JoystickMovements);
        assert_eq!(t.run_id(), Some(RunId(1)));
        assert_eq!(t.label(), Label::Benign);
        assert!(t.exception().is_none());
    }

    #[test]
    fn defaults_are_direct_unknown_unit() {
        let t = TraceObject::builder(
            TraceId(0),
            SimInstant::EPOCH,
            DeviceId::primary(DeviceKind::Ika),
            Command::nullary(CommandType::IkaReadDeviceName),
        )
        .build();
        assert_eq!(t.mode(), TraceMode::Direct);
        assert_eq!(t.procedure(), ProcedureKind::Unknown);
        assert_eq!(t.run_id(), None);
        assert_eq!(t.label(), Label::Unknown);
        assert_eq!(t.return_value(), &Value::Unit);
    }

    #[test]
    fn exceptions_are_recorded() {
        let t = TraceObject::builder(
            TraceId(1),
            SimInstant::EPOCH,
            DeviceId::primary(DeviceKind::Quantos),
            Command::nullary(CommandType::StartDosing),
        )
        .exception("DosingHeadEmpty")
        .build();
        assert_eq!(t.exception(), Some("DosingHeadEmpty"));
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: TraceObject = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn trace_gap_serde_round_trip() {
        let gap = TraceGap::new(
            SimInstant::from_micros(77),
            DeviceId::primary(DeviceKind::Tecan),
            CommandType::TecanGetStatus,
            TraceMode::Remote,
            "middlebox unavailable",
        )
        .with_run(RunId(3));
        let json = serde_json::to_string(&gap).unwrap();
        let back: TraceGap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, gap);
        assert_eq!(back.run_id, Some(RunId(3)));
    }

    #[test]
    fn mode_display_matches_paper() {
        assert_eq!(TraceMode::Direct.to_string(), "DIRECT");
        assert_eq!(TraceMode::Remote.to_string(), "REMOTE");
        assert_eq!(TraceMode::Cloud.to_string(), "CLOUD");
    }
}
