//! Adaptive fan-out policy for scoped-thread parallelism.
//!
//! PR 1 fanned campaign builds, CV folds, and synthesis out over
//! scoped threads unconditionally, which *lost* time whenever the
//! per-thread slice of work was smaller than the cost of spawning and
//! joining the threads (~100 µs per thread on this class of machine),
//! or when the host only offers one core in the first place. Every
//! fan-out site now asks [`should_fan_out`] first and falls back to
//! the sequential loop below its threshold; because parallel merges
//! are index-ordered everywhere, the two paths produce bit-identical
//! results and the choice is invisible to callers.

use std::num::NonZeroUsize;

/// Number of worker threads worth spawning on this host (`1` when the
/// parallelism probe fails).
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Whether fanning `items` totalling `total_work` abstract work units
/// out over scoped threads beats running them sequentially.
///
/// Fan-out pays only when (a) the host has a second core, (b) there
/// are at least two items to split, and (c) each worker's share of the
/// work (`total_work / workers`) stays above `min_work_per_thread`,
/// the caller's measured break-even point against thread spawn/join
/// overhead. Work units are caller-defined (tokens, ticks, traces);
/// each call site documents its own threshold's derivation.
pub fn should_fan_out(items: usize, total_work: usize, min_work_per_thread: usize) -> bool {
    let workers = max_workers().min(items);
    workers >= 2 && total_work / workers >= min_work_per_thread
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_item_never_fans_out() {
        assert!(!should_fan_out(1, usize::MAX, 1));
    }

    #[test]
    fn tiny_work_never_fans_out() {
        assert!(!should_fan_out(8, 8, 1000));
    }

    #[test]
    fn fan_out_requires_a_second_core() {
        let decision = should_fan_out(8, 1_000_000, 1);
        if max_workers() < 2 {
            assert!(!decision);
        } else {
            assert!(decision);
        }
    }

    #[test]
    fn workers_probe_is_positive() {
        assert!(max_workers() >= 1);
    }
}
