//! Typed detection alerts and the composable [`AlertSink`] plane.
//!
//! The streaming detectors (see `rad_analysis::streaming`) emit one
//! [`Alert`] per threshold crossing *as traces arrive*, instead of a
//! post-hoc score table. Alerts are plain records — device, run,
//! window span, score, threshold, detector id — so they ride the same
//! persistence plumbing as traces and gaps: document-store
//! collections, `alerts.csv` in export bundles, manifest counts.
//!
//! [`AlertSink`] mirrors [`TraceSink`](crate::TraceSink): a stage that
//! detects composes with a stage that records by construction, and the
//! same alert stream can fan out to a live operator console and a
//! durable log via [`SharedAlerts`] clones.

use std::borrow::Cow;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::device::DeviceKind;
use crate::error::RadError;
use crate::procedure::RunId;
use crate::time::SimInstant;

/// One detection event: a detector's score crossed its threshold over
/// a window of the stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Which detector fired (e.g. `"perplexity.window"`,
    /// `"power.welford"`). Static in practice; `Cow` keeps ad-hoc
    /// detectors possible without per-alert allocation for the
    /// built-ins.
    pub detector: Cow<'static, str>,
    /// The device whose stream the window covers.
    pub device: DeviceKind,
    /// The run the window belongs to, when known.
    pub run_id: Option<RunId>,
    /// Start of the scored window (timestamp of its first record).
    pub window_start: SimInstant,
    /// End of the scored window (timestamp of its last record).
    pub window_end: SimInstant,
    /// The score that crossed the threshold.
    pub score: f64,
    /// The threshold in force when the alert fired.
    pub threshold: f64,
}

impl Alert {
    /// A stable sort key: alerts compare by time, then detector, then
    /// device — the order `alerts.csv` is written in when streams from
    /// several stages merge.
    pub fn sort_key(&self) -> (u64, &str, DeviceKind, Option<RunId>) {
        (
            self.window_end.as_micros(),
            self.detector.as_ref(),
            self.device,
            self.run_id,
        )
    }
}

/// A consumer of detection alerts.
///
/// The contract mirrors [`TraceSink`](crate::TraceSink): `raise` may
/// be called any number of times, `finish` exactly once at
/// end-of-stream. A sink must not care how the *trace* stream was
/// chunked — the detectors guarantee the alert stream is identical for
/// any chunking of their input.
pub trait AlertSink {
    /// Accepts one alert.
    ///
    /// # Errors
    ///
    /// Returns [`RadError`] when the alert cannot be recorded.
    fn raise(&mut self, alert: &Alert) -> Result<(), RadError>;

    /// Signals end-of-stream.
    ///
    /// # Errors
    ///
    /// Returns [`RadError`] when finalization fails.
    fn finish(&mut self) -> Result<(), RadError> {
        Ok(())
    }
}

impl<S: AlertSink + ?Sized> AlertSink for &mut S {
    fn raise(&mut self, alert: &Alert) -> Result<(), RadError> {
        (**self).raise(alert)
    }

    fn finish(&mut self) -> Result<(), RadError> {
        (**self).finish()
    }
}

impl<S: AlertSink + ?Sized> AlertSink for Box<S> {
    fn raise(&mut self, alert: &Alert) -> Result<(), RadError> {
        (**self).raise(alert)
    }

    fn finish(&mut self) -> Result<(), RadError> {
        (**self).finish()
    }
}

/// The simplest sink: collect every alert in order.
impl AlertSink for Vec<Alert> {
    fn raise(&mut self, alert: &Alert) -> Result<(), RadError> {
        self.push(alert.clone());
        Ok(())
    }
}

/// Counts alerts without keeping them (smoke tests, benches).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlertSink {
    /// Alerts raised so far.
    pub alerts: u64,
}

impl AlertSink for CountingAlertSink {
    fn raise(&mut self, _alert: &Alert) -> Result<(), RadError> {
        self.alerts += 1;
        Ok(())
    }
}

/// Duplicates every alert to two sinks (both always see the alert;
/// the first error is reported after both ran).
#[derive(Debug)]
pub struct AlertTee<A, B> {
    a: A,
    b: B,
}

impl<A: AlertSink, B: AlertSink> AlertTee<A, B> {
    /// Tees alerts into `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        AlertTee { a, b }
    }

    /// Consumes the tee, yielding both sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: AlertSink, B: AlertSink> AlertSink for AlertTee<A, B> {
    fn raise(&mut self, alert: &Alert) -> Result<(), RadError> {
        crate::sink::first_error(self.a.raise(alert), self.b.raise(alert))
    }

    fn finish(&mut self) -> Result<(), RadError> {
        crate::sink::first_error(self.a.finish(), self.b.finish())
    }
}

/// A cloneable, thread-safe alert collector.
///
/// A detection stage boxed into a tracer's sink stack is unreachable
/// afterwards; a [`SharedAlerts`] clone handed to the stage before
/// boxing keeps the alert stream readable from outside — the live-tee
/// deployments use exactly this shape.
#[derive(Debug, Default, Clone)]
pub struct SharedAlerts {
    alerts: Arc<Mutex<Vec<Alert>>>,
}

impl SharedAlerts {
    /// An empty shared collector.
    pub fn new() -> Self {
        SharedAlerts::default()
    }

    /// A snapshot of every alert raised so far, in arrival order.
    pub fn snapshot(&self) -> Vec<Alert> {
        self.alerts
            .lock()
            .expect("alert collector poisoned")
            .clone()
    }

    /// Drains the collected alerts, leaving the collector empty.
    pub fn take(&self) -> Vec<Alert> {
        std::mem::take(&mut *self.alerts.lock().expect("alert collector poisoned"))
    }

    /// Number of alerts collected so far.
    pub fn len(&self) -> usize {
        self.alerts.lock().expect("alert collector poisoned").len()
    }

    /// Whether no alert has been raised.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AlertSink for SharedAlerts {
    fn raise(&mut self, alert: &Alert) -> Result<(), RadError> {
        self.alerts
            .lock()
            .expect("alert collector poisoned")
            .push(alert.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(us: u64) -> Alert {
        Alert {
            detector: "test".into(),
            device: DeviceKind::C9,
            run_id: Some(RunId(1)),
            window_start: SimInstant::from_micros(us.saturating_sub(10)),
            window_end: SimInstant::from_micros(us),
            score: 9.0,
            threshold: 3.0,
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink: Vec<Alert> = Vec::new();
        sink.raise(&alert(10)).unwrap();
        sink.raise(&alert(20)).unwrap();
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[1].window_end, SimInstant::from_micros(20));
    }

    #[test]
    fn tee_duplicates_the_stream() {
        let mut tee = AlertTee::new(Vec::new(), CountingAlertSink::default());
        tee.raise(&alert(5)).unwrap();
        tee.raise(&alert(6)).unwrap();
        tee.finish().unwrap();
        let (vec, counter) = tee.into_inner();
        assert_eq!(vec.len(), 2);
        assert_eq!(counter.alerts, 2);
    }

    #[test]
    fn shared_alerts_stay_readable_through_clones() {
        let shared = SharedAlerts::new();
        let mut writer = shared.clone();
        writer.raise(&alert(1)).unwrap();
        writer.raise(&alert(2)).unwrap();
        assert_eq!(shared.len(), 2);
        let drained = shared.take();
        assert_eq!(drained.len(), 2);
        assert!(shared.is_empty());
    }

    #[test]
    fn sort_key_orders_by_time_first() {
        let a = alert(10);
        let b = alert(20);
        assert!(a.sort_key() < b.sort_key());
    }
}
