//! Composable sinks and sources: the hand-off contract of the data
//! plane.
//!
//! Every layer of the trace pipeline — middlebox tracer, document
//! store, WAL, CSV export, analysis tokenizers — used to receive
//! traces through its own bespoke call. [`TraceSink`] replaces those
//! hand-offs with one trait speaking [`TraceBatch`]es, plus the run
//! metadata and trace gaps that ride along with a campaign, and
//! [`TraceSource`] is its pull-side dual. Sink *combinators* compose
//! stacks declaratively:
//!
//! ```text
//!   Tracer ──▶ tee ──▶ chunked(4096) ──▶ durable WAL sink
//!              │
//!              └─────▶ filtered(|r| r.run_id().is_some()) ──▶ dataset
//! ```
//!
//! A batch flows through the stack by reference; each sink reads the
//! columns it cares about. Memory is bounded by the largest batch in
//! flight, never by the campaign.
//!
//! # Examples
//!
//! ```
//! use rad_core::{Command, CommandType, DeviceId, SimInstant, TraceBatch, TraceId, TraceObject};
//! use rad_core::sink::{TraceSink, TraceSinkExt};
//!
//! // TraceBatch is itself a sink (it appends), so a tee into two
//! // batches duplicates the stream.
//! let mut stack = TraceBatch::new().tee(TraceBatch::new());
//! let one = TraceBatch::from_traces(&[TraceObject::builder(
//!     TraceId(0),
//!     SimInstant::EPOCH,
//!     DeviceId::primary(CommandType::Arm.device()),
//!     Command::nullary(CommandType::Arm),
//! )
//! .build()]);
//! stack.accept(&one).unwrap();
//! let (a, b) = stack.into_inner();
//! assert_eq!(a.len(), 1);
//! assert_eq!(b.len(), 1);
//! ```

use crate::batch::{TraceBatch, TraceRow};
use crate::error::RadError;
use crate::procedure::RunMetadata;
use crate::trace::{TraceGap, TraceObject};

/// Receives the trace stream batch-wise.
///
/// Implementations must treat `accept` as append-only and must not
/// assume batch boundaries carry meaning — the same stream chunked
/// differently must produce the same final state.
pub trait TraceSink {
    /// Accepts one batch of traces.
    ///
    /// # Errors
    ///
    /// Implementation-defined; combinators propagate the first error.
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError>;

    /// Accepts a trace gap. Default: ignored.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        let _ = gap;
        Ok(())
    }

    /// Accepts a procedure run's metadata. Default: ignored.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn accept_run(&mut self, run: &RunMetadata) -> Result<(), RadError> {
        let _ = run;
        Ok(())
    }

    /// Pushes buffered state downstream (partial chunks, buffered
    /// writes). Default: no-op.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn flush(&mut self) -> Result<(), RadError> {
        Ok(())
    }

    /// Signals end-of-stream. Default: delegates to
    /// [`TraceSink::flush`].
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn finish(&mut self) -> Result<(), RadError> {
        self.flush()
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        (**self).accept(batch)
    }
    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        (**self).accept_gap(gap)
    }
    fn accept_run(&mut self, run: &RunMetadata) -> Result<(), RadError> {
        (**self).accept_run(run)
    }
    fn flush(&mut self) -> Result<(), RadError> {
        (**self).flush()
    }
    fn finish(&mut self) -> Result<(), RadError> {
        (**self).finish()
    }
}

impl<S: TraceSink + ?Sized> TraceSink for Box<S> {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        (**self).accept(batch)
    }
    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        (**self).accept_gap(gap)
    }
    fn accept_run(&mut self, run: &RunMetadata) -> Result<(), RadError> {
        (**self).accept_run(run)
    }
    fn flush(&mut self) -> Result<(), RadError> {
        (**self).flush()
    }
    fn finish(&mut self) -> Result<(), RadError> {
        (**self).finish()
    }
}

/// A [`TraceBatch`] is the simplest sink: it appends everything.
impl TraceSink for TraceBatch {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        self.append(batch);
        Ok(())
    }
}

/// Produces the trace stream batch-wise.
pub trait TraceSource {
    /// The next batch, or `None` at end-of-stream.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn next_batch(&mut self) -> Result<Option<TraceBatch>, RadError>;

    /// Drains this source into `sink`, returning the number of rows
    /// moved. Calls [`TraceSink::finish`] at end-of-stream.
    ///
    /// # Errors
    ///
    /// Propagates the first source or sink error.
    fn drain_into(&mut self, sink: &mut dyn TraceSink) -> Result<u64, RadError> {
        let mut rows = 0u64;
        while let Some(batch) = self.next_batch()? {
            rows += batch.len() as u64;
            sink.accept(&batch)?;
        }
        sink.finish()?;
        Ok(rows)
    }
}

/// Chunks a slice of traces into fixed-size batches — the adapter
/// from row-oriented storage into the batched plane.
#[derive(Debug)]
pub struct SliceSource<'a> {
    traces: &'a [TraceObject],
    chunk: usize,
    cursor: usize,
}

impl<'a> SliceSource<'a> {
    /// A source over `traces` yielding batches of at most `chunk`
    /// rows.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(traces: &'a [TraceObject], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        SliceSource {
            traces,
            chunk,
            cursor: 0,
        }
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_batch(&mut self) -> Result<Option<TraceBatch>, RadError> {
        if self.cursor >= self.traces.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.chunk).min(self.traces.len());
        let batch = TraceBatch::from_traces(&self.traces[self.cursor..end]);
        self.cursor = end;
        Ok(Some(batch))
    }
}

/// Duplicates the stream into two sinks. See [`TraceSinkExt::tee`].
///
/// Delivery is unconditional: when the first branch errors, the
/// second still receives the payload, and the *first* error is
/// returned. This is what lets a lossy durable mirror fail without
/// starving the in-memory dataset (the middlebox's
/// graceful-degradation policy).
#[derive(Debug)]
pub struct Tee<A, B> {
    a: A,
    b: B,
}

impl<A, B> Tee<A, B> {
    /// Tees the stream into `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b }
    }

    /// Consumes the tee into its branches.
    pub fn into_inner(self) -> (A, B) {
        (self.a, self.b)
    }

    /// Mutable access to both branches at once. Sibling data planes
    /// (e.g. `rad_power`'s `PowerSink`) reuse this combinator by
    /// implementing their own sink trait over the same struct, which
    /// needs simultaneous `&mut` to both halves.
    pub fn branches_mut(&mut self) -> (&mut A, &mut B) {
        (&mut self.a, &mut self.b)
    }
}

/// First-error-wins merge of two branch results: both branches have
/// already been delivered to; the first error (in branch order) is the
/// one reported. Shared by every `Tee`-shaped combinator in the
/// workspace.
pub fn first_error(a: Result<(), RadError>, b: Result<(), RadError>) -> Result<(), RadError> {
    match (a, b) {
        (Err(e), _) => Err(e),
        (Ok(()), r) => r,
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for Tee<A, B> {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        first_error(self.a.accept(batch), self.b.accept(batch))
    }
    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        first_error(self.a.accept_gap(gap), self.b.accept_gap(gap))
    }
    fn accept_run(&mut self, run: &RunMetadata) -> Result<(), RadError> {
        first_error(self.a.accept_run(run), self.b.accept_run(run))
    }
    fn flush(&mut self) -> Result<(), RadError> {
        first_error(self.a.flush(), self.b.flush())
    }
    fn finish(&mut self) -> Result<(), RadError> {
        first_error(self.a.finish(), self.b.finish())
    }
}

/// Re-chunks the stream into batches of a fixed row count. See
/// [`TraceSinkExt::chunked`].
///
/// Upstream batch boundaries disappear: rows buffer until `capacity`
/// is reached, then flow downstream as one batch. [`TraceSink::flush`]
/// forwards a partial chunk.
#[derive(Debug)]
pub struct Chunked<S> {
    inner: S,
    capacity: usize,
    buffer: TraceBatch,
}

impl<S> Chunked<S> {
    /// Rows pre-allocated per chunk buffer, whatever the flush
    /// threshold — huge thresholds grow on demand instead.
    const MAX_PREALLOC_ROWS: usize = 4096;

    /// Buffers into chunks of `capacity` rows before `inner`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: S, capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        Chunked {
            inner,
            capacity,
            // The capacity is a flush threshold, not an allocation
            // promise: an effectively-unbounded chunk size must not
            // reserve unbounded memory up front.
            buffer: TraceBatch::with_capacity(capacity.min(Self::MAX_PREALLOC_ROWS)),
        }
    }

    /// Consumes the adapter, returning the inner sink. Buffered rows
    /// are dropped; call [`TraceSink::flush`] first to keep them.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for Chunked<S> {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        for row in batch.iter() {
            self.buffer.push_owned(row.to_object());
            if self.buffer.len() >= self.capacity {
                let full = std::mem::replace(
                    &mut self.buffer,
                    TraceBatch::with_capacity(self.capacity.min(Self::MAX_PREALLOC_ROWS)),
                );
                self.inner.accept(&full)?;
            }
        }
        Ok(())
    }
    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        self.inner.accept_gap(gap)
    }
    fn accept_run(&mut self, run: &RunMetadata) -> Result<(), RadError> {
        self.inner.accept_run(run)
    }
    fn flush(&mut self) -> Result<(), RadError> {
        if !self.buffer.is_empty() {
            let partial = std::mem::replace(
                &mut self.buffer,
                TraceBatch::with_capacity(self.capacity.min(Self::MAX_PREALLOC_ROWS)),
            );
            self.inner.accept(&partial)?;
        }
        self.inner.flush()
    }
    fn finish(&mut self) -> Result<(), RadError> {
        if !self.buffer.is_empty() {
            let partial = std::mem::replace(
                &mut self.buffer,
                TraceBatch::with_capacity(self.capacity.min(Self::MAX_PREALLOC_ROWS)),
            );
            self.inner.accept(&partial)?;
        }
        self.inner.finish()
    }
}

/// Forwards only rows matching a predicate. See
/// [`TraceSinkExt::filtered`]. Gaps and runs pass through unfiltered.
#[derive(Debug)]
pub struct Filtered<S, F> {
    inner: S,
    predicate: F,
}

impl<S, F> Filtered<S, F> {
    /// Filters rows through `predicate` before `inner`.
    pub fn new(inner: S, predicate: F) -> Self {
        Filtered { inner, predicate }
    }

    /// Consumes the adapter, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink, F: FnMut(&TraceRow<'_>) -> bool> TraceSink for Filtered<S, F> {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        let mut kept = TraceBatch::new();
        for row in batch.iter() {
            if (self.predicate)(&row) {
                kept.push_owned(row.to_object());
            }
        }
        if kept.is_empty() {
            return Ok(());
        }
        self.inner.accept(&kept)
    }
    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        self.inner.accept_gap(gap)
    }
    fn accept_run(&mut self, run: &RunMetadata) -> Result<(), RadError> {
        self.inner.accept_run(run)
    }
    fn flush(&mut self) -> Result<(), RadError> {
        self.inner.flush()
    }
    fn finish(&mut self) -> Result<(), RadError> {
        self.inner.finish()
    }
}

/// Counts rows, gaps, and runs without storing them — useful as a
/// cheap tee branch and in benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Rows accepted so far.
    pub traces: u64,
    /// Gaps accepted so far.
    pub gaps: u64,
    /// Runs accepted so far.
    pub runs: u64,
    /// Largest single batch seen, in rows.
    pub max_batch_rows: u64,
}

impl TraceSink for CountingSink {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        self.traces += batch.len() as u64;
        self.max_batch_rows = self.max_batch_rows.max(batch.len() as u64);
        Ok(())
    }
    fn accept_gap(&mut self, _gap: &TraceGap) -> Result<(), RadError> {
        self.gaps += 1;
        Ok(())
    }
    fn accept_run(&mut self, _run: &RunMetadata) -> Result<(), RadError> {
        self.runs += 1;
        Ok(())
    }
}

/// Combinator constructors for every sink.
pub trait TraceSinkExt: TraceSink + Sized {
    /// Duplicates the stream into `self` and `other`. Both receive
    /// every payload even when one errors; the first error wins.
    fn tee<B: TraceSink>(self, other: B) -> Tee<Self, B> {
        Tee::new(self, other)
    }

    /// Re-chunks the stream into batches of `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    fn chunked(self, capacity: usize) -> Chunked<Self> {
        Chunked::new(self, capacity)
    }

    /// Keeps only rows for which `predicate` returns `true`.
    fn filtered<F: FnMut(&TraceRow<'_>) -> bool>(self, predicate: F) -> Filtered<Self, F> {
        Filtered::new(self, predicate)
    }
}

impl<S: TraceSink + Sized> TraceSinkExt for S {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, CommandType};
    use crate::device::DeviceId;
    use crate::time::SimInstant;
    use crate::trace::{TraceId, TraceMode, TraceObject};

    fn traces(n: u64) -> Vec<TraceObject> {
        (0..n)
            .map(|i| {
                TraceObject::builder(
                    TraceId(i),
                    SimInstant::from_micros(i * 10),
                    DeviceId::primary(CommandType::Arm.device()),
                    Command::nullary(CommandType::Arm),
                )
                .build()
            })
            .collect()
    }

    /// A sink that fails every accept, for tee semantics.
    struct FailingSink;
    impl TraceSink for FailingSink {
        fn accept(&mut self, _batch: &TraceBatch) -> Result<(), RadError> {
            Err(RadError::Store("sink down".into()))
        }
    }

    #[test]
    fn tee_delivers_to_both_and_returns_first_error() {
        let mut tee = FailingSink.tee(TraceBatch::new());
        let batch = TraceBatch::from_traces(&traces(3));
        let err = tee.accept(&batch).unwrap_err();
        assert!(err.to_string().contains("sink down"));
        let (_, healthy) = tee.into_inner();
        assert_eq!(healthy.len(), 3, "second branch still got the batch");
    }

    #[test]
    fn chunked_rechunks_and_flushes_partials() {
        let mut counting = CountingSink::default().chunked(4);
        let all = traces(10);
        // Feed as three uneven batches; downstream must see 4,4,2.
        let mut src = SliceSource::new(&all, 3);
        let moved = src.drain_into(&mut counting).unwrap();
        assert_eq!(moved, 10);
        let inner = counting.into_inner();
        assert_eq!(inner.traces, 10);
        assert_eq!(inner.max_batch_rows, 4);
    }

    #[test]
    fn filtered_drops_rows_but_passes_gaps() {
        let mut sink = TraceBatch::new().filtered(|r: &TraceRow<'_>| r.id().0.is_multiple_of(2));
        sink.accept(&TraceBatch::from_traces(&traces(5))).unwrap();
        let gap = TraceGap::new(
            SimInstant::EPOCH,
            DeviceId::primary(CommandType::Arm.device()),
            CommandType::Arm,
            TraceMode::Remote,
            "middlebox unavailable",
        );
        sink.accept_gap(&gap).unwrap();
        let kept = sink.into_inner();
        assert_eq!(kept.len(), 3); // ids 0, 2, 4
    }

    #[test]
    fn slice_source_round_trips_through_a_batch_sink() {
        let all = traces(7);
        let mut collected = TraceBatch::new();
        SliceSource::new(&all, 2)
            .drain_into(&mut collected)
            .unwrap();
        assert_eq!(collected.to_traces(), all);
    }
}
