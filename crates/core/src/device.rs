//! The five automation devices traced by RATracer.
//!
//! The Hein Lab rig described in §III of the paper spans six physical
//! devices, but the paper folds the N9 robot arm and the Fisherbrand
//! centrifuge into a single logical device (both are controlled through
//! the N9's controller box) called the **C9**, and folds the Arduino
//! stepper used for Quantos z-axis control into **Quantos**. That leaves
//! the five logical devices enumerated by [`DeviceKind`].

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::RadError;

/// A logical automation device in the simulated Hein Lab.
///
/// # Examples
///
/// ```
/// use rad_core::DeviceKind;
///
/// let all = DeviceKind::all();
/// assert_eq!(all.len(), 5);
/// assert_eq!(DeviceKind::Ur3e.to_string(), "UR3e");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// North Robotics N9 four-axis robot arm plus the Fisherbrand
    /// mini-centrifuge, both driven through the N9 controller box.
    C9,
    /// Universal Robots UR3e six-axis robot arm.
    Ur3e,
    /// IKA C-Mag HS 7 magnetic stirrer and heater.
    Ika,
    /// Tecan Cavro XLP 6000 syringe pump.
    Tecan,
    /// Mettler Toledo Quantos solid-dosing balance, including the
    /// Arduino-controlled z-axis stepper motor.
    Quantos,
}

impl DeviceKind {
    /// All five logical devices, in the order used by Fig. 5(a).
    pub const fn all() -> [DeviceKind; 5] {
        [
            DeviceKind::C9,
            DeviceKind::Ur3e,
            DeviceKind::Ika,
            DeviceKind::Tecan,
            DeviceKind::Quantos,
        ]
    }

    /// Human-readable device name as printed in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            DeviceKind::C9 => "C9",
            DeviceKind::Ur3e => "UR3e",
            DeviceKind::Ika => "IKA",
            DeviceKind::Tecan => "Tecan",
            DeviceKind::Quantos => "Quantos",
        }
    }

    /// The transport that connects the physical device to the lab
    /// computer in the real deployment (Fig. 2). The middlebox crate
    /// uses this to pick a latency profile per device.
    pub const fn transport(self) -> Transport {
        match self {
            DeviceKind::C9 => Transport::FtdiSerial,
            DeviceKind::Ur3e => Transport::Ethernet,
            DeviceKind::Ika => Transport::Serial,
            DeviceKind::Tecan => Transport::Serial,
            DeviceKind::Quantos => Transport::Ethernet,
        }
    }

    /// Number of trace objects Fig. 5(a) reports for this device.
    ///
    /// The UR3e count is not printed in the legend; it is derived as the
    /// remainder of the 128,785 total.
    pub const fn paper_trace_count(self) -> u64 {
        match self {
            DeviceKind::C9 => 93_231,
            DeviceKind::Ur3e => 5_460,
            DeviceKind::Ika => 11_448,
            DeviceKind::Tecan => 16_279,
            DeviceKind::Quantos => 2_367,
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DeviceKind {
    type Err = RadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "C9" => Ok(DeviceKind::C9),
            "UR3e" => Ok(DeviceKind::Ur3e),
            "IKA" => Ok(DeviceKind::Ika),
            "Tecan" => Ok(DeviceKind::Tecan),
            "Quantos" => Ok(DeviceKind::Quantos),
            other => Err(RadError::UnknownDevice(other.to_owned())),
        }
    }
}

/// Physical transport between the lab computer (or middlebox) and a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// Raw RS-232/RS-485 serial line (pySerial in the original stack).
    Serial,
    /// Serial over an FTDI USB cable through the Windows FTD2XX driver
    /// (`class FtdiDevice` in the original stack).
    FtdiSerial,
    /// TCP over Ethernet (Python `socket`, `urx`).
    Ethernet,
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Transport::Serial => "serial",
            Transport::FtdiSerial => "ftdi-serial",
            Transport::Ethernet => "ethernet",
        };
        f.write_str(s)
    }
}

/// Identifier of a concrete device instance within a lab rig.
///
/// A rig normally hosts exactly one instance of each [`DeviceKind`], but
/// the type keeps an instance index so tests can build rigs with several
/// arms (the paper's future-work section anticipates scaling from five to
/// fifty devices).
///
/// # Examples
///
/// ```
/// use rad_core::{DeviceId, DeviceKind};
///
/// let id = DeviceId::primary(DeviceKind::Tecan);
/// assert_eq!(id.kind(), DeviceKind::Tecan);
/// assert_eq!(id.index(), 0);
/// assert_eq!(id.to_string(), "Tecan#0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId {
    kind: DeviceKind,
    index: u16,
}

impl DeviceId {
    /// Identifier of the single (index 0) instance of `kind`.
    pub const fn primary(kind: DeviceKind) -> Self {
        DeviceId { kind, index: 0 }
    }

    /// Identifier of the `index`-th instance of `kind`.
    pub const fn new(kind: DeviceKind, index: u16) -> Self {
        DeviceId { kind, index }
    }

    /// The device kind this instance belongs to.
    pub const fn kind(self) -> DeviceKind {
        self.kind
    }

    /// Instance index within the rig (0 for the primary instance).
    pub const fn index(self) -> u16 {
        self.index
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind, self.index)
    }
}

impl From<DeviceKind> for DeviceId {
    fn from(kind: DeviceKind) -> Self {
        DeviceId::primary(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_devices_are_distinct() {
        let all = DeviceKind::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_round_trips_through_from_str() {
        for kind in DeviceKind::all() {
            let parsed: DeviceKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn unknown_device_is_an_error() {
        let err = "Roomba".parse::<DeviceKind>().unwrap_err();
        assert!(err.to_string().contains("Roomba"));
    }

    #[test]
    fn paper_trace_counts_sum_to_total() {
        let total: u64 = DeviceKind::all()
            .iter()
            .map(|d| d.paper_trace_count())
            .sum();
        assert_eq!(total, 128_785);
    }

    #[test]
    fn device_id_display_includes_index() {
        let id = DeviceId::new(DeviceKind::Ur3e, 3);
        assert_eq!(id.to_string(), "UR3e#3");
    }

    #[test]
    fn primary_is_index_zero() {
        assert_eq!(DeviceId::primary(DeviceKind::Ika).index(), 0);
        assert_eq!(
            DeviceId::from(DeviceKind::Ika),
            DeviceId::primary(DeviceKind::Ika)
        );
    }
}
