//! Dynamically-typed argument and return values.
//!
//! The original RATracer logs Python call arguments and return values,
//! which are dynamically typed. [`Value`] is the Rust stand-in: a small
//! JSON-like algebraic type with a few robotics-specific additions
//! (3-D locations and 6-D joint vectors) so that the workload generators
//! and the parameter-aware IDS ablation can speak about command
//! arguments without stringly-typed encodings.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically-typed value logged in a trace object.
///
/// # Examples
///
/// ```
/// use rad_core::Value;
///
/// let v = Value::List(vec![Value::Int(1), Value::Bool(true)]);
/// assert_eq!(v.to_string(), "[1, true]");
/// assert_eq!(Value::Unit.to_string(), "None");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Python `None` / procedure returned nothing.
    #[default]
    Unit,
    /// Boolean flag.
    Bool(bool),
    /// Signed integer (device counts, stepper positions, plunger steps).
    Int(i64),
    /// IEEE-754 double (velocities, masses, temperatures).
    Float(f64),
    /// UTF-8 string (status strings, device names).
    Str(String),
    /// Heterogeneous list.
    List(Vec<Value>),
    /// Cartesian location in the lab frame, in millimetres.
    Location {
        /// X coordinate (mm).
        x: f64,
        /// Y coordinate (mm).
        y: f64,
        /// Z coordinate (mm).
        z: f64,
    },
    /// Six joint angles of the UR3e, in radians, base to wrist-3.
    Joints([f64; 6]),
}

impl Value {
    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, widening an [`Value::Int`] if needed.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short, stable token describing this value for the
    /// parameter-aware language model ablation. Numeric values are
    /// bucketed so the token vocabulary stays finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use rad_core::Value;
    ///
    /// assert_eq!(Value::Int(7).param_token(), "i:7");
    /// assert_eq!(Value::Float(123.4).param_token(), "f:1e2");
    /// assert_eq!(Value::Float(450.0).param_token(), "f:1e2.5");
    /// assert_eq!(Value::Str("vial".into()).param_token(), "s:vial");
    /// ```
    pub fn param_token(&self) -> String {
        match self {
            Value::Unit => "none".to_owned(),
            Value::Bool(b) => format!("b:{b}"),
            Value::Int(i) => format!("i:{i}"),
            Value::Float(f) => {
                if *f == 0.0 {
                    "f:0".to_owned()
                } else {
                    // Half-decade buckets: fine enough to separate a
                    // 150 mm/s setpoint from a 450 mm/s speed attack,
                    // coarse enough to keep the vocabulary finite.
                    let half = (f.abs().log10() * 2.0).floor() / 2.0;
                    let sign = if *f < 0.0 { "-" } else { "" };
                    format!("f:{sign}1e{half}")
                }
            }
            Value::Str(s) => format!("s:{s}"),
            Value::List(items) => format!("l:{}", items.len()),
            Value::Location { x, y, z } => {
                // 10 mm grid: close locations share a token.
                format!(
                    "loc:{}:{}:{}",
                    (x / 10.0).round(),
                    (y / 10.0).round(),
                    (z / 10.0).round()
                )
            }
            Value::Joints(q) => {
                let mut t = String::from("j");
                for angle in q {
                    // 0.1 rad grid.
                    t.push(':');
                    t.push_str(&format!("{}", (angle * 10.0).round()));
                }
                t
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("None"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Location { x, y, z } => write!(f, "({x}, {y}, {z})"),
            Value::Joints(q) => {
                f.write_str("joints[")?;
                for (i, angle) in q.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{angle:.3}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::Str("x".into()).as_float(), None);
    }

    #[test]
    fn display_is_python_flavoured() {
        assert_eq!(Value::Unit.to_string(), "None");
        assert_eq!(
            Value::Location {
                x: 1.0,
                y: 2.0,
                z: 3.0
            }
            .to_string(),
            "(1, 2, 3)"
        );
    }

    #[test]
    fn param_tokens_bucket_nearby_locations_together() {
        let a = Value::Location {
            x: 100.0,
            y: 50.0,
            z: 20.0,
        };
        let b = Value::Location {
            x: 102.0,
            y: 48.0,
            z: 21.0,
        };
        let c = Value::Location {
            x: 300.0,
            y: 50.0,
            z: 20.0,
        };
        assert_eq!(a.param_token(), b.param_token());
        assert_ne!(a.param_token(), c.param_token());
    }

    #[test]
    fn param_tokens_bucket_floats_by_half_decade() {
        assert_eq!(
            Value::Float(150.0).param_token(),
            Value::Float(250.0).param_token()
        );
        assert_ne!(
            Value::Float(150.0).param_token(),
            Value::Float(450.0).param_token()
        );
        assert_ne!(
            Value::Float(15.0).param_token(),
            Value::Float(150.0).param_token()
        );
        assert_eq!(Value::Float(-250.0).param_token(), "f:-1e2");
        assert_eq!(Value::Float(450.0).param_token(), "f:1e2.5");
        assert_eq!(Value::Float(0.0).param_token(), "f:0");
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }
}
