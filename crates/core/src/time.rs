//! Deterministic simulated time.
//!
//! All timestamps in the synthetic RAD dataset come from a [`SimClock`],
//! a logical clock counting microseconds since the start of the
//! simulated three-month collection campaign. Using simulated rather
//! than wall-clock time keeps dataset synthesis deterministic and lets
//! the benchmark harness replay months of lab activity in milliseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A span of simulated time, with microsecond resolution.
///
/// # Examples
///
/// ```
/// use rad_core::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d + SimDuration::from_micros(500), SimDuration::from_micros(1_500_500));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { micros }
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            micros: millis * 1_000,
        }
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            micros: secs * 1_000_000,
        }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration {
            micros: (secs * 1e6).round() as u64,
        }
    }

    /// Total microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Total milliseconds (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.micros as f64 / 1e3
    }

    /// Total seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }

    /// Scales the duration by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        SimDuration {
            micros: (self.micros as f64 * factor).round() as u64,
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros += rhs.micros;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micros < 1_000 {
            write!(f, "{}us", self.micros)
        } else if self.micros < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// An instant on the simulated campaign timeline.
///
/// Instant zero is the start of the simulated three-month collection
/// period.
///
/// # Examples
///
/// ```
/// use rad_core::{SimDuration, SimInstant};
///
/// let t0 = SimInstant::EPOCH;
/// let t1 = t0 + SimDuration::from_secs(60);
/// assert_eq!(t1.duration_since(t0), SimDuration::from_secs(60));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimInstant {
    micros_since_epoch: u64,
}

impl SimInstant {
    /// Start of the simulated campaign.
    pub const EPOCH: SimInstant = SimInstant {
        micros_since_epoch: 0,
    };

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(micros_since_epoch: u64) -> Self {
        SimInstant { micros_since_epoch }
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.micros_since_epoch
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        assert!(
            earlier.micros_since_epoch <= self.micros_since_epoch,
            "`earlier` must not be later than `self`"
        );
        SimDuration::from_micros(self.micros_since_epoch - earlier.micros_since_epoch)
    }

    /// Like [`SimInstant::duration_since`] but saturating to zero.
    pub fn saturating_duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_micros(
            self.micros_since_epoch
                .saturating_sub(earlier.micros_since_epoch),
        )
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;

    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            micros_since_epoch: self.micros_since_epoch + rhs.as_micros(),
        }
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;

    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.micros_since_epoch as f64 / 1e6)
    }
}

/// A monotonically advancing simulated clock.
///
/// The clock is advanced explicitly by the simulation driver; reading it
/// never advances it. This is the only source of timestamps in the
/// workspace, which is what makes campaign synthesis reproducible.
///
/// # Examples
///
/// ```
/// use rad_core::{SimClock, SimDuration};
///
/// let mut clock = SimClock::new();
/// let before = clock.now();
/// clock.advance(SimDuration::from_millis(40));
/// assert_eq!(clock.now().duration_since(before), SimDuration::from_millis(40));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimClock {
    now: SimInstant,
}

impl SimClock {
    /// A clock at the campaign epoch.
    pub fn new() -> Self {
        SimClock {
            now: SimInstant::EPOCH,
        }
    }

    /// A clock starting at `start`.
    pub fn starting_at(start: SimInstant) -> Self {
        SimClock { now: start }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advances the clock by `delta` and returns the new time.
    pub fn advance(&mut self, delta: SimDuration) -> SimInstant {
        self.now = self.now + delta;
        self.now
    }

    /// Advances the clock to `target` if it is in the future; a no-op
    /// otherwise. Returns the (possibly unchanged) current time.
    pub fn advance_to(&mut self, target: SimInstant) -> SimInstant {
        if target > self.now {
            self.now = target;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_agree() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d, SimDuration::from_millis(2_000));
        assert_eq!(d, SimDuration::from_micros(2_000_000));
        assert_eq!(d, SimDuration::from_secs_f64(2.0));
    }

    #[test]
    fn duration_display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(250).to_string(), "250us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let small = SimDuration::from_millis(1);
        let big = SimDuration::from_millis(2);
        assert_eq!(small.saturating_sub(big), SimDuration::ZERO);
        assert_eq!(big.saturating_sub(small), SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "must not be later")]
    fn duration_since_panics_on_reversed_order() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(1);
        let _ = t0.duration_since(t1);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(1);
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_secs(10));
        let now = clock.now();
        clock.advance_to(SimInstant::EPOCH + SimDuration::from_secs(5));
        assert_eq!(clock.now(), now);
        clock.advance_to(SimInstant::EPOCH + SimDuration::from_secs(15));
        assert_eq!(clock.now(), SimInstant::EPOCH + SimDuration::from_secs(15));
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(
            SimDuration::from_millis(100).mul_f64(2.5),
            SimDuration::from_millis(250)
        );
    }
}
