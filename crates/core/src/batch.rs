//! Columnar trace storage: the unit of transfer of the data plane.
//!
//! A [`TraceBatch`] holds trace objects struct-of-arrays style —
//! separate columns for timestamps, device ids, dense command-token
//! ids, argument offsets into a shared arena, return values, sparse
//! exceptions, and run labels — so the pipeline can move thousands of
//! traces per hand-off without cloning per-row allocations, and the
//! analyses can read the dense token-id column directly instead of
//! re-deriving it per trace. [`TraceObject`] remains the row type:
//! [`TraceBatch::get`] yields a cheap borrowed [`TraceRow`] view and
//! [`TraceBatch::materialize`] an owned row when one is needed.
//!
//! # Examples
//!
//! ```
//! use rad_core::{Command, CommandType, DeviceId, DeviceKind, SimInstant, TraceBatch, TraceId,
//!                TraceObject};
//!
//! let mut batch = TraceBatch::new();
//! batch.push_owned(
//!     TraceObject::builder(
//!         TraceId(0),
//!         SimInstant::EPOCH,
//!         DeviceId::primary(DeviceKind::Tecan),
//!         Command::nullary(CommandType::TecanGetStatus),
//!     )
//!     .build(),
//! );
//! assert_eq!(batch.len(), 1);
//! assert_eq!(batch.get(0).command_type(), CommandType::TecanGetStatus);
//! assert_eq!(
//!     batch.command_token_ids()[0] as usize,
//!     CommandType::TecanGetStatus.token_id()
//! );
//! ```

use crate::command::{Command, CommandType};
use crate::device::DeviceId;
use crate::procedure::{Label, ProcedureKind, RunId};
use crate::time::{SimDuration, SimInstant};
use crate::trace::{TraceId, TraceMode, TraceObject};
use crate::value::Value;

/// A struct-of-arrays batch of trace objects.
///
/// Rows keep their insertion order; every column has exactly
/// [`TraceBatch::len`] entries except the argument arena, which is
/// shared and addressed through a prefix-sum offset column, and the
/// exception column, which is sparse (most traces raise nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBatch {
    ids: Vec<u64>,
    timestamps_us: Vec<u64>,
    devices: Vec<DeviceId>,
    /// Dense command-token ids ([`CommandType::token_id`]); `u16` is
    /// plenty for the 52-command vocabulary and keeps the column that
    /// the language models scan hot in cache.
    command_tokens: Vec<u16>,
    /// `arg_offsets[i]..arg_offsets[i+1]` indexes row `i`'s arguments
    /// in `args`; length is always `len() + 1`.
    arg_offsets: Vec<u32>,
    args: Vec<Value>,
    modes: Vec<TraceMode>,
    return_values: Vec<Value>,
    /// Sparse `(row, message)` pairs, ascending by row.
    exceptions: Vec<(u32, String)>,
    response_times_us: Vec<u64>,
    procedures: Vec<ProcedureKind>,
    run_ids: Vec<Option<RunId>>,
    labels: Vec<Label>,
}

// Canonical empty form: the offset column always carries its leading
// sentinel, so empty batches from any constructor compare equal.
impl Default for TraceBatch {
    fn default() -> Self {
        TraceBatch::with_capacity(0)
    }
}

impl TraceBatch {
    /// An empty batch.
    pub fn new() -> Self {
        TraceBatch::default()
    }

    /// An empty batch with row capacity pre-allocated.
    pub fn with_capacity(rows: usize) -> Self {
        let mut arg_offsets = Vec::with_capacity(rows + 1);
        arg_offsets.push(0);
        TraceBatch {
            ids: Vec::with_capacity(rows),
            timestamps_us: Vec::with_capacity(rows),
            devices: Vec::with_capacity(rows),
            command_tokens: Vec::with_capacity(rows),
            arg_offsets,
            args: Vec::new(),
            modes: Vec::with_capacity(rows),
            return_values: Vec::with_capacity(rows),
            exceptions: Vec::new(),
            response_times_us: Vec::with_capacity(rows),
            procedures: Vec::with_capacity(rows),
            run_ids: Vec::with_capacity(rows),
            labels: Vec::with_capacity(rows),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn ensure_offsets(&mut self) {
        if self.arg_offsets.is_empty() {
            self.arg_offsets.push(0);
        }
    }

    /// Appends a row, cloning the trace's heap payloads (arguments,
    /// return value, exception). Prefer [`TraceBatch::push_owned`]
    /// when the caller is done with the row.
    ///
    /// Payloads clone straight into the lanes — arguments land in the
    /// shared arena without an intermediate per-row `Vec`, so batching
    /// a borrowed slice allocates nothing per trace beyond the lane
    /// growth itself.
    pub fn push(&mut self, trace: &TraceObject) {
        self.ensure_offsets();
        self.ids.push(trace.id().0);
        self.timestamps_us.push(trace.timestamp().as_micros());
        self.devices.push(trace.device());
        self.command_tokens
            .push(trace.command_type().token_id() as u16);
        self.args.extend_from_slice(trace.command().args());
        self.arg_offsets.push(self.args.len() as u32);
        self.modes.push(trace.mode());
        self.return_values.push(trace.return_value().clone());
        if let Some(msg) = trace.exception() {
            self.exceptions
                .push((self.ids.len() as u32 - 1, msg.to_string()));
        }
        self.response_times_us
            .push(trace.response_time().as_micros());
        self.procedures.push(trace.procedure());
        self.run_ids.push(trace.run_id());
        self.labels.push(trace.label());
    }

    /// Appends a row, consuming it — no clone of arguments or return
    /// value.
    pub fn push_owned(&mut self, trace: TraceObject) {
        self.ensure_offsets();
        let (id, ts, device, command, mode, ret, exception, rt, procedure, run_id, label) =
            trace.into_raw();
        let (command_type, mut args) = command.into_parts();
        self.ids.push(id.0);
        self.timestamps_us.push(ts.as_micros());
        self.devices.push(device);
        self.command_tokens.push(command_type.token_id() as u16);
        self.args.append(&mut args);
        self.arg_offsets.push(self.args.len() as u32);
        self.modes.push(mode);
        self.return_values.push(ret);
        if let Some(msg) = exception {
            self.exceptions.push((self.ids.len() as u32 - 1, msg));
        }
        self.response_times_us.push(rt.as_micros());
        self.procedures.push(procedure);
        self.run_ids.push(run_id);
        self.labels.push(label);
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> TraceRow<'_> {
        assert!(i < self.len(), "row {i} out of bounds (len {})", self.len());
        TraceRow {
            batch: self,
            row: i,
        }
    }

    /// Owned [`TraceObject`] for row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn materialize(&self, i: usize) -> TraceObject {
        self.get(i).to_object()
    }

    /// Iterates borrowed row views in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = TraceRow<'_>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Builds a batch from a slice of rows.
    pub fn from_traces(traces: &[TraceObject]) -> Self {
        let mut batch = TraceBatch::with_capacity(traces.len());
        for t in traces {
            batch.push(t);
        }
        batch
    }

    /// Materializes every row.
    pub fn to_traces(&self) -> Vec<TraceObject> {
        (0..self.len()).map(|i| self.materialize(i)).collect()
    }

    /// Appends every row of `other`, preserving order.
    pub fn append(&mut self, other: &TraceBatch) {
        self.ensure_offsets();
        let base_args = self.args.len() as u32;
        let base_rows = self.len() as u32;
        self.ids.extend_from_slice(&other.ids);
        self.timestamps_us.extend_from_slice(&other.timestamps_us);
        self.devices.extend_from_slice(&other.devices);
        self.command_tokens.extend_from_slice(&other.command_tokens);
        self.arg_offsets
            .extend(other.arg_offsets.iter().skip(1).map(|o| o + base_args));
        self.args.extend_from_slice(&other.args);
        self.modes.extend_from_slice(&other.modes);
        self.return_values.extend_from_slice(&other.return_values);
        self.exceptions.extend(
            other
                .exceptions
                .iter()
                .map(|(row, msg)| (row + base_rows, msg.clone())),
        );
        self.response_times_us
            .extend_from_slice(&other.response_times_us);
        self.procedures.extend_from_slice(&other.procedures);
        self.run_ids.extend_from_slice(&other.run_ids);
        self.labels.extend_from_slice(&other.labels);
    }

    /// Appends every row of `other`, consuming it — argument, return
    /// value, and exception payloads move instead of cloning, so the
    /// splice is a handful of `memcpy`s regardless of how much heap
    /// the rows carry.
    pub fn append_owned(&mut self, mut other: TraceBatch) {
        self.ensure_offsets();
        let base_args = self.args.len() as u32;
        let base_rows = self.len() as u32;
        self.ids.append(&mut other.ids);
        self.timestamps_us.append(&mut other.timestamps_us);
        self.devices.append(&mut other.devices);
        self.command_tokens.append(&mut other.command_tokens);
        self.arg_offsets
            .extend(other.arg_offsets.iter().skip(1).map(|o| o + base_args));
        self.args.append(&mut other.args);
        self.modes.append(&mut other.modes);
        self.return_values.append(&mut other.return_values);
        self.exceptions.extend(
            other
                .exceptions
                .into_iter()
                .map(|(row, msg)| (row + base_rows, msg)),
        );
        self.response_times_us.append(&mut other.response_times_us);
        self.procedures.append(&mut other.procedures);
        self.run_ids.append(&mut other.run_ids);
        self.labels.append(&mut other.labels);
    }

    /// Removes every row, retaining allocations — the natural reset
    /// for a reused per-chunk scratch batch.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.timestamps_us.clear();
        self.devices.clear();
        self.command_tokens.clear();
        self.arg_offsets.clear();
        self.arg_offsets.push(0);
        self.args.clear();
        self.modes.clear();
        self.return_values.clear();
        self.exceptions.clear();
        self.response_times_us.clear();
        self.procedures.clear();
        self.run_ids.clear();
        self.labels.clear();
    }

    /// The dense command-token column ([`CommandType::token_id`] per
    /// row) — what the language models consume directly.
    pub fn command_token_ids(&self) -> &[u16] {
        &self.command_tokens
    }

    /// Command type of row `i` (decoded from the dense column).
    pub fn command_type(&self, i: usize) -> CommandType {
        CommandType::from_token_id(self.command_tokens[i] as usize)
            .expect("token ids in a batch are valid by construction")
    }

    /// The timestamp column, in microseconds since the epoch.
    pub fn timestamps_us(&self) -> &[u64] {
        &self.timestamps_us
    }

    /// The device column.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// The run-id column.
    pub fn run_ids(&self) -> &[Option<RunId>] {
        &self.run_ids
    }

    /// The label column.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The procedure column.
    pub fn procedures(&self) -> &[ProcedureKind] {
        &self.procedures
    }

    /// Approximate heap memory held by the batch's columns, in bytes.
    /// Used by the benches to show peak memory tracks batch size, not
    /// campaign size.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ids.capacity() * size_of::<u64>()
            + self.timestamps_us.capacity() * size_of::<u64>()
            + self.devices.capacity() * size_of::<DeviceId>()
            + self.command_tokens.capacity() * size_of::<u16>()
            + self.arg_offsets.capacity() * size_of::<u32>()
            + self.args.capacity() * size_of::<Value>()
            + self.modes.capacity() * size_of::<TraceMode>()
            + self.return_values.capacity() * size_of::<Value>()
            + self.exceptions.capacity() * size_of::<(u32, String)>()
            + self.response_times_us.capacity() * size_of::<u64>()
            + self.procedures.capacity() * size_of::<ProcedureKind>()
            + self.run_ids.capacity() * size_of::<Option<RunId>>()
            + self.labels.capacity() * size_of::<Label>()
    }

    fn exception_of(&self, row: usize) -> Option<&str> {
        self.exceptions
            .binary_search_by_key(&(row as u32), |(r, _)| *r)
            .ok()
            .map(|idx| self.exceptions[idx].1.as_str())
    }

    fn args_of(&self, row: usize) -> &[Value] {
        let start = self.arg_offsets[row] as usize;
        let end = self.arg_offsets[row + 1] as usize;
        &self.args[start..end]
    }

    /// The trace-id column.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The capture-mode column.
    pub fn modes(&self) -> &[TraceMode] {
        &self.modes
    }

    /// The return-value column.
    pub fn return_values(&self) -> &[Value] {
        &self.return_values
    }

    /// The response-time column, in microseconds.
    pub fn response_times_us(&self) -> &[u64] {
        &self.response_times_us
    }

    /// The argument-offset column: `arg_offsets()[i]..arg_offsets()[i+1]`
    /// indexes row `i`'s arguments in [`TraceBatch::arg_values`]. Always
    /// `len() + 1` entries (a lone `0` for an empty batch).
    pub fn arg_offsets(&self) -> &[u32] {
        if self.arg_offsets.is_empty() {
            // A default-constructed batch has no offset sentinel yet.
            &[0]
        } else {
            &self.arg_offsets
        }
    }

    /// The shared argument arena addressed by
    /// [`TraceBatch::arg_offsets`].
    pub fn arg_values(&self) -> &[Value] {
        &self.args
    }

    /// The sparse exception column: `(row, message)` pairs, ascending
    /// by row.
    pub fn exception_rows(&self) -> &[(u32, String)] {
        &self.exceptions
    }

    /// Rebuilds a batch from raw columns — the decode half of a
    /// columnar serializer. Inverse of reading the individual column
    /// accessors on the encode side.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RadError::Store`] when the columns are not a
    /// coherent batch: mismatched column lengths, a non-monotonic or
    /// mis-sized offset column, out-of-range token ids, or exception
    /// rows that are unsorted or out of bounds.
    pub fn from_columns(columns: TraceColumns) -> Result<TraceBatch, crate::RadError> {
        let TraceColumns {
            ids,
            timestamps_us,
            devices,
            command_tokens,
            arg_offsets,
            args,
            modes,
            return_values,
            exceptions,
            response_times_us,
            procedures,
            run_ids,
            labels,
        } = columns;
        let rows = ids.len();
        let fail = |reason: String| Err(crate::RadError::Store(reason));
        let lanes = [
            ("timestamps_us", timestamps_us.len()),
            ("devices", devices.len()),
            ("command_tokens", command_tokens.len()),
            ("modes", modes.len()),
            ("return_values", return_values.len()),
            ("response_times_us", response_times_us.len()),
            ("procedures", procedures.len()),
            ("run_ids", run_ids.len()),
            ("labels", labels.len()),
        ];
        for (name, len) in lanes {
            if len != rows {
                return fail(format!("column `{name}` has {len} rows, expected {rows}"));
            }
        }
        if arg_offsets.len() != rows + 1 {
            return fail(format!(
                "arg_offsets has {} entries, expected {}",
                arg_offsets.len(),
                rows + 1
            ));
        }
        if arg_offsets.first() != Some(&0) {
            return fail("arg_offsets must start at 0".to_owned());
        }
        if arg_offsets.windows(2).any(|w| w[0] > w[1]) {
            return fail("arg_offsets must be non-decreasing".to_owned());
        }
        if *arg_offsets.last().expect("non-empty by construction") as usize != args.len() {
            return fail(format!(
                "arg_offsets end at {} but arena holds {} values",
                arg_offsets.last().expect("non-empty by construction"),
                args.len()
            ));
        }
        if let Some(&tok) = command_tokens
            .iter()
            .find(|&&t| CommandType::from_token_id(t as usize).is_none())
        {
            return fail(format!("unknown command token id {tok}"));
        }
        if exceptions.windows(2).any(|w| w[0].0 >= w[1].0) {
            return fail("exception rows must be strictly ascending".to_owned());
        }
        if exceptions.last().is_some_and(|(r, _)| *r as usize >= rows) {
            return fail("exception row out of bounds".to_owned());
        }
        Ok(TraceBatch {
            ids,
            timestamps_us,
            devices,
            command_tokens,
            arg_offsets,
            args,
            modes,
            return_values,
            exceptions,
            response_times_us,
            procedures,
            run_ids,
            labels,
        })
    }

    /// Gathers the given rows into a new batch, column-wise — no
    /// per-row [`TraceObject`] materialization. Row indices may repeat
    /// and appear in any order; output order follows `rows`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, rows: &[usize]) -> TraceBatch {
        let mut out = TraceBatch::with_capacity(rows.len());
        for &i in rows {
            assert!(i < self.len(), "row {i} out of bounds (len {})", self.len());
            out.ids.push(self.ids[i]);
            out.timestamps_us.push(self.timestamps_us[i]);
            out.devices.push(self.devices[i]);
            out.command_tokens.push(self.command_tokens[i]);
            out.args.extend_from_slice(self.args_of(i));
            out.arg_offsets.push(out.args.len() as u32);
            out.modes.push(self.modes[i]);
            out.return_values.push(self.return_values[i].clone());
            if let Some(msg) = self.exception_of(i) {
                out.exceptions
                    .push((out.ids.len() as u32 - 1, msg.to_owned()));
            }
            out.response_times_us.push(self.response_times_us[i]);
            out.procedures.push(self.procedures[i]);
            out.run_ids.push(self.run_ids[i]);
            out.labels.push(self.labels[i]);
        }
        out
    }
}

/// Raw columns for [`TraceBatch::from_columns`] — the decode-side
/// counterpart of the batch's column accessors. Field semantics match
/// the accessors of the same name.
#[derive(Debug, Clone, Default)]
#[allow(missing_docs)]
pub struct TraceColumns {
    pub ids: Vec<u64>,
    pub timestamps_us: Vec<u64>,
    pub devices: Vec<DeviceId>,
    pub command_tokens: Vec<u16>,
    pub arg_offsets: Vec<u32>,
    pub args: Vec<Value>,
    pub modes: Vec<TraceMode>,
    pub return_values: Vec<Value>,
    pub exceptions: Vec<(u32, String)>,
    pub response_times_us: Vec<u64>,
    pub procedures: Vec<ProcedureKind>,
    pub run_ids: Vec<Option<RunId>>,
    pub labels: Vec<Label>,
}

impl From<Vec<TraceObject>> for TraceBatch {
    fn from(traces: Vec<TraceObject>) -> Self {
        let mut batch = TraceBatch::with_capacity(traces.len());
        for t in traces {
            batch.push_owned(t);
        }
        batch
    }
}

impl From<TraceBatch> for Vec<TraceObject> {
    fn from(batch: TraceBatch) -> Self {
        batch.to_traces()
    }
}

impl FromIterator<TraceObject> for TraceBatch {
    fn from_iter<I: IntoIterator<Item = TraceObject>>(iter: I) -> Self {
        let mut batch = TraceBatch::new();
        for t in iter {
            batch.push_owned(t);
        }
        batch
    }
}

/// A borrowed row view into a [`TraceBatch`], mirroring the accessor
/// surface of [`TraceObject`] without materializing one.
#[derive(Debug, Clone, Copy)]
pub struct TraceRow<'a> {
    batch: &'a TraceBatch,
    row: usize,
}

impl<'a> TraceRow<'a> {
    /// Row index within the batch.
    pub fn row(&self) -> usize {
        self.row
    }

    /// Dataset-wide identifier.
    pub fn id(&self) -> TraceId {
        TraceId(self.batch.ids[self.row])
    }

    /// Simulated time at which the command was issued.
    pub fn timestamp(&self) -> SimInstant {
        SimInstant::from_micros(self.batch.timestamps_us[self.row])
    }

    /// Target device instance.
    pub fn device(&self) -> DeviceId {
        self.batch.devices[self.row]
    }

    /// Command type, decoded from the dense token column.
    pub fn command_type(&self) -> CommandType {
        self.batch.command_type(self.row)
    }

    /// Dense command-token id ([`CommandType::token_id`]).
    pub fn command_token_id(&self) -> u16 {
        self.batch.command_tokens[self.row]
    }

    /// Positional arguments (borrowed from the shared arena).
    pub fn args(&self) -> &'a [Value] {
        self.batch.args_of(self.row)
    }

    /// Capture mode.
    pub fn mode(&self) -> TraceMode {
        self.batch.modes[self.row]
    }

    /// Logged return value.
    pub fn return_value(&self) -> &'a Value {
        &self.batch.return_values[self.row]
    }

    /// Logged exception message, if the call raised.
    pub fn exception(&self) -> Option<&'a str> {
        self.batch.exception_of(self.row)
    }

    /// End-to-end response time observed by the lab computer.
    pub fn response_time(&self) -> SimDuration {
        SimDuration::from_micros(self.batch.response_times_us[self.row])
    }

    /// Procedure type this command belongs to.
    pub fn procedure(&self) -> ProcedureKind {
        self.batch.procedures[self.row]
    }

    /// Supervised run id, if any.
    pub fn run_id(&self) -> Option<RunId> {
        self.batch.run_ids[self.row]
    }

    /// Ground-truth label inherited from the run.
    pub fn label(&self) -> Label {
        self.batch.labels[self.row]
    }

    /// Materializes an owned [`TraceObject`] for this row.
    pub fn to_object(&self) -> TraceObject {
        TraceObject::from_raw(
            self.id(),
            self.timestamp(),
            self.device(),
            Command::new(self.command_type(), self.args().to_vec()),
            self.mode(),
            self.return_value().clone(),
            self.exception().map(str::to_owned),
            self.response_time(),
            self.procedure(),
            self.run_id(),
            self.label(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64, ct: CommandType, args: Vec<Value>) -> TraceObject {
        let mut b = TraceObject::builder(
            TraceId(id),
            SimInstant::from_micros(1_000 * id),
            DeviceId::primary(ct.device()),
            Command::new(ct, args),
        )
        .mode(TraceMode::Remote)
        .return_value(Value::Bool(true))
        .response_time(SimDuration::from_millis(3));
        if id.is_multiple_of(2) {
            b = b.run(
                ProcedureKind::JoystickMovements,
                RunId(id as u32),
                Label::Benign,
            );
        }
        if id.is_multiple_of(3) {
            b = b.exception("boom");
        }
        b.build()
    }

    fn samples() -> Vec<TraceObject> {
        vec![
            sample(0, CommandType::Arm, vec![Value::Int(7)]),
            sample(1, CommandType::TecanGetStatus, vec![]),
            sample(2, CommandType::Mvng, vec![Value::Str("a".into())]),
            sample(3, CommandType::IkaSetSpeed, vec![Value::Float(1.5)]),
        ]
    }

    #[test]
    fn round_trips_losslessly() {
        let traces = samples();
        let batch = TraceBatch::from_traces(&traces);
        assert_eq!(batch.len(), traces.len());
        assert_eq!(batch.to_traces(), traces);
    }

    #[test]
    fn row_view_matches_materialized_object() {
        let traces = samples();
        let batch = TraceBatch::from_traces(&traces);
        for (i, t) in traces.iter().enumerate() {
            let row = batch.get(i);
            assert_eq!(row.id(), t.id());
            assert_eq!(row.timestamp(), t.timestamp());
            assert_eq!(row.device(), t.device());
            assert_eq!(row.command_type(), t.command_type());
            assert_eq!(row.args(), t.command().args());
            assert_eq!(row.mode(), t.mode());
            assert_eq!(row.return_value(), t.return_value());
            assert_eq!(row.exception(), t.exception());
            assert_eq!(row.response_time(), t.response_time());
            assert_eq!(row.procedure(), t.procedure());
            assert_eq!(row.run_id(), t.run_id());
            assert_eq!(row.label(), t.label());
        }
    }

    #[test]
    fn append_preserves_order_args_and_exceptions() {
        let traces = samples();
        let mut a = TraceBatch::from_traces(&traces[..2]);
        let b = TraceBatch::from_traces(&traces[2..]);
        a.append(&b);
        assert_eq!(a.to_traces(), traces);
    }

    #[test]
    fn owned_append_equals_borrowed_append() {
        let traces = samples();
        let mut borrowed = TraceBatch::from_traces(&traces[..2]);
        borrowed.append(&TraceBatch::from_traces(&traces[2..]));
        let mut owned = TraceBatch::from_traces(&traces[..2]);
        owned.append_owned(TraceBatch::from_traces(&traces[2..]));
        assert_eq!(owned, borrowed);
        assert_eq!(owned.to_traces(), traces);
    }

    #[test]
    fn clear_retains_nothing_but_stays_usable() {
        let mut batch = TraceBatch::from_traces(&samples());
        batch.clear();
        assert!(batch.is_empty());
        batch.push(&sample(9, CommandType::Grip, vec![Value::Int(2)]));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.get(0).command_type(), CommandType::Grip);
        assert_eq!(batch.get(0).exception(), Some("boom"));
    }

    #[test]
    fn token_column_is_dense_and_decodable() {
        let batch = TraceBatch::from_traces(&samples());
        for (i, &tok) in batch.command_token_ids().iter().enumerate() {
            assert_eq!(
                CommandType::from_token_id(tok as usize).unwrap(),
                batch.get(i).command_type()
            );
        }
    }
}
