//! Error types shared across the workspace.

use std::error::Error as StdError;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::device::DeviceKind;

/// Top-level error type of the RAD workspace.
///
/// # Examples
///
/// ```
/// use rad_core::RadError;
///
/// let err = RadError::UnknownCommand("FOO".into());
/// assert_eq!(err.to_string(), "unknown command mnemonic `FOO`");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RadError {
    /// A device name failed to parse.
    UnknownDevice(String),
    /// A command mnemonic failed to parse.
    UnknownCommand(String),
    /// A command was sent to a device that does not implement it.
    WrongDevice {
        /// The device the command was sent to.
        sent_to: DeviceKind,
        /// The device that owns the command.
        owner: DeviceKind,
        /// The command mnemonic.
        mnemonic: &'static str,
    },
    /// A device rejected or failed a command.
    Device(DeviceFault),
    /// The RPC layer failed (protocol violation, framing error, encode
    /// or decode failure). Timeouts and disconnects have their own
    /// variants — retry logic depends on telling them apart.
    Rpc(String),
    /// An RPC wait elapsed without a response. The peer may still be
    /// alive (the request or the response may simply have been lost),
    /// so the call is safe to retry with the same idempotency token.
    RpcTimeout(String),
    /// The RPC peer disconnected. Retrying over the same transport
    /// cannot succeed; the caller must reconnect or degrade.
    RpcDisconnected(String),
    /// The server refused admission: the worker pool, accept backlog,
    /// or per-tenant queue is full (or the tenant already has an
    /// active session). The request was never executed, so the caller
    /// may retry after backing off — jittered backoff, so rejected
    /// clients don't stampede back in lockstep.
    Overloaded(String),
    /// A frame's length prefix exceeds the endpoint's configured
    /// maximum. On a byte stream this means framing is lost for good:
    /// servers quarantine the session rather than guess at a resync
    /// point.
    FrameTooLarge {
        /// The advertised frame length.
        len: usize,
        /// The endpoint's configured maximum.
        limit: usize,
    },
    /// A dataset/store operation failed.
    Store(String),
    /// A write-ahead-log frame failed its CRC or structural check —
    /// either a bit flip at rest or garbage where a frame should be.
    /// Recovery quarantines the segment; strict readers surface this.
    WalCorrupt {
        /// Segment file name the bad frame lives in.
        segment: String,
        /// Byte offset of the first invalid frame.
        offset: u64,
        /// What failed (crc mismatch, bogus length, ...).
        reason: String,
    },
    /// A write-ahead-log segment ends mid-frame: the process died while
    /// appending. Recovery truncates the tail at `offset` and carries
    /// on — this variant only reaches callers in strict mode.
    WalTornWrite {
        /// Segment file name with the torn tail.
        segment: String,
        /// Byte offset at which the complete prefix ends.
        offset: u64,
    },
    /// A sealed columnar segment failed its CRC or structural check —
    /// a bit flip at rest, a truncated file, or garbage where a column
    /// should be. Readers quarantine the segment and scans carry on
    /// with the survivors.
    SegmentCorrupt {
        /// Segment file name the damage lives in.
        segment: String,
        /// Byte offset of the first invalid structure.
        offset: u64,
        /// What failed (crc mismatch, bogus column length, ...).
        reason: String,
    },
    /// A checkpoint or resume target does not match the campaign that
    /// is trying to resume from it (different seed, scale, or diverged
    /// persisted records).
    CheckpointMismatch {
        /// What disagreed.
        reason: String,
    },
    /// An analysis precondition was violated (empty corpus, mismatched
    /// lengths, ...).
    Analysis(String),
    /// A scenario spec document failed validation: a missing or
    /// ill-typed field, an unknown key, or a value outside its domain.
    /// `field` is the dotted path of the offending location, so a
    /// scenario author can fix the file without reading Rust.
    Spec {
        /// Dotted path of the offending field (e.g. `faults.profile.drop`).
        field: String,
        /// What is wrong with it.
        reason: String,
    },
}

impl RadError {
    /// Whether a failed RPC call may be safely re-attempted with the
    /// same idempotency token.
    ///
    /// [`RadError::RpcTimeout`] is retryable: the request or its
    /// response was lost in flight, and server-side deduplication
    /// guarantees the retry cannot double-execute.
    /// [`RadError::Overloaded`] is retryable too: admission control
    /// rejects *before* execution, so backing off and re-attempting is
    /// always safe. Disconnects are terminal for the transport and
    /// everything else is a caller or protocol error.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RadError::RpcTimeout(_) | RadError::Overloaded(_))
    }

    /// A [`RadError::Spec`] at `field` — the uniform constructor every
    /// spec parser uses.
    pub fn spec(field: impl Into<String>, reason: impl fmt::Display) -> Self {
        RadError::Spec {
            field: field.into(),
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for RadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadError::UnknownDevice(name) => write!(f, "unknown device `{name}`"),
            RadError::UnknownCommand(name) => write!(f, "unknown command mnemonic `{name}`"),
            RadError::WrongDevice {
                sent_to,
                owner,
                mnemonic,
            } => write!(
                f,
                "command `{mnemonic}` belongs to {owner} but was sent to {sent_to}"
            ),
            RadError::Device(fault) => write!(f, "device fault: {fault}"),
            RadError::Rpc(msg) => write!(f, "rpc failure: {msg}"),
            RadError::RpcTimeout(msg) => write!(f, "rpc timed out: {msg}"),
            RadError::RpcDisconnected(msg) => write!(f, "rpc peer disconnected: {msg}"),
            RadError::Overloaded(msg) => write!(f, "server overloaded: {msg}"),
            RadError::FrameTooLarge { len, limit } => {
                write!(f, "frame length {len} exceeds the {limit}-byte limit")
            }
            RadError::Store(msg) => write!(f, "store failure: {msg}"),
            RadError::WalCorrupt {
                segment,
                offset,
                reason,
            } => write!(
                f,
                "wal segment {segment} corrupt at byte {offset}: {reason}"
            ),
            RadError::WalTornWrite { segment, offset } => {
                write!(f, "wal segment {segment} torn at byte {offset}")
            }
            RadError::SegmentCorrupt {
                segment,
                offset,
                reason,
            } => write!(f, "segment {segment} corrupt at byte {offset}: {reason}"),
            RadError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint mismatch: {reason}")
            }
            RadError::Analysis(msg) => write!(f, "analysis precondition violated: {msg}"),
            RadError::Spec { field, reason } => {
                write!(f, "scenario spec `{field}`: {reason}")
            }
        }
    }
}

impl StdError for RadError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            RadError::Device(fault) => Some(fault),
            _ => None,
        }
    }
}

impl From<DeviceFault> for RadError {
    fn from(fault: DeviceFault) -> Self {
        RadError::Device(fault)
    }
}

/// A fault raised by a simulated device while executing a command.
///
/// These map onto the exception strings logged in RAD trace objects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceFault {
    /// Command arguments were malformed or out of range.
    InvalidArgument {
        /// What was wrong.
        reason: String,
    },
    /// The command is not valid in the device's current state
    /// (e.g. `start_dosing` with the front door open).
    InvalidState {
        /// What the device was doing instead.
        reason: String,
    },
    /// A motion command caused a physical collision. This is the event
    /// that turns a run anomalous.
    Collision {
        /// What the moving part hit.
        obstacle: String,
    },
    /// The device stopped responding (unplugged cable, crashed firmware).
    Timeout,
    /// An emergency stop (operator or protective) aborted the command.
    EmergencyStop,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceFault::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            DeviceFault::InvalidState { reason } => write!(f, "invalid state: {reason}"),
            DeviceFault::Collision { obstacle } => write!(f, "collision with {obstacle}"),
            DeviceFault::Timeout => f.write_str("device timed out"),
            DeviceFault::EmergencyStop => f.write_str("emergency stop"),
        }
    }
}

impl StdError for DeviceFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_unpunctuated() {
        let messages = [
            RadError::UnknownDevice("X".into()).to_string(),
            RadError::Rpc("connection reset".into()).to_string(),
            RadError::Device(DeviceFault::Timeout).to_string(),
        ];
        for msg in messages {
            assert!(!msg.ends_with('.'), "{msg}");
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn device_fault_is_source_of_rad_error() {
        let err = RadError::from(DeviceFault::EmergencyStop);
        assert!(err.source().is_some());
        assert!(RadError::Rpc("x".into()).source().is_none());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RadError>();
        assert_send_sync::<DeviceFault>();
    }

    #[test]
    fn timeout_and_disconnect_are_distinct() {
        let timeout = RadError::RpcTimeout("receive".into());
        let gone = RadError::RpcDisconnected("peer".into());
        assert_ne!(timeout, gone);
        assert!(timeout.to_string().contains("timed out"));
        assert!(gone.to_string().contains("disconnected"));
    }

    #[test]
    fn only_timeouts_and_overloads_are_retryable() {
        assert!(RadError::RpcTimeout("x".into()).is_retryable());
        assert!(RadError::Overloaded("pool full".into()).is_retryable());
        assert!(!RadError::RpcDisconnected("x".into()).is_retryable());
        assert!(!RadError::Rpc("x".into()).is_retryable());
        assert!(!RadError::Device(DeviceFault::Timeout).is_retryable());
        assert!(!RadError::FrameTooLarge { len: 9, limit: 4 }.is_retryable());
    }

    #[test]
    fn overload_and_frame_limit_render_their_context() {
        let overload = RadError::Overloaded("worker pool full".into());
        assert!(overload.to_string().contains("worker pool full"));
        let oversize = RadError::FrameTooLarge {
            len: 2048,
            limit: 1024,
        };
        let msg = oversize.to_string();
        assert!(msg.contains("2048") && msg.contains("1024"), "{msg}");
    }

    #[test]
    fn wal_errors_name_segment_and_offset() {
        let corrupt = RadError::WalCorrupt {
            segment: "wal-000003.log".into(),
            offset: 128,
            reason: "crc mismatch".into(),
        };
        let msg = corrupt.to_string();
        assert!(msg.contains("wal-000003.log") && msg.contains("128") && msg.contains("crc"));
        let torn = RadError::WalTornWrite {
            segment: "wal-000001.log".into(),
            offset: 64,
        };
        assert!(torn.to_string().contains("torn at byte 64"));
        let mismatch = RadError::CheckpointMismatch {
            reason: "seed 3 vs 7".into(),
        };
        assert!(mismatch.to_string().contains("seed 3 vs 7"));
        assert!(!corrupt.is_retryable() && !torn.is_retryable());
    }

    #[test]
    fn wrong_device_message_names_both_devices() {
        let err = RadError::WrongDevice {
            sent_to: DeviceKind::Ika,
            owner: DeviceKind::Tecan,
            mnemonic: "Q",
        };
        let msg = err.to_string();
        assert!(msg.contains("IKA") && msg.contains("Tecan") && msg.contains('Q'));
    }
}
