//! Shared vocabulary for the RAD reproduction.
//!
//! This crate defines the types that every other crate in the workspace
//! speaks: the five simulated Hein Lab devices ([`DeviceKind`]), the 52
//! command types reconstructed from Fig. 5(a) of the paper
//! ([`CommandType`]), the trace-object schema produced by the RATracer
//! middlebox ([`TraceObject`]), the supervised procedure taxonomy P1–P6
//! ([`ProcedureKind`]), and a deterministic simulated clock ([`SimClock`]).
//!
//! # Examples
//!
//! ```
//! use rad_core::{CommandType, DeviceKind};
//!
//! // Every command type belongs to exactly one device.
//! assert_eq!(CommandType::Arm.device(), DeviceKind::C9);
//! assert_eq!(CommandType::all().len(), 52);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod batch;
pub mod command;
pub mod device;
pub mod error;
pub mod par;
pub mod procedure;
pub mod sink;
pub mod spec;
pub mod time;
pub mod trace;
pub mod value;

pub use alert::{Alert, AlertSink, AlertTee, CountingAlertSink, SharedAlerts};
pub use batch::{TraceBatch, TraceColumns, TraceRow};
pub use command::{Command, CommandCategory, CommandType};
pub use device::{DeviceId, DeviceKind};
pub use error::{DeviceFault, RadError};
pub use procedure::{AnomalyCause, Label, ProcedureKind, RunId, RunMetadata};
pub use sink::{
    Chunked, CountingSink, Filtered, SliceSource, Tee, TraceSink, TraceSinkExt, TraceSource,
};
pub use time::{SimClock, SimDuration, SimInstant};
pub use trace::{TraceGap, TraceId, TraceMode, TraceObject};
pub use value::Value;
