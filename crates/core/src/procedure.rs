//! The supervised procedure taxonomy of §IV.
//!
//! RAD labels 25 supervised runs across four procedure types (P1–P4),
//! plus two controlled power-experiment procedures (P5, P6). Everything
//! else in the three-month campaign is labeled *unknown procedure*.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::RadError;

use crate::time::SimInstant;

/// A procedure type from §IV of the paper.
///
/// # Examples
///
/// ```
/// use rad_core::ProcedureKind;
///
/// assert_eq!(ProcedureKind::JoystickMovements.paper_id(), "P4");
/// assert_eq!(ProcedureKind::supervised().len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProcedureKind {
    /// P1: Automated Solubility with N9 (5 supervised runs).
    AutomatedSolubilityN9,
    /// P2: Automated Solubility with N9 and UR3e (4 supervised runs).
    AutomatedSolubilityN9Ur3e,
    /// P3: Crystal Solubility (4 supervised runs).
    CrystalSolubility,
    /// P4: Joystick Movements (12 supervised runs).
    JoystickMovements,
    /// P5: UR3e movements with different velocities (power experiments).
    VelocitySweep,
    /// P6: UR3e movements with different payload weights (power experiments).
    PayloadSweep,
    /// Unsupervised lab activity ("unknown procedure" label in RAD).
    Unknown,
}

impl ProcedureKind {
    /// The paper's identifier (`"P1"`..`"P6"`, or `"unknown"`).
    pub const fn paper_id(self) -> &'static str {
        match self {
            ProcedureKind::AutomatedSolubilityN9 => "P1",
            ProcedureKind::AutomatedSolubilityN9Ur3e => "P2",
            ProcedureKind::CrystalSolubility => "P3",
            ProcedureKind::JoystickMovements => "P4",
            ProcedureKind::VelocitySweep => "P5",
            ProcedureKind::PayloadSweep => "P6",
            ProcedureKind::Unknown => "unknown",
        }
    }

    /// Long name as used in §IV.
    pub const fn name(self) -> &'static str {
        match self {
            ProcedureKind::AutomatedSolubilityN9 => "Automated Solubility with N9",
            ProcedureKind::AutomatedSolubilityN9Ur3e => "Automated Solubility with N9 and UR3e",
            ProcedureKind::CrystalSolubility => "Crystal Solubility",
            ProcedureKind::JoystickMovements => "Joystick Movements",
            ProcedureKind::VelocitySweep => "UR3e Movements with Different Velocities",
            ProcedureKind::PayloadSweep => "UR3e Movements with Different Payload Weights",
            ProcedureKind::Unknown => "Unknown Procedure",
        }
    }

    /// The four procedure types with supervised runs in the command
    /// dataset (P1–P4), in Fig. 6 block order: P4 first (ids 0–11), then
    /// P1 (12–16), P2 (17–20), P3 (21–24).
    pub const fn supervised() -> [ProcedureKind; 4] {
        [
            ProcedureKind::JoystickMovements,
            ProcedureKind::AutomatedSolubilityN9,
            ProcedureKind::AutomatedSolubilityN9Ur3e,
            ProcedureKind::CrystalSolubility,
        ]
    }

    /// Number of supervised runs §IV reports for this procedure type
    /// (zero for P5/P6/unknown, which are not in the 25-run set).
    pub const fn supervised_run_count(self) -> usize {
        match self {
            ProcedureKind::AutomatedSolubilityN9 => 5,
            ProcedureKind::AutomatedSolubilityN9Ur3e => 4,
            ProcedureKind::CrystalSolubility => 4,
            ProcedureKind::JoystickMovements => 12,
            _ => 0,
        }
    }
}

impl fmt::Display for ProcedureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_id())
    }
}

impl FromStr for ProcedureKind {
    type Err = RadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "P1" => Ok(ProcedureKind::AutomatedSolubilityN9),
            "P2" => Ok(ProcedureKind::AutomatedSolubilityN9Ur3e),
            "P3" => Ok(ProcedureKind::CrystalSolubility),
            "P4" => Ok(ProcedureKind::JoystickMovements),
            "P5" => Ok(ProcedureKind::VelocitySweep),
            "P6" => Ok(ProcedureKind::PayloadSweep),
            "unknown" => Ok(ProcedureKind::Unknown),
            other => Err(RadError::Store(format!("unknown procedure id `{other}`"))),
        }
    }
}

/// Ground-truth label of a procedure run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Run completed successfully or was stopped intentionally by the
    /// operator; no physical incident.
    Benign,
    /// Run ended in a crash between a robot arm and another device.
    Anomalous(AnomalyCause),
    /// Unsupervised run; no ground truth.
    Unknown,
}

impl Label {
    /// Whether the run is labeled anomalous.
    pub const fn is_anomalous(self) -> bool {
        matches!(self, Label::Anomalous(_))
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Benign => f.write_str("benign"),
            Label::Anomalous(cause) => write!(f, "anomalous({cause})"),
            Label::Unknown => f.write_str("unknown"),
        }
    }
}

impl FromStr for Label {
    type Err = RadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "benign" => Ok(Label::Benign),
            "unknown" => Ok(Label::Unknown),
            "anomalous(quantos-door-vs-n9)" => Ok(Label::Anomalous(AnomalyCause::QuantosDoorVsN9)),
            "anomalous(quantos-door-vs-ur3e)" => {
                Ok(Label::Anomalous(AnomalyCause::QuantosDoorVsUr3e))
            }
            "anomalous(arm-vs-tecan)" => Ok(Label::Anomalous(AnomalyCause::ArmVsTecan)),
            other => Err(RadError::Store(format!("unknown label `{other}`"))),
        }
    }
}

/// Why a supervised run was labeled anomalous.
///
/// §V narrates three anomalies among the 25 supervised runs; these cover
/// the crash geometries it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyCause {
    /// The Quantos front door crashed into the N9 robot arm
    /// (procedure run 16, a P1 run).
    QuantosDoorVsN9,
    /// The Quantos front door crashed into the UR3e
    /// (procedure run 17, a P2 run).
    QuantosDoorVsUr3e,
    /// The robot arm crashed into the Tecan at the end of the experiment
    /// (procedure run 22, a P3 run).
    ArmVsTecan,
}

impl fmt::Display for AnomalyCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AnomalyCause::QuantosDoorVsN9 => "quantos-door-vs-n9",
            AnomalyCause::QuantosDoorVsUr3e => "quantos-door-vs-ur3e",
            AnomalyCause::ArmVsTecan => "arm-vs-tecan",
        };
        f.write_str(s)
    }
}

/// Identifier of a procedure run within a dataset.
///
/// Supervised runs use ids 0–24 in Fig. 6 order; unsupervised runs get
/// ids from 1000 upward.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RunId(pub u32);

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run-{}", self.0)
    }
}

/// Metadata recorded for every procedure run in the dataset.
///
/// # Examples
///
/// ```
/// use rad_core::{Label, ProcedureKind, RunId, RunMetadata, SimInstant};
///
/// let meta = RunMetadata::new(RunId(12), ProcedureKind::AutomatedSolubilityN9, SimInstant::EPOCH)
///     .with_label(Label::Benign)
///     .with_note("used joystick to position N9; stopped midway (solid shortage)");
/// assert!(!meta.label().is_anomalous());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetadata {
    run_id: RunId,
    kind: ProcedureKind,
    started_at: SimInstant,
    label: Label,
    operator_note: Option<String>,
}

impl RunMetadata {
    /// Creates metadata for a run with label [`Label::Unknown`].
    pub fn new(run_id: RunId, kind: ProcedureKind, started_at: SimInstant) -> Self {
        RunMetadata {
            run_id,
            kind,
            started_at,
            label: Label::Unknown,
            operator_note: None,
        }
    }

    /// Sets the ground-truth label.
    #[must_use]
    pub fn with_label(mut self, label: Label) -> Self {
        self.label = label;
        self
    }

    /// Attaches a free-form operator note (the paper's "metadata").
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.operator_note = Some(note.into());
        self
    }

    /// Run identifier.
    pub fn run_id(&self) -> RunId {
        self.run_id
    }

    /// Procedure type.
    pub fn kind(&self) -> ProcedureKind {
        self.kind
    }

    /// Simulated start time.
    pub fn started_at(&self) -> SimInstant {
        self.started_at
    }

    /// Ground-truth label.
    pub fn label(&self) -> Label {
        self.label
    }

    /// Operator note, if any.
    pub fn operator_note(&self) -> Option<&str> {
        self.operator_note.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervised_runs_total_25() {
        let total: usize = ProcedureKind::supervised()
            .iter()
            .map(|p| p.supervised_run_count())
            .sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn paper_ids_are_unique() {
        let kinds = [
            ProcedureKind::AutomatedSolubilityN9,
            ProcedureKind::AutomatedSolubilityN9Ur3e,
            ProcedureKind::CrystalSolubility,
            ProcedureKind::JoystickMovements,
            ProcedureKind::VelocitySweep,
            ProcedureKind::PayloadSweep,
            ProcedureKind::Unknown,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.paper_id(), b.paper_id());
            }
        }
    }

    #[test]
    fn labels_report_anomaly_status() {
        assert!(!Label::Benign.is_anomalous());
        assert!(!Label::Unknown.is_anomalous());
        assert!(Label::Anomalous(AnomalyCause::ArmVsTecan).is_anomalous());
    }

    #[test]
    fn metadata_builder_sets_fields() {
        let meta = RunMetadata::new(
            RunId(7),
            ProcedureKind::CrystalSolubility,
            SimInstant::EPOCH,
        )
        .with_label(Label::Anomalous(AnomalyCause::ArmVsTecan))
        .with_note("crash at end");
        assert_eq!(meta.run_id(), RunId(7));
        assert_eq!(meta.kind(), ProcedureKind::CrystalSolubility);
        assert!(meta.label().is_anomalous());
        assert_eq!(meta.operator_note(), Some("crash at end"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(RunId(3).to_string(), "run-3");
        assert_eq!(
            Label::Anomalous(AnomalyCause::QuantosDoorVsUr3e).to_string(),
            "anomalous(quantos-door-vs-ur3e)"
        );
    }

    #[test]
    fn procedure_ids_round_trip_through_from_str() {
        for kind in [
            ProcedureKind::AutomatedSolubilityN9,
            ProcedureKind::AutomatedSolubilityN9Ur3e,
            ProcedureKind::CrystalSolubility,
            ProcedureKind::JoystickMovements,
            ProcedureKind::VelocitySweep,
            ProcedureKind::PayloadSweep,
            ProcedureKind::Unknown,
        ] {
            let parsed: ProcedureKind = kind.paper_id().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("P9".parse::<ProcedureKind>().is_err());
    }

    #[test]
    fn labels_round_trip_through_from_str() {
        for label in [
            Label::Benign,
            Label::Unknown,
            Label::Anomalous(AnomalyCause::QuantosDoorVsN9),
            Label::Anomalous(AnomalyCause::QuantosDoorVsUr3e),
            Label::Anomalous(AnomalyCause::ArmVsTecan),
        ] {
            let parsed: Label = label.to_string().parse().unwrap();
            assert_eq!(parsed, label);
        }
        assert!("sus".parse::<Label>().is_err());
    }
}
