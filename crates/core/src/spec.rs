//! JSON walking helpers for the declarative scenario plane.
//!
//! Every layer that exposes a spec form ([`FaultPlan`],
//! [`CrashPlan`], [`RetryPolicy`], the streaming detector stages, the
//! campaign itself) parses its section of a scenario document with
//! these helpers, so the whole plane shares one set of rules:
//!
//! - **Unknown fields are rejected**, with the offending dotted path
//!   named — a typo'd knob never silently no-ops.
//! - **Types are strict**: a seed must be a non-negative integer JSON
//!   number; `"42"`, `-1`, and `4.5` are all typed
//!   [`RadError::Spec`] rejections, never coerced.
//! - Every error carries the dotted field path (`faults.profile.drop`),
//!   so a scenario author can fix the file without reading Rust.
//!
//! [`FaultPlan`]: https://docs.rs/rad-middlebox
//! [`CrashPlan`]: https://docs.rs/rad-store
//! [`RetryPolicy`]: https://docs.rs/rad-middlebox
//!
//! # Examples
//!
//! ```
//! use rad_core::spec;
//! use serde_json::json;
//!
//! let doc = json!({"seed": 7, "scale": 0.5});
//! let obj = spec::obj(&doc, "campaign")?;
//! spec::known_fields(obj, "campaign", &["seed", "scale"])?;
//! assert_eq!(spec::req_u64(obj, "campaign", "seed")?, 7);
//! assert_eq!(spec::opt_f64(obj, "campaign", "scale")?, Some(0.5));
//! # Ok::<(), rad_core::RadError>(())
//! ```

use serde_json::{Map, Value as Json};

use crate::RadError;

/// Joins a parent context and a key into a dotted field path.
/// An empty context names the document root.
pub fn path(ctx: &str, key: &str) -> String {
    if ctx.is_empty() {
        key.to_string()
    } else {
        format!("{ctx}.{key}")
    }
}

/// The value must be a JSON object.
///
/// # Errors
///
/// [`RadError::Spec`] naming `ctx` when it is anything else.
pub fn obj<'a>(value: &'a Json, ctx: &str) -> Result<&'a Map<String, Json>, RadError> {
    value
        .as_object()
        .ok_or_else(|| RadError::spec(ctx, format!("expected an object, got {value}")))
}

/// Rejects any key of `obj` not in `allowed` — the unknown-field
/// firewall every spec section passes through.
///
/// # Errors
///
/// [`RadError::Spec`] naming the first unknown key's dotted path and
/// listing the accepted keys.
pub fn known_fields(obj: &Map<String, Json>, ctx: &str, allowed: &[&str]) -> Result<(), RadError> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(RadError::spec(
                path(ctx, key),
                format!("unknown field (accepted: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

/// The field must be present.
///
/// # Errors
///
/// [`RadError::Spec`] naming the missing field.
pub fn req<'a>(obj: &'a Map<String, Json>, ctx: &str, key: &str) -> Result<&'a Json, RadError> {
    obj.get(key)
        .ok_or_else(|| RadError::spec(path(ctx, key), "required field is missing"))
}

fn u64_of(value: &Json, at: &str) -> Result<u64, RadError> {
    value
        .as_u64()
        .ok_or_else(|| RadError::spec(at, format!("expected a non-negative integer, got {value}")))
}

fn f64_of(value: &Json, at: &str) -> Result<f64, RadError> {
    value
        .as_f64()
        .ok_or_else(|| RadError::spec(at, format!("expected a number, got {value}")))
}

fn str_of<'a>(value: &'a Json, at: &str) -> Result<&'a str, RadError> {
    value
        .as_str()
        .ok_or_else(|| RadError::spec(at, format!("expected a string, got {value}")))
}

fn bool_of(value: &Json, at: &str) -> Result<bool, RadError> {
    value
        .as_bool()
        .ok_or_else(|| RadError::spec(at, format!("expected a boolean, got {value}")))
}

/// Required non-negative integer field. Strings, floats with a
/// fractional part, and negative numbers are all typed rejections.
///
/// # Errors
///
/// [`RadError::Spec`] on a missing or ill-typed field.
pub fn req_u64(obj: &Map<String, Json>, ctx: &str, key: &str) -> Result<u64, RadError> {
    u64_of(req(obj, ctx, key)?, &path(ctx, key))
}

/// Optional non-negative integer field (`None` when absent or null).
///
/// # Errors
///
/// [`RadError::Spec`] when present but ill-typed.
pub fn opt_u64(obj: &Map<String, Json>, ctx: &str, key: &str) -> Result<Option<u64>, RadError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => u64_of(v, &path(ctx, key)).map(Some),
    }
}

/// Required finite number field.
///
/// # Errors
///
/// [`RadError::Spec`] on a missing or ill-typed field.
pub fn req_f64(obj: &Map<String, Json>, ctx: &str, key: &str) -> Result<f64, RadError> {
    f64_of(req(obj, ctx, key)?, &path(ctx, key))
}

/// Optional number field (`None` when absent or null).
///
/// # Errors
///
/// [`RadError::Spec`] when present but ill-typed.
pub fn opt_f64(obj: &Map<String, Json>, ctx: &str, key: &str) -> Result<Option<f64>, RadError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => f64_of(v, &path(ctx, key)).map(Some),
    }
}

/// Required string field.
///
/// # Errors
///
/// [`RadError::Spec`] on a missing or ill-typed field.
pub fn req_str<'a>(obj: &'a Map<String, Json>, ctx: &str, key: &str) -> Result<&'a str, RadError> {
    str_of(req(obj, ctx, key)?, &path(ctx, key))
}

/// Optional string field (`None` when absent or null).
///
/// # Errors
///
/// [`RadError::Spec`] when present but ill-typed.
pub fn opt_str<'a>(
    obj: &'a Map<String, Json>,
    ctx: &str,
    key: &str,
) -> Result<Option<&'a str>, RadError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => str_of(v, &path(ctx, key)).map(Some),
    }
}

/// Optional boolean field (`None` when absent or null).
///
/// # Errors
///
/// [`RadError::Spec`] when present but ill-typed.
pub fn opt_bool(obj: &Map<String, Json>, ctx: &str, key: &str) -> Result<Option<bool>, RadError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => bool_of(v, &path(ctx, key)).map(Some),
    }
}

/// A probability field: optional, defaulting to `0.0`, and rejected
/// outside `[0, 1]`.
///
/// # Errors
///
/// [`RadError::Spec`] when ill-typed or out of range.
pub fn opt_prob(obj: &Map<String, Json>, ctx: &str, key: &str) -> Result<f64, RadError> {
    let p = opt_f64(obj, ctx, key)?.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&p) {
        return Err(RadError::spec(
            path(ctx, key),
            format!("probability {p} outside [0, 1]"),
        ));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn unknown_fields_name_their_dotted_path() {
        let doc = json!({"seed": 1, "sedd": 2});
        let map = obj(&doc, "campaign").unwrap();
        let err = known_fields(map, "campaign", &["seed"]).unwrap_err();
        match err {
            RadError::Spec { field, .. } => assert_eq!(field, "campaign.sedd"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn bad_seeds_are_typed_rejections() {
        for bad in [
            json!({"seed": "42"}),
            json!({"seed": -1}),
            json!({"seed": 4.5}),
        ] {
            let map = obj(&bad, "").unwrap();
            let err = req_u64(map, "", "seed").unwrap_err();
            assert!(
                matches!(err, RadError::Spec { ref field, .. } if field == "seed"),
                "unexpected error {err}"
            );
        }
        let good = json!({"seed": 42});
        assert_eq!(req_u64(obj(&good, "").unwrap(), "", "seed").unwrap(), 42);
    }

    #[test]
    fn probabilities_are_range_checked() {
        let doc = json!({"drop": 1.5});
        let map = obj(&doc, "profile").unwrap();
        let err = opt_prob(map, "profile", "drop").unwrap_err();
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
        let missing = opt_prob(map, "profile", "corrupt").unwrap();
        assert_eq!(missing, 0.0);
    }
}
