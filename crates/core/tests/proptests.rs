//! Property tests on the core vocabulary.

use proptest::prelude::*;
use rad_core::{
    AnomalyCause, Command, CommandType, DeviceId, Label, ProcedureKind, RunId, SimDuration,
    SimInstant, TraceBatch, TraceId, TraceMode, TraceObject, Value,
};

fn arb_duration() -> impl Strategy<Value = SimDuration> {
    (0u64..1_000_000_000).prop_map(SimDuration::from_micros)
}

proptest! {
    /// Duration addition is commutative and associative.
    #[test]
    fn duration_addition_laws(a in arb_duration(), b in arb_duration(), c in arb_duration()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    /// `saturating_sub` never underflows and inverts addition.
    #[test]
    fn duration_saturating_sub(a in arb_duration(), b in arb_duration()) {
        let sum = a + b;
        prop_assert_eq!(sum.saturating_sub(b), a);
        prop_assert_eq!(SimDuration::ZERO.saturating_sub(a), SimDuration::ZERO);
    }

    /// Instant arithmetic round-trips: (t + d) - t == d.
    #[test]
    fn instant_round_trip(start in 0u64..1_000_000_000, d in arb_duration()) {
        let t0 = SimInstant::from_micros(start);
        let t1 = t0 + d;
        prop_assert_eq!(t1.duration_since(t0), d);
        prop_assert_eq!(t1.saturating_duration_since(t0), d);
        prop_assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    /// Token ids form a bijection over the 52 command types.
    #[test]
    fn token_ids_are_bijective(id in 0usize..52) {
        let ct = CommandType::from_token_id(id).unwrap();
        prop_assert_eq!(ct.token_id(), id);
        prop_assert!(CommandType::all().contains(&ct));
    }

    /// Mnemonic parsing round-trips for every command type.
    #[test]
    fn mnemonics_round_trip(id in 0usize..52) {
        let ct = CommandType::from_token_id(id).unwrap();
        let parsed: CommandType = ct.mnemonic().parse().unwrap();
        prop_assert_eq!(parsed, ct);
    }

    /// `param_token` is a pure function: equal values, equal tokens —
    /// and it never panics on any float.
    #[test]
    fn param_token_is_total_and_deterministic(f in proptest::num::f64::ANY) {
        prop_assume!(f.is_finite());
        let a = Value::Float(f).param_token();
        let b = Value::Float(f).param_token();
        prop_assert_eq!(a, b);
    }

    /// Serde round trip for values.
    #[test]
    fn value_serde_round_trip(i in any::<i64>(), s in "[a-z]{0,12}", b in any::<bool>()) {
        for v in [Value::Int(i), Value::Str(s.clone()), Value::Bool(b), Value::Unit] {
            let json = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, v);
        }
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::Str),
    ]
}

fn arb_label() -> impl Strategy<Value = Label> {
    prop_oneof![
        Just(Label::Benign),
        Just(Label::Unknown),
        Just(Label::Anomalous(AnomalyCause::QuantosDoorVsN9)),
        Just(Label::Anomalous(AnomalyCause::ArmVsTecan)),
    ]
}

/// A trace object covering every column the batch stores: sparse
/// exceptions, optional run attribution, varying arg arity, all three
/// modes.
fn arb_trace() -> impl Strategy<Value = TraceObject> {
    let head = (
        any::<u64>(),
        0u64..1_000_000_000,
        0usize..52,
        proptest::collection::vec(arb_value(), 0..4),
    );
    let tail = (
        prop_oneof![
            Just(TraceMode::Direct),
            Just(TraceMode::Remote),
            Just(TraceMode::Cloud)
        ],
        arb_value(),
        proptest::option::of("[a-z ]{1,16}"),
        arb_duration(),
        proptest::option::of((0u32..32, arb_label())),
    );
    (head, tail).prop_map(|((id, ts, token, args), (mode, ret, exception, rt, run))| {
        let ct = CommandType::from_token_id(token).unwrap();
        let mut b = TraceObject::builder(
            TraceId(id),
            SimInstant::from_micros(ts),
            DeviceId::primary(ct.device()),
            Command::new(ct, args),
        )
        .mode(mode)
        .return_value(ret)
        .response_time(rt);
        if let Some(e) = exception {
            b = b.exception(e);
        }
        if let Some((run_id, label)) = run {
            b = b.run(ProcedureKind::JoystickMovements, RunId(run_id), label);
        }
        b.build()
    })
}

proptest! {
    /// Columnar round trip: `from_traces` → `to_traces` reproduces the
    /// row-oriented log exactly, field for field.
    #[test]
    fn batch_round_trips_traces(traces in proptest::collection::vec(arb_trace(), 0..40)) {
        let batch = TraceBatch::from_traces(&traces);
        prop_assert_eq!(batch.len(), traces.len());
        prop_assert_eq!(batch.to_traces(), traces);
    }

    /// Row views agree with materialization: every accessor on
    /// `TraceRow` matches the owned `TraceObject` at that index, and
    /// `materialize` equals the original.
    #[test]
    fn batch_rows_view_the_same_data(traces in proptest::collection::vec(arb_trace(), 1..20)) {
        let batch = TraceBatch::from_traces(&traces);
        for (i, t) in traces.iter().enumerate() {
            let row = batch.get(i);
            prop_assert_eq!(row.id(), t.id());
            prop_assert_eq!(row.timestamp(), t.timestamp());
            prop_assert_eq!(row.device(), t.device());
            prop_assert_eq!(row.command_type(), t.command_type());
            prop_assert_eq!(row.command_token_id() as usize, t.command_type().token_id());
            prop_assert_eq!(row.args(), t.command().args());
            prop_assert_eq!(row.mode(), t.mode());
            prop_assert_eq!(row.return_value(), t.return_value());
            prop_assert_eq!(row.exception(), t.exception());
            prop_assert_eq!(row.response_time(), t.response_time());
            prop_assert_eq!(row.procedure(), t.procedure());
            prop_assert_eq!(row.run_id(), t.run_id());
            prop_assert_eq!(row.label(), t.label());
            prop_assert_eq!(&batch.materialize(i), t);
        }
    }

    /// Incremental pushes build the same batch as bulk conversion, and
    /// `append` concatenates: batches compose like the vectors they
    /// replace.
    #[test]
    fn batch_push_and_append_compose(
        left in proptest::collection::vec(arb_trace(), 0..20),
        right in proptest::collection::vec(arb_trace(), 0..20),
    ) {
        let mut pushed = TraceBatch::new();
        for t in &left {
            pushed.push(t);
        }
        prop_assert_eq!(pushed.to_traces(), left.clone());

        let mut appended = TraceBatch::from_traces(&left);
        appended.append(&TraceBatch::from_traces(&right));
        let mut both = left;
        both.extend(right);
        prop_assert_eq!(appended.to_traces(), both);
    }
}
