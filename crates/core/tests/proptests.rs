//! Property tests on the core vocabulary.

use proptest::prelude::*;
use rad_core::{CommandType, SimDuration, SimInstant, Value};

fn arb_duration() -> impl Strategy<Value = SimDuration> {
    (0u64..1_000_000_000).prop_map(SimDuration::from_micros)
}

proptest! {
    /// Duration addition is commutative and associative.
    #[test]
    fn duration_addition_laws(a in arb_duration(), b in arb_duration(), c in arb_duration()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    /// `saturating_sub` never underflows and inverts addition.
    #[test]
    fn duration_saturating_sub(a in arb_duration(), b in arb_duration()) {
        let sum = a + b;
        prop_assert_eq!(sum.saturating_sub(b), a);
        prop_assert_eq!(SimDuration::ZERO.saturating_sub(a), SimDuration::ZERO);
    }

    /// Instant arithmetic round-trips: (t + d) - t == d.
    #[test]
    fn instant_round_trip(start in 0u64..1_000_000_000, d in arb_duration()) {
        let t0 = SimInstant::from_micros(start);
        let t1 = t0 + d;
        prop_assert_eq!(t1.duration_since(t0), d);
        prop_assert_eq!(t1.saturating_duration_since(t0), d);
        prop_assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    /// Token ids form a bijection over the 52 command types.
    #[test]
    fn token_ids_are_bijective(id in 0usize..52) {
        let ct = CommandType::from_token_id(id).unwrap();
        prop_assert_eq!(ct.token_id(), id);
        prop_assert!(CommandType::all().contains(&ct));
    }

    /// Mnemonic parsing round-trips for every command type.
    #[test]
    fn mnemonics_round_trip(id in 0usize..52) {
        let ct = CommandType::from_token_id(id).unwrap();
        let parsed: CommandType = ct.mnemonic().parse().unwrap();
        prop_assert_eq!(parsed, ct);
    }

    /// `param_token` is a pure function: equal values, equal tokens —
    /// and it never panics on any float.
    #[test]
    fn param_token_is_total_and_deterministic(f in proptest::num::f64::ANY) {
        prop_assume!(f.is_finite());
        let a = Value::Float(f).param_token();
        let b = Value::Float(f).param_token();
        prop_assert_eq!(a, b);
    }

    /// Serde round trip for values.
    #[test]
    fn value_serde_round_trip(i in any::<i64>(), s in "[a-z]{0,12}", b in any::<bool>()) {
        for v in [Value::Int(i), Value::Str(s.clone()), Value::Bool(b), Value::Unit] {
            let json = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, v);
        }
    }
}
