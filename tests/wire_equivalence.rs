//! The golden suite for the binary pipelined wire (ISSUE PR 10): the
//! fast path must be *invisible* in the data. Two proofs:
//!
//! 1. **Campaign-export equivalence** — the same seeded campaign
//!    driven lock-step over JSON (the PR 8 wire, the reference) and
//!    pipelined over the binary codec at depths 1, 8, and 32 leaves a
//!    byte-identical export in the tenant's sink: `PartialEq` on whole
//!    [`TraceObject`]s and [`TraceGap`]s, timestamps included.
//!
//! 2. **Fault matrix over the binary wire** — the PR 2 five-profile
//!    conformance matrix (`tests/fault_matrix_tcp.rs`) rerun with the
//!    client speaking pipelined binary frames: every profile's traces
//!    and gaps still match the in-process [`Middlebox`] reference.
//!
//! Both hold because the server's clock is command-count driven and
//! the fault plan interposes inside the tenant's middlebox — pacing
//! and encoding cannot perturb what lands in the sink, and this suite
//! pins that.

use std::sync::Arc;

use rad::prelude::*;
use rad_middlebox::TenantSinkStack;

const SEED: u64 = 42;
const TENANT: &str = "conformance";

/// A fresh single-tenant lab service whose sink is a shared
/// [`CollectingSink`]; returns the handle and the sink to read back.
fn collecting_service(fault_plan: Option<FaultPlan>) -> (ServerHandle, CollectingSink) {
    let config = ServerConfig {
        seed: SEED,
        fault_plan,
        ..ServerConfig::default()
    };
    let sink = CollectingSink::new();
    let collected = sink.clone();
    let service = LabService::new(config).with_sink_factory(Arc::new(move |_tenant: &str| {
        Ok(TenantSinkStack {
            sink: Box::new(collected.clone()),
            durable: None,
        })
    }));
    let handle = service.serve_tcp("127.0.0.1:0").expect("serve tcp");
    (handle, sink)
}

fn tcp_transport(handle: &ServerHandle) -> SocketTransport {
    let addr = handle.local_addr().expect("tcp addr").to_string();
    SocketTransport::connect_tcp(&addr).expect("connect tcp")
}

/// Drives the seeded supervised campaign against a fresh service with
/// the given codec and pipeline depth, and returns the sink's export.
fn campaign_export(codec: WireCodecKind, depth: usize) -> (Vec<TraceObject>, Vec<TraceGap>) {
    let script = CampaignScript::supervised(SEED).truncated(150);
    let expected = script.command_count();
    let (handle, sink) = collecting_service(None);
    let report = RemoteCampaign::new(script, TENANT)
        .with_codec(codec)
        .with_pipeline_depth(depth)
        .drive(tcp_transport(&handle))
        .expect("drive campaign");
    assert!(report.completed, "campaign must run to completion");
    assert!(report.error.is_none(), "clean wire: {:?}", report.error);
    assert_eq!(report.executed as usize, expected);
    handle.drain().expect("drain");
    (sink.traces(), sink.gaps())
}

#[test]
fn pipelined_binary_exports_are_byte_identical_to_lock_step_json() {
    let (want_traces, want_gaps) = campaign_export(WireCodecKind::Json, 1);
    assert!(!want_traces.is_empty(), "the reference export is non-empty");
    for depth in [1usize, 8, 32] {
        let (got_traces, got_gaps) = campaign_export(WireCodecKind::Binary, depth);
        assert_eq!(
            got_traces, want_traces,
            "depth {depth}: binary pipelined traces diverge from lock-step JSON"
        );
        assert_eq!(
            got_gaps, want_gaps,
            "depth {depth}: binary pipelined gaps diverge from lock-step JSON"
        );
    }
}

// ---------------------------------------------------------------------
// The PR 2 fault matrix, rerun over the binary pipelined wire.
// ---------------------------------------------------------------------

const COMMANDS: u64 = 100;

/// The run closes at command 80 — past the disconnect row's chunk-60
/// link death, so that profile's gaps straddle the run boundary.
const RUN_SPLIT: usize = 80;

/// The five-row profile matrix from `tests/fault_matrix.rs`.
fn matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::new(SEED, FaultProfile::none())),
        ("drop5", FaultPlan::new(SEED, FaultProfile::drop(0.05))),
        ("corrupt", FaultPlan::new(SEED, FaultProfile::corrupt(0.05))),
        ("reorder", FaultPlan::new(SEED, FaultProfile::reorder(0.05))),
        (
            "disconnect",
            FaultPlan::new(SEED, FaultProfile::disconnect_after(60)),
        ),
    ]
}

/// One `InitC9` then `Mvng`s — the schedule every endpoint replays.
fn schedule() -> Vec<Command> {
    (0..COMMANDS)
        .map(|i| {
            if i == 0 {
                Command::nullary(CommandType::InitC9)
            } else {
                Command::nullary(CommandType::Mvng)
            }
        })
        .collect()
}

/// The in-process reference: same derived seed, plan, and schedule.
fn in_process(config: &ServerConfig, plan: FaultPlan) -> (Vec<TraceObject>, Vec<TraceGap>) {
    let mut mb = Middlebox::new(config.tenant_seed(TENANT)).with_fault_plan(plan);
    mb.begin_run(
        RunId(1),
        ProcedureKind::AutomatedSolubilityN9,
        Label::Benign,
    );
    for (i, command) in schedule().iter().enumerate() {
        if i == RUN_SPLIT {
            mb.end_run();
        }
        mb.issue(command)
            .unwrap_or_else(|e| panic!("reference command {i} failed: {e}"));
    }
    (mb.traces(), mb.gaps().to_vec())
}

/// Drives the schedule over live TCP in pipelined binary batches,
/// split at the run boundary so the cursor semantics line up with the
/// lock-step harness.
fn over_pipelined_wire(plan: FaultPlan, depth: usize) -> (Vec<TraceObject>, Vec<TraceGap>) {
    let (handle, sink) = collecting_service(Some(plan));
    let mut session = RemoteSession::connect_with(
        tcp_transport(&handle),
        TENANT,
        RetryPolicy::default(),
        WireCodecKind::Binary,
    )
    .expect("hello");
    session
        .begin_run(1, ProcedureKind::AutomatedSolubilityN9, Label::Benign)
        .expect("begin run");
    let commands = schedule();
    let refs: Vec<&Command> = commands.iter().collect();
    for (leg, batch) in [&refs[..RUN_SPLIT], &refs[RUN_SPLIT..]].iter().enumerate() {
        if leg == 1 {
            session.end_run().expect("end run");
        }
        let results = session
            .issue_pipelined(batch, depth)
            .unwrap_or_else(|e| panic!("pipelined leg {leg} failed: {}", e.error));
        assert_eq!(results.len(), batch.len());
        for (i, result) in results.iter().enumerate() {
            result
                .as_ref()
                .unwrap_or_else(|f| panic!("pipelined command {i} of leg {leg} faulted: {f}"));
        }
    }
    session.bye().expect("bye");
    handle.drain().expect("drain");
    (sink.traces(), sink.gaps())
}

#[test]
fn fault_matrix_over_binary_pipelined_wire_matches_in_process() {
    for (name, plan) in matrix() {
        let config = ServerConfig {
            seed: SEED,
            ..ServerConfig::default()
        };
        let (want_traces, want_gaps) = in_process(&config, plan.clone());
        for depth in [8usize, 32] {
            let (got_traces, got_gaps) = over_pipelined_wire(plan.clone(), depth);
            assert_eq!(
                got_traces, want_traces,
                "{name}: depth {depth} traces diverge"
            );
            assert_eq!(got_gaps, want_gaps, "{name}: depth {depth} gaps diverge");
        }
    }
}

#[test]
fn disconnect_gaps_keep_run_attribution_over_the_pipelined_wire() {
    let plan = FaultPlan::new(SEED, FaultProfile::disconnect_after(60));
    let (traces, gaps) = over_pipelined_wire(plan, 16);
    assert!(!gaps.is_empty(), "the chunk-60 disconnect must bite");
    assert_eq!(
        traces.len() + gaps.len(),
        COMMANDS as usize,
        "accounting holds over the pipelined wire"
    );
    assert!(gaps.iter().all(|g| !g.reason.is_empty()));
    assert!(
        gaps.iter().any(|g| g.run_id == Some(RunId(1))),
        "in-run gaps must keep their run attribution"
    );
    assert!(
        gaps.iter().any(|g| g.run_id.is_none()),
        "post-run gaps must stay unattributed"
    );
}
