//! Integration: the middlebox guard against the attack generator — the
//! prevention story (§I's "last level of defense") closed end to end.

use rad::prelude::*;
use rad_middlebox::{GuardPolicy, GuardedMiddlebox};

fn guarded() -> GuardedMiddlebox {
    GuardedMiddlebox::new(Middlebox::new(7), GuardPolicy::recommended())
}

#[test]
fn speed_attack_is_stopped_at_the_middlebox() {
    // The Wu et al. speed attack: inflate SPED before each move. With
    // the guard, every inflated SPED is rejected; the device keeps its
    // configured speed and the moves run at safe velocity.
    let mut mb = guarded();
    mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
    mb.issue(&Command::nullary(CommandType::Home)).unwrap();
    let mut rejected = 0;
    for i in 0..4 {
        if mb
            .issue(&Command::new(CommandType::Sped, vec![Value::Float(460.0)]))
            .is_err()
        {
            rejected += 1;
        }
        mb.issue(&Command::new(
            CommandType::Arm,
            vec![Value::Location {
                x: 50.0 + 40.0 * f64::from(i),
                y: 100.0,
                z: 200.0,
            }],
        ))
        .unwrap();
    }
    assert_eq!(rejected, 4, "every inflated SPED is rejected");
    assert!(
        mb.middlebox().rig().c9().speed() <= 250.0,
        "device speed never exceeded policy"
    );
    assert_eq!(mb.alerts().len(), 4);
}

#[test]
fn sabotage_lunge_is_stopped_by_the_envelope() {
    // The arm-vs-Tecan sabotage needs to reach into the Tecan corridor
    // (y > 400); a workspace envelope stops the lunge before the
    // geometry ever gets a chance to collide.
    let policy = GuardPolicy::recommended().with_motion_envelope(800.0, 380.0);
    let mut mb = GuardedMiddlebox::new(Middlebox::new(9), policy);
    mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
    mb.issue(&Command::nullary(CommandType::Home)).unwrap();
    // The creep stays inside the envelope...
    mb.issue(&Command::new(
        CommandType::Arm,
        vec![Value::Location {
            x: 300.0,
            y: 300.0,
            z: 120.0,
        }],
    ))
    .unwrap();
    // ...the lunge does not.
    let err = mb
        .issue(&Command::new(
            CommandType::Arm,
            vec![Value::Location {
                x: 120.0,
                y: 500.0,
                z: 120.0,
            }],
        ))
        .unwrap_err();
    assert!(err.to_string().contains("envelope"), "{err}");
    // No collision ever reached the trace; the rejection did.
    let ds = mb.into_dataset();
    assert!(!ds
        .traces()
        .iter()
        .any(|t| t.exception().is_some_and(|e| e.contains("collision"))));
    assert!(ds
        .traces()
        .iter()
        .any(|t| t.exception().is_some_and(|e| e.contains("guard rejected"))));
}

#[test]
fn rate_limit_breaks_the_replay_flood() {
    // A replayed joystick capture streams ARM commands far faster than
    // a human holds a button; a rate budget throttles it.
    let policy =
        GuardPolicy::recommended().rate_limit(DeviceKind::C9, 30, SimDuration::from_secs(10));
    let mut mb = GuardedMiddlebox::new(Middlebox::new(11), policy);
    mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
    mb.issue(&Command::nullary(CommandType::Home)).unwrap();
    let mut throttled = 0;
    for i in 0..200 {
        let x = f64::from(i % 40) * 5.0;
        if mb
            .issue(&Command::new(
                CommandType::Arm,
                vec![Value::Location {
                    x,
                    y: 100.0,
                    z: 200.0,
                }],
            ))
            .is_err()
        {
            throttled += 1;
        }
    }
    assert!(
        throttled > 100,
        "the flood is mostly throttled: {throttled}"
    );
}

#[test]
fn guarded_traces_feed_the_ids_like_any_others() {
    // Rejections become part of the command dataset, so an IDS trained
    // later sees the attack attempt even though it never reached a
    // device.
    let mut mb = guarded();
    mb.middlebox_mut()
        .begin_run(RunId(500), ProcedureKind::Unknown, Label::Unknown);
    mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
    for _ in 0..3 {
        let _ = mb.issue(&Command::new(CommandType::Sped, vec![Value::Float(480.0)]));
    }
    mb.middlebox_mut().end_run();
    let ds = mb.into_dataset();
    assert_eq!(ds.len(), 4);
    let traces = ds.traces();
    let rejected: Vec<_> = traces
        .iter()
        .filter(|t| t.exception().is_some_and(|e| e.contains("guard rejected")))
        .collect();
    assert_eq!(rejected.len(), 3);
    // The rejected accesses keep their command identity for n-gram
    // analysis.
    assert!(rejected
        .iter()
        .all(|t| t.command_type() == CommandType::Sped));
}

#[test]
fn benign_procedures_pass_the_recommended_policy_unmodified() {
    // Deploying the guard must not break normal science: a full P3 run
    // executes cleanly through the guarded middlebox.
    let policy = GuardPolicy::recommended();
    let mb = GuardedMiddlebox::new(Middlebox::new(21), policy);
    // Drive the same script the campaign uses, but through the guard.
    // (Session requires a bare middlebox, so issue the equivalent
    // commands directly.)
    let mut mb = mb;
    for (ct, args) in [
        (CommandType::InitC9, vec![]),
        (CommandType::Home, vec![]),
        (CommandType::Sped, vec![Value::Float(150.0)]),
        (CommandType::Bias, vec![Value::Int(0)]),
        (CommandType::InitIka, vec![]),
        (CommandType::IkaReadDeviceName, vec![]),
        (CommandType::IkaSetSpeed, vec![Value::Float(400.0)]),
        (CommandType::IkaStartMotor, vec![]),
        (CommandType::IkaReadStirringSpeed, vec![]),
        (CommandType::IkaStopMotor, vec![]),
        (CommandType::InitTecan, vec![]),
        (CommandType::TecanSetHomePosition, vec![]),
        (CommandType::TecanGetStatus, vec![]),
    ] {
        mb.issue(&Command::new(ct, args))
            .unwrap_or_else(|e| panic!("{ct} rejected: {e}"));
    }
    assert!(mb.alerts().is_empty(), "no false alarms on benign traffic");
}
