//! The crash-injection conformance matrix (ISSUE tentpole): one seeded
//! supervised campaign killed at every [`CrashSite`], then resumed.
//!
//! Three invariants hold for every row:
//!
//! 1. **The crash bites** — the injected kill surfaces as an error and
//!    poisons the durable sink; nothing pretends the build finished.
//! 2. **Zero invented records** — whatever the crashed store recovers
//!    is an exact prefix of the uninterrupted baseline, record for
//!    record. Durability may lose a synced-but-uncheckpointed tail,
//!    never fabricate or corrupt data.
//! 3. **Byte-identical resume** — [`CampaignBuilder::resume_from`]
//!    completes the campaign into a dataset whose exported bundle is
//!    byte-for-byte the baseline's, for every crash site and also with
//!    wire faults ([`FaultPlan`]) active at the same time.

use rad::prelude::*;
use rad::store::export_rad;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

const SEED: u64 = 42;

/// Every crash site with an occurrence at which it provably fires
/// during the seeded supervised campaign (append-heavy sites get a
/// mid-campaign index; checkpoint sites fire on the second compaction).
/// The counts assume batch-wise persistence — one WAL frame per stream
/// delta per flush, not one per record — so the campaign sees ~125
/// appends and ~130 fsync batches total.
fn matrix() -> Vec<(CrashSite, u64)> {
    vec![
        (CrashSite::MidRecord, 80),
        (CrashSite::PreFsync, 80),
        (CrashSite::MidRotation, 2),
        (CrashSite::MidCompaction, 1),
        (CrashSite::MidRename, 1),
    ]
}

/// Small segments and frequent syncs so rotation and fsync batching
/// both exercise during a 25-run campaign.
fn durable_options() -> DurableOptions {
    DurableOptions {
        wal: WalOptions {
            segment_bytes: 8 * 1024,
            sync_every: 4,
        },
        ..DurableOptions::default()
    }
}

fn builder() -> CampaignBuilder {
    CampaignBuilder::new(SEED)
        .supervised_only()
        .with_durable_options(durable_options())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rad-crash-matrix-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every file of an exported bundle (including the `power/` subtree),
/// relative path → bytes.
fn bundle_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, at: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(at).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let name = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(name, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

fn assert_identical_bundles(
    a: &rad_workloads::CampaignDataset,
    b: &rad_workloads::CampaignDataset,
    tag: &str,
) {
    let dir_a = tmpdir(&format!("{tag}-bundle-a"));
    let dir_b = tmpdir(&format!("{tag}-bundle-b"));
    export_rad(a.command(), a.power(), &dir_a).unwrap();
    export_rad(b.command(), b.power(), &dir_b).unwrap();
    let files_a = bundle_bytes(&dir_a);
    let files_b = bundle_bytes(&dir_b);
    assert_eq!(
        files_a.keys().collect::<Vec<_>>(),
        files_b.keys().collect::<Vec<_>>(),
        "{tag}: the two bundles export different file sets"
    );
    for (name, bytes) in &files_a {
        assert_eq!(
            bytes, &files_b[name],
            "{tag}: {name} differs between baseline and resumed export"
        );
    }
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// Crash-recovered stores hold an exact prefix of the baseline trace
/// stream: positions `0..n` each present exactly once, every payload
/// byte-identical to the baseline trace at that position.
fn assert_recovered_prefix(dir: &Path, baseline: &rad_workloads::CampaignDataset, tag: &str) {
    let (store, _report) = DurableStore::open(dir, durable_options()).unwrap();
    let mut docs = store.find("traces", &Filter::all());
    docs.sort_by_key(|d| d.get("i").and_then(serde_json::Value::as_u64).unwrap());
    let traces = baseline.command().traces();
    for (pos, doc) in docs.iter().enumerate() {
        let idx = doc.get("i").and_then(serde_json::Value::as_u64).unwrap() as usize;
        assert_eq!(idx, pos, "{tag}: persisted trace positions must be gapless");
        assert!(
            idx < traces.len(),
            "{tag}: recovered trace {idx} was never generated"
        );
        let expected = serde_json::to_value(&traces[idx]).unwrap();
        assert_eq!(
            doc.get("v"),
            Some(&expected),
            "{tag}: recovered trace {idx} differs from the baseline"
        );
    }
}

#[test]
fn matrix_covers_every_crash_site() {
    let sites: Vec<CrashSite> = matrix().into_iter().map(|(site, _)| site).collect();
    assert_eq!(
        sites,
        CrashSite::ALL,
        "the matrix must cover CrashSite::ALL"
    );
}

#[test]
fn every_crash_site_resumes_to_a_byte_identical_dataset() {
    let baseline = builder().build();
    for (site, occurrence) in matrix() {
        let tag = format!("{site}");
        let dir = tmpdir(&tag);

        let err = builder()
            .with_crash_plan(CrashPlan::at(site, occurrence))
            .build_resumable(&dir)
            .unwrap_err();
        assert!(
            err.to_string().contains("injected crash"),
            "{tag}: crash at occurrence {occurrence} never fired: {err}"
        );

        assert_recovered_prefix(&dir, &baseline, &tag);

        let resumed = builder().resume_from(&dir).unwrap();
        assert_eq!(
            resumed.command().corpus(),
            baseline.command().corpus(),
            "{tag}: corpus"
        );
        assert_eq!(
            resumed.command().gaps(),
            baseline.command().gaps(),
            "{tag}: gaps"
        );
        assert_eq!(
            resumed.command().runs(),
            baseline.command().runs(),
            "{tag}: runs"
        );
        assert_eq!(resumed.journal(), baseline.journal(), "{tag}: journal");
        assert_identical_bundles(&baseline, &resumed, &tag);

        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn wire_faults_and_process_crashes_compose() {
    // The disconnect profile produces gaps, so resume must reproduce
    // the gap stream as faithfully as the trace stream.
    let faulted =
        || builder().with_fault_plan(FaultPlan::new(SEED, FaultProfile::disconnect_after(60)));
    let baseline = faulted().build();
    assert!(
        !baseline.command().gaps().is_empty(),
        "the disconnect must bite for this test to mean anything"
    );

    let dir = tmpdir("fault-plus-crash");
    let err = faulted()
        .with_crash_plan(CrashPlan::at(CrashSite::MidRecord, 100))
        .build_resumable(&dir)
        .unwrap_err();
    assert!(err.to_string().contains("injected crash"), "got: {err}");

    let resumed = faulted().resume_from(&dir).unwrap();
    assert_eq!(resumed.command().corpus(), baseline.command().corpus());
    assert_eq!(resumed.command().gaps(), baseline.command().gaps());
    assert_eq!(resumed.journal(), baseline.journal());
    assert_identical_bundles(&baseline, &resumed, "fault-plus-crash");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_on_a_clean_store_is_idempotent() {
    let dir = tmpdir("idempotent");
    let built = builder().build_resumable(&dir).unwrap();
    let once = builder().resume_from(&dir).unwrap();
    let twice = builder().resume_from(&dir).unwrap();
    assert_eq!(built.command().corpus(), once.command().corpus());
    assert_eq!(once.command().corpus(), twice.command().corpus());
    assert_eq!(once.journal(), twice.journal());
    let _ = fs::remove_dir_all(&dir);
}
