//! Cross-crate property-based tests (proptest) on the invariants the
//! analyses and the storage layer rely on.

#![allow(clippy::needless_range_loop)] // matrix checks read best indexed

use proptest::prelude::*;
use rad::prelude::*;
use rad_analysis::{jenks_two_class, CommandLm, Smoothing, TfIdf};

fn arb_command_type() -> impl Strategy<Value = CommandType> {
    (0..CommandType::all().len())
        .prop_map(|i| CommandType::from_token_id(i).expect("index in range"))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-zA-Z0-9 ,\"']{0,20}".prop_map(Value::Str),
        ((-1e3f64..1e3), (-1e3f64..1e3), (-1e3f64..1e3)).prop_map(|(x, y, z)| Value::Location {
            x,
            y,
            z
        }),
    ]
}

fn arb_trace(id: u64) -> impl Strategy<Value = TraceObject> {
    (
        arb_command_type(),
        proptest::collection::vec(arb_value(), 0..4),
        0u64..1_000_000_000,
        0u64..100_000,
        proptest::option::of("[a-z ]{1,30}"),
    )
        .prop_map(move |(ct, args, ts, rt, exc)| {
            let mut b = TraceObject::builder(
                TraceId(id),
                SimInstant::from_micros(ts),
                DeviceId::primary(ct.device()),
                Command::new(ct, args),
            )
            .mode(TraceMode::Remote)
            .response_time(SimDuration::from_micros(rt));
            if let Some(e) = exc {
                b = b.exception(e);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any batch of trace objects survives the CSV round trip.
    #[test]
    fn csv_round_trip_is_lossless(traces in proptest::collection::vec(arb_trace(0), 1..20)) {
        let traces: Vec<TraceObject> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                // Re-id so ids are unique (builder strategy reuses 0).
                TraceObject::builder(
                    TraceId(i as u64),
                    t.timestamp(),
                    t.device(),
                    t.command().clone(),
                )
                .mode(t.mode())
                .response_time(t.response_time())
                .build()
            })
            .collect();
        let csv = rad_store::csv::traces_to_csv(&traces);
        let parsed = rad_store::csv::traces_from_csv(&csv).unwrap();
        prop_assert_eq!(parsed.len(), traces.len());
        for (a, b) in traces.iter().zip(&parsed) {
            prop_assert_eq!(a.command(), b.command());
            prop_assert_eq!(a.timestamp(), b.timestamp());
            prop_assert_eq!(a.response_time(), b.response_time());
        }
    }

    /// Add-k smoothed conditional distributions sum to one over the
    /// training vocabulary, for any training corpus.
    #[test]
    fn lm_distributions_normalize(
        corpus in proptest::collection::vec(
            proptest::collection::vec(0u8..6, 2..30),
            1..8,
        ),
        context in 0u8..6,
    ) {
        let corpus: Vec<Vec<u8>> = corpus;
        prop_assume!(corpus.iter().any(|s| s.len() >= 2));
        let lm = CommandLm::fit(2, &corpus, Smoothing::AddK(0.5)).unwrap();
        let vocab: std::collections::BTreeSet<u8> =
            corpus.iter().flatten().copied().collect();
        prop_assume!(vocab.contains(&context));
        let total: f64 = vocab.iter().map(|t| lm.probability(&[context], t)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
    }

    /// Perplexity is always >= 1 for epsilon-floor models scoring
    /// training-covered sequences, and always positive in general.
    #[test]
    fn perplexity_is_positive(
        seq in proptest::collection::vec(0u8..5, 3..40),
    ) {
        let lm = CommandLm::fit(2, std::slice::from_ref(&seq), Smoothing::default()).unwrap();
        let p = lm.perplexity(&seq).unwrap();
        prop_assert!(p >= 1.0 - 1e-12, "self-perplexity {p} < 1");
    }

    /// The Jenks two-class threshold always separates the input into
    /// two non-degenerate sides when the input has spread.
    #[test]
    fn jenks_threshold_lies_within_range(values in proptest::collection::vec(-1e4f64..1e4, 2..60)) {
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let t = jenks_two_class(&values).unwrap();
        prop_assert!(t >= lo - 1e-9 && t <= hi + 1e-9, "threshold {t} outside [{lo}, {hi}]");
        if hi > lo {
            // At least one value sits at or below the threshold; the
            // high class may be empty only in the degenerate case.
            prop_assert!(values.iter().any(|v| *v <= t));
        }
    }

    /// TF-IDF cosine similarities stay in [0, 1] with unit diagonal for
    /// any corpus of non-empty documents.
    #[test]
    fn tfidf_matrix_is_well_formed(
        docs in proptest::collection::vec(
            proptest::collection::vec("[a-d]", 1..15),
            1..8,
        ),
    ) {
        let model = TfIdf::fit(&docs).unwrap();
        let m = model.similarity_matrix();
        for i in 0..m.len() {
            prop_assert!((m[i][i] - 1.0).abs() < 1e-9);
            for j in 0..m.len() {
                prop_assert!(m[i][j] > -1e-9 && m[i][j] < 1.0 + 1e-9);
                prop_assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
    }

    /// The device rig never panics, whatever command and arguments are
    /// thrown at it — faults must come back as typed errors.
    #[test]
    fn rig_is_panic_free_under_fuzzing(
        commands in proptest::collection::vec(
            (arb_command_type(), proptest::collection::vec(arb_value(), 0..3)),
            1..60,
        ),
        seed in 0u64..1000,
    ) {
        let mut rig = rad_devices::LabRig::new(seed);
        for (ct, args) in commands {
            let _ = rig.execute(&Command::new(ct, args));
        }
    }

    /// The middlebox traces every issued command exactly once,
    /// including faulting ones.
    #[test]
    fn middlebox_traces_every_access(
        commands in proptest::collection::vec(arb_command_type(), 1..40),
        seed in 0u64..100,
    ) {
        let mut mb = Middlebox::new(seed);
        for ct in &commands {
            let _ = mb.issue(&Command::nullary(*ct));
        }
        let dataset = mb.into_dataset();
        prop_assert_eq!(dataset.len(), commands.len());
        for (trace, ct) in dataset.traces().iter().zip(&commands) {
            prop_assert_eq!(trace.command_type(), *ct);
        }
    }
}
