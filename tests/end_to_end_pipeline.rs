//! End-to-end integration: campaign synthesis → middlebox tracing →
//! storage → the paper's analyses, asserting the headline properties
//! of every experiment in one pipeline.

#![allow(clippy::needless_range_loop)] // matrix checks read best indexed

use rad::prelude::*;

fn supervised_campaign() -> rad_workloads::CampaignDataset {
    CampaignBuilder::new(42).supervised_only().build()
}

#[test]
fn the_25_run_structure_matches_section_4() {
    let campaign = supervised_campaign();
    let runs = campaign.supervised_runs();
    assert_eq!(runs.len(), 25);
    let per_kind = |k: ProcedureKind| runs.iter().filter(|r| r.kind() == k).count();
    assert_eq!(per_kind(ProcedureKind::JoystickMovements), 12);
    assert_eq!(per_kind(ProcedureKind::AutomatedSolubilityN9), 5);
    assert_eq!(per_kind(ProcedureKind::AutomatedSolubilityN9Ur3e), 4);
    assert_eq!(per_kind(ProcedureKind::CrystalSolubility), 4);
    assert_eq!(runs.iter().filter(|r| r.label().is_anomalous()).count(), 3);
}

#[test]
fn fig5a_device_mix_reproduces_at_scale() {
    let campaign = CampaignBuilder::new(3)
        .scale(0.04)
        .power_experiments(false)
        .build();
    let hist = campaign.command().device_histogram();
    for device in DeviceKind::all() {
        let expected = (device.paper_trace_count() as f64 * 0.04).round() as u64;
        assert_eq!(hist[&device], expected, "{device}");
    }
    // Every one of the 52 command types should appear in a full-mix
    // campaign... except deep-workflow commands that only supervised
    // runs produce; assert broad coverage instead.
    let commands = campaign.command().command_histogram();
    assert!(
        commands.len() >= 45,
        "saw only {} command types",
        commands.len()
    );
}

#[test]
fn fig6_block_structure_reproduces() {
    let campaign = supervised_campaign();
    let sequences = campaign.command().supervised_sequences();
    let docs: Vec<Vec<CommandType>> = sequences.iter().map(|(_, s)| s.clone()).collect();
    let tfidf = rad_analysis::TfIdf::fit(&docs).unwrap();
    let m = tfidf.similarity_matrix();

    // Joystick block is tight.
    for i in 0..12 {
        for j in 0..12 {
            assert!(m[i][j] > 0.9, "P4 runs {i},{j}: {}", m[i][j]);
        }
    }
    // Run 12 is joystick-flavoured, not P1-flavoured.
    let avg = |iter: &mut dyn Iterator<Item = usize>| -> f64 {
        let v: Vec<f64> = iter.map(|j| m[12][j]).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(avg(&mut (0..12)) > avg(&mut (13..17)) + 0.3);
    // P1 block (including the anomalous run 16) stays high.
    for i in 13..17 {
        for j in 13..17 {
            assert!(m[i][j] > 0.8, "P1 runs {i},{j}: {}", m[i][j]);
        }
    }
    // The truncated P2 pair splits from the complete pair.
    assert!(m[17][18] > 0.7);
    assert!(m[19][20] > 0.9);
    assert!(m[17][19] < 0.6 && m[18][20] < 0.7);
    // P3 block is the tightest, run 22 included.
    for i in 21..25 {
        for j in 21..25 {
            assert!(m[i][j] > 0.85, "P3 runs {i},{j}: {}", m[i][j]);
        }
    }
}

#[test]
fn table1_recall_is_one_for_all_three_orders() {
    let campaign = supervised_campaign();
    let labelled: Vec<(Vec<CommandType>, bool)> = campaign
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| (seq, meta.label().is_anomalous()))
        .collect();
    for n in [2, 3, 4] {
        let report = PerplexityDetector::new(n)
            .evaluate(&labelled, 5, 0)
            .unwrap();
        let cm = report.confusion;
        assert_eq!(
            cm.recall(),
            1.0,
            "order {n}: all three anomalies must be caught"
        );
        assert_eq!(cm.true_positives(), 3);
        assert!(cm.accuracy() > 0.5, "order {n}: accuracy {}", cm.accuracy());
        assert!(
            cm.false_positives() > 0,
            "order {n}: the paper's models over-alarm; ours should too"
        );
    }
}

#[test]
fn crashed_runs_log_collision_exceptions() {
    let campaign = supervised_campaign();
    let dataset = campaign.command();
    for run in dataset.supervised_runs() {
        let crashes = dataset
            .traces()
            .iter()
            .filter(|t| t.run_id() == Some(run.run_id()))
            .filter(|t| t.exception().is_some_and(|e| e.contains("collision")))
            .count();
        if run.label().is_anomalous() {
            assert!(
                crashes > 0,
                "{} is anomalous but logged no collision",
                run.run_id()
            );
        } else {
            assert_eq!(
                crashes,
                0,
                "{} is benign but logged a collision",
                run.run_id()
            );
        }
    }
}

#[test]
fn csv_export_round_trips_the_whole_campaign() {
    let campaign = supervised_campaign();
    let dataset = campaign.command();
    let csv = dataset.to_csv();
    let parsed = rad_store::csv::traces_from_csv(&csv).unwrap();
    assert_eq!(parsed.len(), dataset.len());
    for (a, b) in dataset.traces().iter().zip(&parsed) {
        assert_eq!(a.id(), b.id());
        assert_eq!(a.command(), b.command());
        assert_eq!(a.timestamp(), b.timestamp());
        assert_eq!(a.exception(), b.exception());
    }
}

#[test]
fn document_store_mirror_supports_the_paper_queries() {
    let campaign = supervised_campaign();
    let store = DocumentStore::new();
    campaign.command().store_into(&store).unwrap();
    // Count per device matches the in-memory histogram.
    for (device, count) in campaign.command().device_histogram() {
        let stored = store.count(
            "traces",
            &Filter::eq("device", serde_json::json!(device.to_string())),
        );
        assert_eq!(stored as u64, count, "{device}");
    }
    // All commands of one supervised run can be pulled back out.
    let run0 = store.count("traces", &Filter::eq("run_id", serde_json::json!(0)));
    assert_eq!(
        run0 as usize,
        campaign.command().run_sequence(RunId(0)).len()
    );
}

#[test]
fn power_dataset_covers_p2_p5_p6() {
    let campaign = CampaignBuilder::new(8)
        .supervised_only()
        .power_experiments(true)
        .build();
    let power = campaign.power();
    assert!(!power
        .for_procedure(ProcedureKind::AutomatedSolubilityN9Ur3e)
        .is_empty());
    assert_eq!(
        power.for_procedure(ProcedureKind::VelocitySweep).len(),
        6,
        "3 velocities x 2 legs"
    );
    assert!(power.for_procedure(ProcedureKind::PayloadSweep).len() >= 6);
    // Compaction drops quiescent ticks but keeps every active one.
    let compact = power.compacted(false);
    assert!(compact.total_entries() <= power.total_entries());
    assert!(compact.total_entries() > 0);
}

#[test]
fn campaign_timeline_is_monotone_and_spans_sessions() {
    let campaign = supervised_campaign();
    let traces = campaign.command().traces();
    for pair in traces.windows(2) {
        assert!(pair[1].timestamp() >= pair[0].timestamp());
        assert!(pair[1].id() > pair[0].id());
    }
    let span = traces.last().unwrap().timestamp() - traces[0].timestamp();
    assert!(
        span.as_secs_f64() > 24.0 * 3600.0,
        "25 runs with inter-run gaps span days"
    );
}
