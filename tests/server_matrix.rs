//! Acceptance tests for the lab service (ISSUE PR 8): the three
//! robustness scenarios the tentpole promises, exercised end-to-end
//! over real sockets with durable storage underneath.
//!
//! 1. **Kill + resume** — a campaign killed mid-flight and re-run with
//!    `resume_from` leaves the durable store with exactly the records
//!    of an uninterrupted run: zero lost, zero invented.
//! 2. **Backpressure isolation** — a tenant with a pathologically slow
//!    sink is bounded at `queue_bound_rows` and does not starve a fast
//!    tenant on another worker.
//! 3. **Graceful drain** — stopping the server flushes every tenant's
//!    durable sink; reopening the stores finds every trace.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rad::prelude::*;
use rad_middlebox::{Lane, SinkFactory, TenantSinkStack};
use rad_workloads::DriveReport;

/// A throwaway directory under the system temp dir, cleaned on entry.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rad-server-matrix-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Long per-attempt budget: these tests deliberately block sessions on
/// slow sinks, and a 250 ms default would turn that into retries.
fn patient_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        initial_backoff: Duration::from_millis(2),
        backoff_factor: 2,
        attempt_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(30),
        ..RetryPolicy::default()
    }
    .with_jitter(7, 500)
}

fn tcp_transport(handle: &ServerHandle) -> SocketTransport {
    let addr = handle.local_addr().expect("tcp addr").to_string();
    SocketTransport::connect_tcp(&addr).expect("connect")
}

/// Durable trace/gap counts for one tenant, read back cold.
fn durable_counts(data_dir: &Path, tenant: &str) -> (usize, usize) {
    let (store, _) = DurableStore::open(&data_dir.join(tenant), DurableOptions::default())
        .expect("reopen tenant store");
    (
        store.count("traces", &Filter::all()),
        store.count("gaps", &Filter::all()),
    )
}

#[test]
fn kill_mid_campaign_and_resume_loses_and_invents_nothing() {
    let script = CampaignScript::supervised(7).truncated(40);
    let policy = patient_policy();

    // Reference: the same campaign, never interrupted.
    let ref_dir = scratch_dir("ref");
    let handle = LabService::new(ServerConfig {
        seed: 7,
        data_dir: Some(ref_dir.clone()),
        ..ServerConfig::default()
    })
    .serve_tcp("127.0.0.1:0")
    .expect("serve reference");
    let report = RemoteCampaign::new(script.clone(), "alice")
        .with_policy(policy.clone())
        .drive(tcp_transport(&handle))
        .expect("uninterrupted drive");
    assert!(report.error.is_none() && report.completed);
    assert_eq!(report.executed as usize, script.command_count());
    let drain = handle.drain().expect("drain reference");
    let ref_issues = drain.tenants[0].issues;
    let (ref_traces, ref_gaps) = durable_counts(&ref_dir, "alice");

    // Interrupted: the client link dies after 3 sends (Hello + BeginRun
    // + one Issue), killing the campaign mid-run.
    let kill_dir = scratch_dir("kill");
    let handle = LabService::new(ServerConfig {
        seed: 7,
        data_dir: Some(kill_dir.clone()),
        ..ServerConfig::default()
    })
    .serve_tcp("127.0.0.1:0")
    .expect("serve interrupted");
    let campaign = RemoteCampaign::new(script.clone(), "alice").with_policy(policy.clone());
    let dying = Faulty::new(
        tcp_transport(&handle),
        Arc::new(FaultPlan::new(1, FaultProfile::disconnect_after(3))),
        Lane::Request,
        FaultStats::new(),
    );
    let first = campaign.drive(dying).expect("first leg connects");
    assert!(first.error.is_some(), "the link death must surface");
    assert!(
        (first.executed as usize) < script.command_count(),
        "the kill must land mid-campaign"
    );

    // Reconnect and resume. The dead session's socket may take a
    // moment to close server-side; `Overloaded` is the typed busy
    // signal, so spin on it briefly.
    let mut resumed: Option<DriveReport> = None;
    for _ in 0..50 {
        match campaign.resume_from(tcp_transport(&handle)) {
            Ok(r) => {
                resumed = Some(r);
                break;
            }
            Err(RadError::Overloaded(_)) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("resume failed: {e}"),
        }
    }
    let resumed = resumed.expect("tenant never freed up after the kill");
    assert!(resumed.error.is_none() && resumed.completed);
    assert_eq!(
        resumed.resumed_at, first.executed,
        "the server's cursor is exactly the executed prefix"
    );
    assert_eq!(
        resumed.resumed_at + resumed.executed,
        script.command_count() as u64,
        "the two legs partition the script"
    );

    let drain = handle.drain().expect("drain interrupted");
    assert_eq!(
        drain.tenants[0].issues, ref_issues,
        "kill + resume executes the same issue count as the clean run"
    );
    let (traces, gaps) = durable_counts(&kill_dir, "alice");
    assert_eq!(traces, ref_traces, "zero lost, zero invented trace records");
    assert_eq!(gaps, ref_gaps, "zero lost, zero invented gap records");

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
}

/// A sink that sleeps on every batch — a tenant whose storage cannot
/// keep up.
struct SlowSink {
    delay: Duration,
    rows: u64,
}

impl TraceSink for SlowSink {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        std::thread::sleep(self.delay);
        self.rows += batch.len() as u64;
        Ok(())
    }
}

fn drive_commands(handle: &ServerHandle, tenant: &str, count: usize) -> Duration {
    let mut session =
        RemoteSession::connect(tcp_transport(handle), tenant, patient_policy()).expect("hello");
    let started = Instant::now();
    for i in 0..count {
        let command = if i == 0 {
            Command::nullary(CommandType::InitC9)
        } else {
            Command::nullary(CommandType::Mvng)
        };
        session.issue(&command).expect("issue").expect("no fault");
    }
    let elapsed = started.elapsed();
    session.bye().expect("bye");
    elapsed
}

#[test]
fn slow_tenant_is_bounded_and_does_not_starve_its_neighbor() {
    let config = ServerConfig {
        max_sessions: 2,
        batch_rows: 4,
        sink_queue_batches: 2,
        seed: 11,
        ..ServerConfig::default()
    };
    let bound = config.queue_bound_rows();
    let factory: SinkFactory = Arc::new(|tenant: &str| {
        let sink: Box<dyn TraceSink + Send> = if tenant == "slow" {
            Box::new(SlowSink {
                delay: Duration::from_millis(15),
                rows: 0,
            })
        } else {
            Box::new(CountingSink::default())
        };
        Ok(TenantSinkStack {
            sink,
            durable: None,
        })
    });
    let commands = 60;

    // Solo baseline: the fast tenant with the server to itself.
    let handle = LabService::new(config.clone())
        .with_sink_factory(Arc::clone(&factory))
        .serve_tcp("127.0.0.1:0")
        .expect("serve solo");
    let solo = drive_commands(&handle, "fast", commands);
    handle.drain().expect("drain solo");

    // Contended: the slow tenant hammers one worker while the fast
    // tenant runs on the other.
    let handle = LabService::new(config)
        .with_sink_factory(factory)
        .serve_tcp("127.0.0.1:0")
        .expect("serve contended");
    let slow_addr = handle.local_addr().expect("addr").to_string();
    let slow_leg = std::thread::spawn(move || {
        let mut session = RemoteSession::connect(
            SocketTransport::connect_tcp(&slow_addr).expect("connect slow"),
            "slow",
            patient_policy(),
        )
        .expect("hello slow");
        for i in 0..commands {
            let command = if i == 0 {
                Command::nullary(CommandType::InitC9)
            } else {
                Command::nullary(CommandType::Mvng)
            };
            session.issue(&command).expect("issue").expect("no fault");
        }
        session.bye().expect("bye slow");
    });
    let contended = drive_commands(&handle, "fast", commands);
    slow_leg.join().expect("slow leg");
    let drain = handle.drain().expect("drain contended");

    let slow = drain
        .tenants
        .iter()
        .find(|t| t.tenant == "slow")
        .expect("slow tenant drained");
    assert!(
        slow.peak_queued_rows <= bound,
        "slow tenant queued {} rows, bound is {bound}",
        slow.peak_queued_rows
    );
    assert_eq!(
        slow.rows_flushed, slow.issues,
        "backpressure delays rows, it never drops them"
    );
    let fast = drain
        .tenants
        .iter()
        .find(|t| t.tenant == "fast")
        .expect("fast tenant drained");
    assert_eq!(fast.issues, commands as u64);
    // ISSUE acceptance: the neighbor stays within 2x of its solo
    // baseline (plus fixed scheduling grace for tiny absolute times).
    let budget = solo * 2 + Duration::from_millis(500);
    assert!(
        contended <= budget,
        "fast tenant took {contended:?} next to a slow neighbor vs {solo:?} solo (budget {budget:?})"
    );
}

#[test]
fn graceful_drain_flushes_every_tenant_durably() {
    let data_dir = scratch_dir("drain");
    let handle = LabService::new(ServerConfig {
        max_sessions: 3,
        seed: 5,
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    })
    .serve_tcp("127.0.0.1:0")
    .expect("serve");
    let per_tenant = 17;
    for tenant in ["ada", "bob", "cyd"] {
        drive_commands(&handle, tenant, per_tenant);
    }
    let report = handle.drain().expect("drain");
    let names: Vec<&str> = report.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(names, ["ada", "bob", "cyd"], "sorted, none missing");
    for t in &report.tenants {
        assert_eq!(t.issues, per_tenant as u64);
        assert_eq!(t.rows_flushed, t.issues, "drain flushed every row");
    }
    assert_eq!(report.stats.admitted, 3);
    assert_eq!(report.stats.rejected, 0);
    // Cold reopen: every trace survived the drain.
    for tenant in ["ada", "bob", "cyd"] {
        let (traces, gaps) = durable_counts(&data_dir, tenant);
        assert_eq!(traces, per_tenant, "{tenant}: durable traces");
        assert_eq!(gaps, 0, "{tenant}: no gaps on a clean channel");
    }
    let _ = std::fs::remove_dir_all(&data_dir);
}
