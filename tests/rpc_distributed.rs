//! Integration tests of the distributed substrate: a lab-computer
//! client driving the device rig through the threaded RPC middlebox,
//! including failure injection (middlebox death and restart).

use std::time::Duration;

use rad::prelude::*;
use rad_middlebox::rpc::{Duplex, RpcClient, RpcServer};

const T: Duration = Duration::from_secs(5);

fn cmd(ct: CommandType) -> Command {
    Command::nullary(ct)
}

#[test]
fn a_dosing_workflow_runs_over_the_wire() {
    let (client_side, server_side) = Duplex::pair();
    let server = RpcServer::spawn(rad_devices::LabRig::new(1), server_side);
    let mut client = RpcClient::new(client_side);

    client.call(&cmd(CommandType::InitQuantos), T).unwrap();
    client
        .call(
            &Command::new(CommandType::SetHomeDirection, vec![Value::Str("up".into())]),
            T,
        )
        .unwrap();
    client.call(&cmd(CommandType::HomeZStage), T).unwrap();
    client.call(&cmd(CommandType::LockDosingPin), T).unwrap();
    client
        .call(
            &Command::new(CommandType::TargetMass, vec![Value::Float(120.0)]),
            T,
        )
        .unwrap();
    let dosed = client.call(&cmd(CommandType::StartDosing), T).unwrap();
    let mg = dosed.as_float().expect("dosing returns the dispensed mass");
    assert!((mg - 120.0).abs() < 5.0, "dosed {mg} mg");

    drop(client);
    let rig = server.join().unwrap();
    assert!(rig.quantos().z_homed());
    assert_eq!(rig.quantos().target_mass_mg(), Some(120.0));
}

#[test]
fn remote_faults_surface_as_rpc_exceptions_without_killing_the_session() {
    let (client_side, server_side) = Duplex::pair();
    let _server = RpcServer::spawn(rad_devices::LabRig::new(2), server_side);
    let mut client = RpcClient::new(client_side);

    client.call(&cmd(CommandType::InitTecan), T).unwrap();
    // Motion before homing: a remote device fault.
    let err = client
        .call(
            &Command::new(CommandType::TecanSetPosition, vec![Value::Int(100)]),
            T,
        )
        .unwrap_err();
    assert!(err.to_string().contains("send Z first"), "{err}");
    // The session survives and subsequent calls work.
    client
        .call(&cmd(CommandType::TecanSetHomePosition), T)
        .unwrap();
    let mut idle = false;
    for _ in 0..32 {
        if client.call(&cmd(CommandType::TecanGetStatus), T).unwrap() == Value::Str("idle".into()) {
            idle = true;
            break;
        }
    }
    assert!(idle);
}

#[test]
fn middlebox_death_is_observed_and_a_restart_recovers() {
    // Phase 1: a healthy session.
    let (client_side, server_side) = Duplex::pair();
    let server = RpcServer::spawn(rad_devices::LabRig::new(3), server_side);
    let mut client = RpcClient::new(client_side);
    client.call(&cmd(CommandType::InitC9), T).unwrap();
    client.call(&cmd(CommandType::Home), T).unwrap();

    // Phase 2: the middlebox dies (server side dropped). The client
    // observes a disconnect, not a hang.
    drop(client);
    let rig = server.join().unwrap();
    let (orphan_side, dead_side) = Duplex::pair();
    drop(dead_side);
    let mut orphan = RpcClient::new(orphan_side);
    let err = orphan
        .call(&cmd(CommandType::Mvng), Duration::from_millis(100))
        .unwrap_err();
    assert!(
        matches!(err, RadError::RpcDisconnected(_)),
        "a dead peer is a disconnect, not a timeout: {err}"
    );

    // Phase 3: restart the middlebox over the *same rig state* (the
    // devices did not power-cycle, only the middlebox did).
    let (client_side, server_side) = Duplex::pair();
    let _server = RpcServer::spawn(rig, server_side);
    let mut client = RpcClient::new(client_side);
    // The arm is still homed from phase 1: motion works immediately.
    client
        .call(
            &Command::new(
                CommandType::Arm,
                vec![Value::Location {
                    x: 250.0,
                    y: 150.0,
                    z: 60.0,
                }],
            ),
            T,
        )
        .unwrap();
}

#[test]
fn two_rigs_behind_two_middleboxes_stay_isolated() {
    // The paper's future-work scaling story: multiple middleboxes in
    // smaller form factors. State must not leak between them.
    let (ca, sa) = Duplex::pair();
    let (cb, sb) = Duplex::pair();
    let server_a = RpcServer::spawn(rad_devices::LabRig::new(10), sa);
    let server_b = RpcServer::spawn(rad_devices::LabRig::new(11), sb);
    let mut client_a = RpcClient::new(ca);
    let mut client_b = RpcClient::new(cb);

    client_a.call(&cmd(CommandType::InitIka), T).unwrap();
    client_a
        .call(
            &Command::new(CommandType::IkaSetSpeed, vec![Value::Float(700.0)]),
            T,
        )
        .unwrap();
    client_a.call(&cmd(CommandType::IkaStartMotor), T).unwrap();

    // Rig B's IKA was never initialized: the same query fails there.
    let err = client_b
        .call(&cmd(CommandType::IkaReadStirringSpeed), T)
        .unwrap_err();
    assert!(err.to_string().contains("not opened"));

    drop(client_a);
    drop(client_b);
    assert!(server_a.join().unwrap().ika().motor_on());
    assert!(!server_b.join().unwrap().ika().motor_on());
}

#[test]
fn sustained_polling_over_rpc_is_lossless() {
    let (client_side, server_side) = Duplex::pair();
    let _server = RpcServer::spawn(rad_devices::LabRig::new(4), server_side);
    let mut client = RpcClient::new(client_side);
    client.call(&cmd(CommandType::InitC9), T).unwrap();
    // A thousand sequential polls: every one gets exactly one reply.
    for i in 0..1000 {
        let v = client.call(&cmd(CommandType::Mvng), T);
        assert!(v.is_ok(), "poll {i} failed: {v:?}");
    }
}
