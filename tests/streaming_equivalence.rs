//! Golden conformance for the streaming detection plane (ISSUE
//! tentpole): every detector, run as an incremental sink stage, must
//! produce exactly the results of its batch counterpart — same scores
//! to the bit, same alert sets — at any chunk size, and whether the
//! stream arrives live from the tracer or replays from sealed
//! segments.
//!
//! Four claims, each on a real seeded campaign:
//!
//! 1. **Perplexity** — [`StreamingPerplexity`] run-end scores and
//!    verdicts equal the batch detector's, per run, at chunk sizes
//!    1 / 7 / 256 / ∞.
//! 2. **TF-IDF** — [`StreamingFingerprint`] dissimilarities equal the
//!    batch [`ProcedureFingerprints::score_run`] path.
//! 3. **Power** — [`StreamingPowerStats`] Welford moments and peak
//!    statistics equal the batch `moments` / `peak_stats` kernels per
//!    recording.
//! 4. **Live vs replay** — alerts teed live out of a tracing session
//!    equal alerts from replaying the sealed segments of the same
//!    session through a fresh stage, byte for byte.

use rad::analysis::streaming::{
    AlertPolicy, ProcedureFingerprints, StreamingFingerprint, StreamingPerplexity,
    StreamingPowerStats,
};
use rad::core::SharedAlerts;
use rad::power::block::lane;
use rad::power::signal::{moments, peak_stats};
use rad::power::{BlockSource, PowerSink, PowerSource, RecordingMeta};
use rad::prelude::*;
use rad::store::segment::{SegmentOptions, SegmentSet, SegmentWriter};
use rad::workloads::{detect_campaign, detect_segments, fit_detector, PowerAlertConfig};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

const SEED: u64 = 42;
const CHUNKS: [usize; 4] = [1, 7, 256, usize::MAX];

fn campaign() -> rad::workloads::CampaignDataset {
    CampaignBuilder::new(SEED).scale(0.05).build()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rad-streaming-eq-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Drives `traces` through a fresh trace-sink stage, `chunk` rows at a
/// time, and finishes it.
fn drive<S: TraceSink>(stage: &mut S, traces: &[TraceObject], chunk: usize) {
    let mut source = SliceSource::new(traces, chunk);
    while let Some(batch) = source.next_batch().unwrap() {
        stage.accept(&batch).unwrap();
    }
    stage.finish().unwrap();
}

#[test]
fn streaming_perplexity_equals_batch_at_every_chunk_size() {
    let campaign = campaign();
    let detector = fit_detector(&campaign, 2).unwrap();
    let traces = campaign.command().traces();

    // Batch reference: score each supervised run's sequence whole.
    let expected: BTreeMap<RunId, (f64, bool)> = campaign
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| {
            let score = detector.score(&seq).unwrap();
            (meta.run_id(), (score, score > detector.threshold()))
        })
        .collect();

    let mut reference = None;
    for chunk in CHUNKS {
        let mut stage = StreamingPerplexity::new(&detector, AlertPolicy::RunEnd, Vec::new());
        drive(&mut stage, &traces, chunk);
        let runs = stage.completed_runs().to_vec();
        let alerts = stage.into_sink();

        for score in &runs {
            let Some(run_id) = score.run_id else { continue };
            let Some((batch_score, batch_alarmed)) = expected.get(&run_id) else {
                continue;
            };
            assert_eq!(
                score.score.to_bits(),
                batch_score.to_bits(),
                "chunk={chunk}: run {run_id:?} score drifted"
            );
            assert_eq!(
                score.alarmed, *batch_alarmed,
                "chunk={chunk}: run {run_id:?} verdict flipped"
            );
        }
        // Every supervised run the batch path scores must also have
        // been scored by the stage.
        let streamed: Vec<RunId> = runs.iter().filter_map(|r| r.run_id).collect();
        for run_id in expected.keys() {
            assert!(streamed.contains(run_id), "chunk={chunk}: {run_id:?} lost");
        }

        match &reference {
            None => reference = Some((runs, alerts)),
            Some((ref_runs, ref_alerts)) => {
                assert_eq!(ref_runs, &runs, "chunk={chunk}: run scores diverged");
                assert_eq!(ref_alerts, &alerts, "chunk={chunk}: alert set diverged");
            }
        }
    }
}

#[test]
fn streaming_tfidf_equals_batch_at_every_chunk_size() {
    let campaign = campaign();
    let labelled: Vec<(ProcedureKind, Vec<CommandType>)> = campaign
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| (meta.kind(), seq))
        .collect();
    let fingerprints = ProcedureFingerprints::fit(&labelled).unwrap();
    let traces = campaign.command().traces();

    let expected: BTreeMap<RunId, f64> = campaign
        .command()
        .supervised_sequences()
        .into_iter()
        .filter_map(|(meta, seq)| {
            fingerprints
                .score_run(meta.kind(), &seq)
                .map(|score| (meta.run_id(), score))
        })
        .collect();
    assert!(!expected.is_empty(), "the campaign must score something");

    let mut reference = None;
    for chunk in CHUNKS {
        let mut stage = StreamingFingerprint::new(fingerprints.clone(), 0.5, Vec::new());
        drive(&mut stage, &traces, chunk);
        let runs = stage.completed_runs().to_vec();
        let alerts = stage.into_sink();

        for score in &runs {
            let Some(run_id) = score.run_id else { continue };
            let Some(batch_score) = expected.get(&run_id) else {
                continue;
            };
            assert_eq!(
                score.score.to_bits(),
                batch_score.to_bits(),
                "chunk={chunk}: run {run_id:?} dissimilarity drifted"
            );
        }

        match &reference {
            None => reference = Some((runs, alerts)),
            Some((ref_runs, ref_alerts)) => {
                assert_eq!(ref_runs, &runs, "chunk={chunk}: run scores diverged");
                assert_eq!(ref_alerts, &alerts, "chunk={chunk}: alert set diverged");
            }
        }
    }
}

#[test]
fn streaming_power_stats_equal_batch_kernels_at_every_chunk_size() {
    let campaign = campaign();
    let recordings = campaign.power().recordings();
    assert!(!recordings.is_empty(), "the campaign records power");
    const PROMINENCE: f64 = 0.05;

    let mut reference = None;
    for chunk in CHUNKS {
        let mut stage = StreamingPowerStats::robot_current(PROMINENCE, f64::INFINITY, Vec::new());
        for recording in recordings {
            stage
                .begin_recording(&RecordingMeta {
                    procedure: recording.procedure,
                    run_id: recording.run_id,
                    description: recording.description.clone(),
                })
                .unwrap();
            let block = recording.profile.block();
            let mut source = BlockSource::new(block, chunk.min(block.len().max(1)));
            while let Some(piece) = source.next_block().unwrap() {
                stage.accept(&piece).unwrap();
            }
        }
        stage.finish().unwrap();
        let stats = stage.recordings().to_vec();

        assert_eq!(stats.len(), recordings.len(), "chunk={chunk}");
        for (streamed, recording) in stats.iter().zip(recordings) {
            let series = recording.profile.block().lane(lane::ROBOT_CURRENT);
            assert_eq!(
                streamed.moments,
                moments(series),
                "chunk={chunk}: Welford drifted for {}",
                recording.description
            );
            assert_eq!(
                streamed.peaks,
                peak_stats(series, PROMINENCE),
                "chunk={chunk}: peaks drifted for {}",
                recording.description
            );
        }

        match &reference {
            None => reference = Some(stats),
            Some(ref_stats) => assert_eq!(ref_stats, &stats, "chunk={chunk}: stats diverged"),
        }
    }
}

#[test]
fn campaign_detection_equals_segment_replay_detection() {
    let campaign = campaign();
    let detector = fit_detector(&campaign, 2).unwrap();
    let live = detect_campaign(&campaign, &detector, PowerAlertConfig::default(), 256).unwrap();

    let dir = tmpdir("segments");
    let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
    writer.seal_traces(campaign.command().batch()).unwrap();
    for recording in campaign.power().recordings() {
        writer
            .seal_power(
                &RecordingMeta {
                    procedure: recording.procedure,
                    run_id: recording.run_id,
                    description: recording.description.clone(),
                },
                recording.profile.block(),
            )
            .unwrap();
    }
    let set = SegmentSet::open(&dir).unwrap();
    for chunk in [1, 7, 256] {
        let replay = detect_segments(&set, &detector, PowerAlertConfig::default(), chunk).unwrap();
        assert_eq!(live.alerts, replay.alerts, "chunk={chunk}: alerts");
        assert_eq!(live.runs, replay.runs, "chunk={chunk}: run scores");
        assert_eq!(live.recordings, replay.recordings, "chunk={chunk}: power");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn live_teed_alerts_equal_segment_replay_alerts() {
    // A detector fit on one campaign...
    let campaign = campaign();
    let detector = fit_detector(&campaign, 2).unwrap();

    // ...tees live into a second, smaller tracing session.
    let shared = SharedAlerts::new();
    let stage = StreamingPerplexity::new(&detector, AlertPolicy::RunEnd, shared.clone());
    let tracer = Tracer::new().with_sink(Box::new(stage));
    let middlebox = Middlebox::new(SEED + 1).with_tracer(tracer);
    let mut session = rad::workloads::Session::with_middlebox(middlebox, SEED + 1);

    session.begin_run(RunId(0), ProcedureKind::CrystalSolubility, Label::Benign);
    rad::workloads::procedures::p3_crystal_solubility(
        &mut session,
        rad::workloads::P3Variant::Normal,
    )
    .unwrap();
    session.end_run();
    session.begin_run(RunId(1), ProcedureKind::JoystickMovements, Label::Benign);
    rad::workloads::procedures::joystick_session(&mut session, 4).unwrap();
    session.end_run();
    session.middlebox_mut().finish_sink().unwrap();
    let live_alerts = shared.snapshot();

    // Seal what the session captured and replay it through a fresh
    // stage, chunked adversarially small.
    let (commands, _power) = session.finish();
    let dir = tmpdir("live-tee");
    SegmentWriter::create(&dir, SegmentOptions::default())
        .unwrap()
        .seal_traces(commands.batch())
        .unwrap();
    let set = SegmentSet::open(&dir).unwrap();
    let mut replayed = StreamingPerplexity::new(&detector, AlertPolicy::RunEnd, Vec::new());
    let mut scan = set.read_all().unwrap();
    assert!(scan.quarantined().is_empty());
    {
        let stage = &mut replayed;
        while let Some(batch) = scan.next_batch().unwrap() {
            stage.accept(&batch).unwrap();
        }
        stage.finish().unwrap();
    }
    assert_eq!(
        live_alerts,
        replayed.into_sink(),
        "live tee != segment replay"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// `n` rows of ambient traffic (one command repeated; no run ids), or
/// `runs`-way run-structured traffic when `runs > 0`.
fn synthetic_rows(n: usize, runs: usize) -> Vec<TraceObject> {
    (0..n)
        .map(|i| {
            let mut builder = TraceObject::builder(
                TraceId(i as u64),
                SimInstant::from_micros(i as u64 * 1000),
                DeviceId::primary(DeviceKind::C9),
                Command::nullary(CommandType::Mvng),
            );
            if runs > 0 {
                builder = builder.run(
                    ProcedureKind::Unknown,
                    RunId((i % runs) as u32),
                    Label::Unknown,
                );
            }
            builder.build()
        })
        .collect()
}

#[test]
fn resident_state_is_bounded_by_window_and_open_runs_not_rows() {
    let campaign = campaign();
    let detector = fit_detector(&campaign, 2).unwrap();

    // Peak resident bytes over an ambient stream, per stream length.
    let peak = |rows: usize| {
        let mut stage =
            StreamingPerplexity::new(&detector, AlertPolicy::Crossing { window: 16 }, Vec::new());
        let rows = synthetic_rows(rows, 0);
        let mut source = SliceSource::new(&rows, 64);
        let mut peak = 0usize;
        while let Some(batch) = source.next_batch().unwrap() {
            stage.accept(&batch).unwrap();
            peak = peak.max(stage.resident_state_bytes());
        }
        peak
    };
    // Ten times the rows, same window: not one more resident byte.
    assert_eq!(peak(2_000), peak(20_000), "state grew with stream length");

    // Run-end scoring holds one constant-size record per open run:
    // growing each run tenfold changes nothing; adding runs does.
    let run_end_bytes = |rows: usize, runs: usize| {
        let mut stage = StreamingPerplexity::new(&detector, AlertPolicy::RunEnd, Vec::new());
        drive_open(&mut stage, &synthetic_rows(rows, runs));
        stage.resident_state_bytes()
    };
    assert_eq!(run_end_bytes(300, 3), run_end_bytes(3_000, 3));
    assert!(run_end_bytes(300, 3) < run_end_bytes(300, 6));
}

/// [`drive`] without the finish: the state under measurement must
/// still be resident.
fn drive_open<S: TraceSink>(stage: &mut S, traces: &[TraceObject]) {
    let mut source = SliceSource::new(traces, 64);
    while let Some(batch) = source.next_batch().unwrap() {
        stage.accept(&batch).unwrap();
    }
}
