//! The PR 2 fault-conformance matrix, rerun over *live sockets*: the
//! same five wire-fault profiles drive a tenant on a real
//! [`LabService`] over TCP and over a Unix-domain socket, and the
//! traces and gaps that land in the tenant's sink must be identical —
//! `PartialEq` on whole [`TraceObject`]s and [`TraceGap`]s — to an
//! in-process [`Middlebox`] given the same seed, plan, and schedule.
//!
//! Separately, the exactly-once invariant from `fault_rpc.rs` is
//! re-proven with the [`FaultPlan`] interposed on a genuinely real
//! wire: `Faulty<SocketTransport>` between an [`RpcClient`] and an
//! [`RpcServer`] across a kernel TCP connection.

use std::sync::Arc;
use std::time::Duration;

use rad::prelude::*;
use rad_middlebox::{Lane, TenantSinkStack};

const SEED: u64 = 42;
const TENANT: &str = "conformance";
const COMMANDS: u64 = 100;

/// The five-row profile matrix from `tests/fault_matrix.rs`.
fn matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::new(SEED, FaultProfile::none())),
        ("drop5", FaultPlan::new(SEED, FaultProfile::drop(0.05))),
        ("corrupt", FaultPlan::new(SEED, FaultProfile::corrupt(0.05))),
        ("reorder", FaultPlan::new(SEED, FaultProfile::reorder(0.05))),
        (
            "disconnect",
            FaultPlan::new(SEED, FaultProfile::disconnect_after(60)),
        ),
    ]
}

/// The schedule every endpoint replays: one `InitC9`, then `Mvng`s,
/// with the first half bracketed in a labelled run so disconnect gaps
/// must carry run attribution across the wire.
fn schedule() -> Vec<Command> {
    (0..COMMANDS)
        .map(|i| {
            if i == 0 {
                Command::nullary(CommandType::InitC9)
            } else {
                Command::nullary(CommandType::Mvng)
            }
        })
        .collect()
}

/// The run closes at command 80 — past the disconnect row's chunk-60
/// link death, so that profile's gaps straddle the run boundary: some
/// attributed to run 1, the tail unattributed.
const RUN_SPLIT: usize = 80;

/// Drives the schedule on an in-process middlebox with the tenant's
/// derived seed — the reference the live servers must reproduce.
fn in_process(config: &ServerConfig, plan: FaultPlan) -> (Vec<TraceObject>, Vec<TraceGap>) {
    let mut mb = Middlebox::new(config.tenant_seed(TENANT)).with_fault_plan(plan);
    mb.begin_run(
        RunId(1),
        ProcedureKind::AutomatedSolubilityN9,
        Label::Benign,
    );
    for (i, command) in schedule().iter().enumerate() {
        if i == RUN_SPLIT {
            mb.end_run();
        }
        mb.issue(command)
            .unwrap_or_else(|e| panic!("reference command {i} failed: {e}"));
    }
    (mb.traces(), mb.gaps().to_vec())
}

enum Wire {
    Tcp,
    Unix,
}

/// Drives the same schedule against a live server over the given
/// transport and returns what the tenant's sink collected.
fn over_live_wire(plan: FaultPlan, wire: &Wire) -> (Vec<TraceObject>, Vec<TraceGap>) {
    let config = ServerConfig {
        seed: SEED,
        fault_plan: Some(plan),
        ..ServerConfig::default()
    };
    let sink = CollectingSink::new();
    let collected = sink.clone();
    let service = LabService::new(config).with_sink_factory(Arc::new(move |_tenant: &str| {
        Ok(TenantSinkStack {
            sink: Box::new(collected.clone()),
            durable: None,
        })
    }));
    let sock_path = std::env::temp_dir().join(format!(
        "rad-matrix-{}-{:p}.sock",
        std::process::id(),
        &sink
    ));
    let handle = match wire {
        Wire::Tcp => service.serve_tcp("127.0.0.1:0").expect("serve tcp"),
        Wire::Unix => {
            let _ = std::fs::remove_file(&sock_path);
            service.serve_unix(&sock_path).expect("serve unix")
        }
    };
    let transport = match wire {
        Wire::Tcp => {
            let addr = handle.local_addr().expect("tcp addr").to_string();
            SocketTransport::connect_tcp(&addr).expect("connect tcp")
        }
        Wire::Unix => SocketTransport::connect_unix(&sock_path).expect("connect unix"),
    };
    let mut session =
        RemoteSession::connect(transport, TENANT, RetryPolicy::default()).expect("hello");
    session
        .begin_run(1, ProcedureKind::AutomatedSolubilityN9, Label::Benign)
        .expect("begin run");
    for (i, command) in schedule().iter().enumerate() {
        if i == RUN_SPLIT {
            session.end_run().expect("end run");
        }
        session
            .issue(command)
            .unwrap_or_else(|e| panic!("live command {i} failed: {e}"))
            .unwrap_or_else(|f| panic!("live command {i} faulted: {f}"));
    }
    session.bye().expect("bye");
    handle.drain().expect("drain");
    (sink.traces(), sink.gaps())
}

#[test]
fn live_tcp_matrix_is_byte_identical_to_in_process() {
    for (name, plan) in matrix() {
        let config = ServerConfig {
            seed: SEED,
            ..ServerConfig::default()
        };
        let (want_traces, want_gaps) = in_process(&config, plan.clone());
        let (got_traces, got_gaps) = over_live_wire(plan, &Wire::Tcp);
        assert_eq!(got_traces, want_traces, "{name}: TCP traces diverge");
        assert_eq!(got_gaps, want_gaps, "{name}: TCP gaps diverge");
    }
}

#[test]
fn live_unix_matrix_is_byte_identical_to_in_process() {
    for (name, plan) in matrix() {
        let config = ServerConfig {
            seed: SEED,
            ..ServerConfig::default()
        };
        let (want_traces, want_gaps) = in_process(&config, plan.clone());
        let (got_traces, got_gaps) = over_live_wire(plan, &Wire::Unix);
        assert_eq!(got_traces, want_traces, "{name}: Unix traces diverge");
        assert_eq!(got_gaps, want_gaps, "{name}: Unix gaps diverge");
    }
}

#[test]
fn disconnect_gaps_survive_the_live_wire_with_run_attribution() {
    let plan = FaultPlan::new(SEED, FaultProfile::disconnect_after(60));
    let (traces, gaps) = over_live_wire(plan, &Wire::Tcp);
    assert!(!gaps.is_empty(), "the chunk-60 disconnect must bite");
    assert_eq!(
        traces.len() + gaps.len(),
        COMMANDS as usize,
        "accounting holds over the live wire"
    );
    assert!(gaps.iter().all(|g| !g.reason.is_empty()));
    // The link dies around chunk 60 and the run closes at command 80:
    // gaps inside the run keep their attribution across the wire, the
    // post-run tail stays unattributed.
    assert!(
        gaps.iter().any(|g| g.run_id == Some(RunId(1))),
        "in-run gaps must keep their run attribution over the live wire"
    );
    assert!(
        gaps.iter().any(|g| g.run_id.is_none()),
        "post-run gaps must stay unattributed"
    );
}

/// `fault_rpc.rs`'s harness, rebuilt over a kernel socket: the
/// [`FaultPlan`] interposes on real TCP via the [`Transport`] trait
/// (`Faulty<SocketTransport>` on both ends), and exactly-once still
/// holds — executions equal delivered acknowledgements, dedup absorbs
/// every retry.
fn tcp_rpc_harness(
    plan: FaultPlan,
) -> (
    RpcClient<Faulty<SocketTransport>>,
    std::thread::JoinHandle<rad_devices::LabRig>,
    FaultStats,
) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let accept = std::thread::spawn(move || {
        let (conn, _) = listener.accept().expect("accept");
        SocketTransport::tcp(conn).expect("wrap server")
    });
    let client_side = SocketTransport::connect_tcp(&addr).expect("connect");
    let server_side = accept.join().expect("accept thread");
    let stats = FaultStats::new();
    let plan = Arc::new(plan);
    let client_side = Faulty::new(client_side, Arc::clone(&plan), Lane::Request, stats.clone());
    let server_side = Faulty::new(server_side, plan, Lane::Response, stats.clone());
    let server =
        RpcServer::spawn_with_stats(rad_devices::LabRig::new(0), server_side, stats.clone());
    let client = RpcClient::new(client_side).with_stats(stats.clone());
    (client, server, stats)
}

#[test]
fn faulted_real_wire_executes_exactly_once() {
    let policy = RetryPolicy {
        max_attempts: 6,
        initial_backoff: Duration::from_millis(1),
        backoff_factor: 2,
        attempt_timeout: Duration::from_millis(100),
        deadline: Duration::from_secs(3),
        ..RetryPolicy::default()
    };
    let (mut client, server, stats) = tcp_rpc_harness(FaultPlan::new(7, FaultProfile::drop(0.25)));
    let total = 30u64;
    let mut acknowledged = 0u64;
    for i in 0..total {
        let command = if i == 0 {
            Command::nullary(CommandType::InitC9)
        } else {
            Command::nullary(CommandType::Mvng)
        };
        if client.call_with_retry(&command, &policy).is_ok() {
            acknowledged += 1;
        }
    }
    drop(client);
    server.join().unwrap();
    assert!(acknowledged > 0, "a 25% drop wire still lands commands");
    assert!(
        stats.dropped() > 0,
        "the plan must actually interpose on the kernel socket"
    );
    assert!(
        stats.executions() <= total,
        "{} executions for {} requests — a retry double-executed over real TCP",
        stats.executions(),
        total
    );
    assert!(acknowledged <= stats.executions());
    assert!(
        acknowledged > total / 2,
        "retries should recover most calls (got {acknowledged}/{total})"
    );
}
