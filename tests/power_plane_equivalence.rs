//! Golden equivalence for the power data plane (ISSUE tentpole): the
//! columnar `PowerBlock` pipeline must be byte-for-byte
//! indistinguishable from the row-oriented path it replaced.
//!
//! Four claims, each on real synthesized telemetry:
//!
//! 1. **Synthesis** — the fused columnar writer and the parallel
//!    multi-run fan-out both equal the retired per-sample loop, bit
//!    for bit, noise included.
//! 2. **Capture** — a [`PowerMonitor`] drained through a sink stack
//!    (chunked hand-off, any chunk size) yields exactly the dataset
//!    of the direct drain.
//! 3. **Export** — the streaming power CSV writer matches the string
//!    serializer byte for byte, and a full `export_rad` bundle keeps
//!    the legacy power-file bytes.
//! 4. **Policy** — the strict quiescent-storage policy filters rows
//!    identically whether applied per recording or over the stream.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use rad::middlebox::PowerMonitor;
use rad::power::{
    Chunked, CountingPowerSink, PowerBlock, PowerSinkExt, ProfileRequest, DEFAULT_CHUNK_TICKS,
};
use rad::prelude::*;
use rad::store::csv::{power_to_csv, write_power_csv};
use rad::store::export_rad;

fn leg(from: usize, to: usize, v: f64) -> TrajectorySegment {
    TrajectorySegment::joint_move(Ur3e::named_pose(from), Ur3e::named_pose(to), v)
}

fn requests() -> Vec<ProfileRequest> {
    (0..6)
        .map(|i| ProfileRequest {
            segments: vec![leg(i % 6, (i + 1) % 6, 0.4 + 0.1 * i as f64)],
            payload_kg: 0.25 * (i % 3) as f64,
            seed: 1000 + i as u64,
        })
        .collect()
}

#[test]
fn columnar_synthesis_equals_the_row_loop() {
    let arm = Ur3e::new();
    for req in requests() {
        let columnar = arm.current_profile(&req.segments, req.payload_kg, req.seed);
        let rows = arm.current_profile_rows(&req.segments, req.payload_kg, req.seed);
        assert_eq!(columnar.block(), &PowerBlock::from_samples(&rows));
    }
}

#[test]
fn parallel_synthesis_equals_sequential() {
    let arm = Ur3e::new();
    let reqs = requests();
    let parallel = arm.current_profiles_par(&reqs);
    let sequential: Vec<CurrentProfile> = reqs
        .iter()
        .map(|r| arm.current_profile(&r.segments, r.payload_kg, r.seed))
        .collect();
    assert_eq!(parallel, sequential);
}

fn record_session(mut mon: PowerMonitor) -> PowerMonitor {
    mon.record_motion(
        ProcedureKind::VelocitySweep,
        RunId(0),
        "velocity=250mm/s",
        &[leg(0, 1, 0.5)],
        0.0,
    );
    mon.record_idle(ProcedureKind::Unknown, RunId(0), Ur3e::named_pose(1), 120);
    mon.record_motion(
        ProcedureKind::PayloadSweep,
        RunId(1),
        "payload=0.5kg",
        &[leg(1, 2, 0.7), leg(2, 0, 0.7)],
        0.5,
    );
    mon
}

fn assert_power_datasets_equal(a: &PowerDataset, b: &PowerDataset, tag: &str) {
    assert_eq!(a.recordings().len(), b.recordings().len(), "{tag}: count");
    for (x, y) in a.recordings().iter().zip(b.recordings()) {
        assert_eq!(x.procedure, y.procedure, "{tag}: procedure");
        assert_eq!(x.run_id, y.run_id, "{tag}: run id");
        assert_eq!(x.description, y.description, "{tag}: description");
        assert_eq!(x.profile, y.profile, "{tag}: profile bits");
    }
}

#[test]
fn monitor_drain_is_chunking_invariant() {
    let direct = record_session(PowerMonitor::new(11)).into_dataset();
    for chunk in [1, 7, 256, DEFAULT_CHUNK_TICKS] {
        let mut rebuilt = PowerDataset::new();
        let mut stack = Chunked::new(&mut rebuilt, chunk);
        record_session(PowerMonitor::new(11))
            .drain_into(&mut stack)
            .unwrap();
        drop(stack);
        assert_power_datasets_equal(&direct, &rebuilt, &format!("chunk={chunk}"));
    }
}

#[test]
fn monitor_hand_off_blocks_stay_bounded() {
    let mut probe = CountingPowerSink::new();
    let mut sink = PowerDataset::new().tee(&mut probe);
    record_session(PowerMonitor::new(11))
        .drain_into(&mut sink)
        .unwrap();
    assert_eq!(probe.recordings, 3);
    assert!(probe.max_block_ticks <= DEFAULT_CHUNK_TICKS);
}

#[test]
fn strict_policy_equals_per_recording_filtering() {
    let strict = record_session(PowerMonitor::new(11).store_quiescent(false)).into_dataset();
    // Under the strict policy idle stretches are refused outright and
    // consume no recording counter, so the reference stream is a
    // permissive monitor fed only the motions; the policy then drops
    // quiescent rows from each profile — the old monitor's
    // per-recording filter.
    let mut motions_only = PowerMonitor::new(11);
    motions_only.record_motion(
        ProcedureKind::VelocitySweep,
        RunId(0),
        "velocity=250mm/s",
        &[leg(0, 1, 0.5)],
        0.0,
    );
    motions_only.record_motion(
        ProcedureKind::PayloadSweep,
        RunId(1),
        "payload=0.5kg",
        &[leg(1, 2, 0.7), leg(2, 0, 0.7)],
        0.5,
    );
    let expected: Vec<CurrentProfile> = motions_only
        .into_dataset()
        .recordings()
        .iter()
        .map(|r| {
            CurrentProfile::from_samples(
                r.profile
                    .block()
                    .iter()
                    .filter(|row| !row.is_quiescent())
                    .map(|row| row.to_sample())
                    .collect(),
            )
        })
        .collect();
    assert_eq!(strict.recordings().len(), expected.len());
    for (got, want) in strict.recordings().iter().zip(&expected) {
        assert_eq!(&got.profile, want);
    }
}

#[test]
fn streaming_power_csv_matches_the_string_serializer() {
    let ds = record_session(PowerMonitor::new(11)).into_dataset();
    for recording in ds.recordings() {
        let legacy = power_to_csv(&recording.profile.to_samples());
        let mut streamed = Vec::new();
        write_power_csv(&mut streamed, recording.profile.block()).unwrap();
        assert_eq!(legacy.into_bytes(), streamed, "{}", recording.description);
    }
}

/// Every file of an exported bundle, relative path → bytes.
fn bundle_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, at: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(at).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let name = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(name, fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn exported_power_files_keep_the_legacy_bytes() {
    let power = record_session(PowerMonitor::new(11)).into_dataset();
    let commands = CommandDataset::new();
    let dir = std::env::temp_dir().join(format!("rad-power-eq-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    export_rad(&commands, &power, &dir).unwrap();
    let files = bundle_bytes(&dir);
    let power_file_count = files.keys().filter(|n| n.starts_with("power")).count();
    assert_eq!(power_file_count, power.recordings().len());
    for (i, recording) in power.recordings().iter().enumerate() {
        let name = format!(
            "power/{}-{:04}-{}.csv",
            recording.procedure.paper_id(),
            i,
            recording.run_id.0
        );
        let legacy = power_to_csv(&recording.profile.to_samples());
        assert_eq!(&legacy.into_bytes(), &files[&name], "{name}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn campaign_power_export_streams_and_matches() {
    let campaign = CampaignBuilder::new(42)
        .scale(0.05)
        .supervised_only()
        .power_experiments(true)
        .build();
    let dir_a: PathBuf =
        std::env::temp_dir().join(format!("rad-power-camp-a-{}", std::process::id()));
    let dir_b: PathBuf =
        std::env::temp_dir().join(format!("rad-power-camp-b-{}", std::process::id()));
    for d in [&dir_a, &dir_b] {
        let _ = fs::remove_dir_all(d);
    }
    export_rad(campaign.command(), campaign.power(), &dir_a).unwrap();
    export_rad(campaign.command(), campaign.power(), &dir_b).unwrap();
    assert_eq!(
        bundle_bytes(&dir_a),
        bundle_bytes(&dir_b),
        "export is deterministic"
    );
    for d in [&dir_a, &dir_b] {
        let _ = fs::remove_dir_all(d);
    }
}
