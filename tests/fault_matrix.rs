//! The fault-injection conformance matrix (ISSUE tentpole): one seeded
//! supervised campaign run under five wire-fault profiles — perfect
//! channel, 5% drop, corruption, reordering, and a mid-run disconnect.
//!
//! Three invariants hold for every row:
//!
//! 1. **Accounting** — delivered traces + [`TraceGap`] markers equal
//!    the no-fault trace count: no command vanishes silently.
//! 2. **Fidelity** — wherever delivery succeeded, the traced command
//!    stream is identical to the baseline (faults lose or gap-mark
//!    traffic, they never invent or reorder commands).
//! 3. **Exactly-once** — retries never double-execute: the relay's
//!    execution count equals its delivered trace count.

use rad::prelude::*;

const SEED: u64 = 42;

fn baseline() -> rad_workloads::CampaignDataset {
    CampaignBuilder::new(SEED).supervised_only().build()
}

fn faulted(plan: FaultPlan) -> rad_workloads::CampaignDataset {
    CampaignBuilder::new(SEED)
        .supervised_only()
        .with_fault_plan(plan)
        .build()
}

/// The five-row profile matrix.
fn matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::new(SEED, FaultProfile::none())),
        ("drop5", FaultPlan::new(SEED, FaultProfile::drop(0.05))),
        ("corrupt", FaultPlan::new(SEED, FaultProfile::corrupt(0.05))),
        ("reorder", FaultPlan::new(SEED, FaultProfile::reorder(0.05))),
        (
            "disconnect",
            FaultPlan::new(SEED, FaultProfile::disconnect_after(60)),
        ),
    ]
}

/// The full command stream — traces and gaps merged in time order —
/// reduced to command types.
fn merged_stream(ds: &CommandDataset) -> Vec<CommandType> {
    let mut events: Vec<(SimInstant, CommandType)> = ds
        .traces()
        .iter()
        .map(|t| (t.timestamp(), t.command_type()))
        .chain(ds.gaps().iter().map(|g| (g.timestamp, g.command)))
        .collect();
    events.sort_by_key(|(at, _)| *at);
    events.into_iter().map(|(_, c)| c).collect()
}

fn is_subsequence(needle: &[CommandType], haystack: &[CommandType]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|c| it.any(|h| h == c))
}

#[test]
fn every_profile_accounts_for_every_command() {
    let base = baseline();
    let base_len = base.command().len();
    let base_corpus = base.command().corpus();
    for (name, plan) in matrix() {
        let run = faulted(plan);
        let traces = run.command().len();
        let gaps = run.command().gaps().len();
        assert_eq!(
            traces + gaps,
            base_len,
            "{name}: traces + gaps must equal the fault-free trace count"
        );
        assert_eq!(
            merged_stream(run.command()),
            base_corpus,
            "{name}: the merged trace+gap stream is the baseline command stream"
        );
    }
}

#[test]
fn delivery_is_faithful_where_it_succeeds() {
    let base_corpus = baseline().command().corpus();
    for (name, plan) in matrix() {
        let run = faulted(plan);
        let corpus = run.command().corpus();
        assert!(
            is_subsequence(&corpus, &base_corpus),
            "{name}: delivered traces must be a subsequence of the baseline"
        );
        if name == "none" {
            assert_eq!(corpus, base_corpus, "a perfect channel changes nothing");
            assert!(run.command().gaps().is_empty());
        }
    }
}

#[test]
fn disconnect_splits_the_campaign_into_prefix_and_gaps() {
    let base = baseline();
    let run = faulted(FaultPlan::new(SEED, FaultProfile::disconnect_after(60)));
    let gaps = run.command().gaps();
    assert!(!gaps.is_empty(), "the mid-run disconnect must bite");
    // ISSUE acceptance criterion, verbatim: TraceGap count + delivered
    // trace count == the no-fault trace count.
    assert_eq!(run.command().len() + gaps.len(), base.command().len());
    // The link never comes back, so the delivered traces are exactly
    // the baseline prefix and every gap postdates every trace.
    let corpus = run.command().corpus();
    assert_eq!(corpus.as_slice(), &base.command().corpus()[..corpus.len()]);
    let last_trace = run
        .command()
        .traces()
        .iter()
        .map(|t| t.timestamp())
        .max()
        .expect("some traces were delivered before the disconnect");
    assert!(
        gaps.iter().all(|g| g.timestamp > last_trace),
        "after the link dies, everything is a gap"
    );
    // Gaps carry enough context to be useful: a reason and (inside
    // supervised runs) the run attribution.
    assert!(gaps.iter().all(|g| !g.reason.is_empty()));
    assert!(gaps.iter().any(|g| g.run_id.is_some()));
}

#[test]
fn fault_campaigns_are_deterministic_across_runs_and_threads() {
    let builder = CampaignBuilder::new(SEED)
        .supervised_only()
        .with_fault_plan(FaultPlan::new(SEED, FaultProfile::drop(0.10)));
    let sequential = builder.build();
    // Same builder fanned out over scoped threads: byte-identical
    // schedules, so byte-identical datasets.
    let many = builder.build_many(&[SEED, SEED]);
    for (i, parallel) in many.iter().enumerate() {
        assert_eq!(
            parallel.command().corpus(),
            sequential.command().corpus(),
            "thread {i}: corpus must not depend on interleaving"
        );
        assert_eq!(
            parallel.command().gaps(),
            sequential.command().gaps(),
            "thread {i}: gap schedule must not depend on interleaving"
        );
        assert_eq!(parallel.journal(), sequential.journal());
    }
}

#[test]
fn relay_executes_exactly_once_per_delivered_trace() {
    for (name, plan) in matrix() {
        let mut mb = Middlebox::new(SEED).with_fault_plan(plan);
        // 100 commands: far enough to cross the disconnect row's
        // chunk-60 link death mid-sequence.
        let total = 100u64;
        for i in 0..total {
            let command = if i == 0 {
                Command::nullary(CommandType::InitC9)
            } else {
                Command::nullary(CommandType::Mvng)
            };
            mb.issue(&command)
                .unwrap_or_else(|e| panic!("{name}: command {i} failed: {e}"));
        }
        let stats = mb.fault_stats().snapshot();
        let traced = mb.traces().len() as u64;
        let gapped = mb.gaps().len() as u64;
        assert_eq!(traced + gapped, total, "{name}: accounting");
        assert_eq!(
            stats.executions, traced,
            "{name}: one relay execution per delivered trace, no more"
        );
    }
}
