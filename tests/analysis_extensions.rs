//! Integration tests for the analysis extensions over real campaign
//! data: anomaly localization, specification mining, program
//! synthesis, and the HMM detector.

use rad::prelude::*;
use rad_analysis::{synthesize, CommandLm, MinedSpec, Smoothing, SpecViolation};

fn campaign() -> rad_workloads::CampaignDataset {
    CampaignBuilder::new(42).supervised_only().build()
}

#[test]
fn localization_points_into_the_crash_window() {
    // Train on benign runs, localize the anomaly in run 22 (the P3
    // Tecan crash): the most suspicious transitions must fall in the
    // last part of the run, where the crash and the operator recovery
    // happened.
    let ds = campaign();
    let benign: Vec<Vec<CommandType>> = ds
        .command()
        .supervised_sequences()
        .into_iter()
        .filter(|(meta, _)| !meta.label().is_anomalous())
        .map(|(_, seq)| seq)
        .collect();
    let detector = PerplexityDetector::new(2)
        .fit(&benign, &benign)
        .expect("benign corpus is non-degenerate");
    let run22 = ds.command().run_sequence(RunId(22));
    let crash_pos = ds
        .command()
        .traces()
        .iter()
        .filter(|t| t.run_id() == Some(RunId(22)))
        .position(|t| t.exception().is_some())
        .expect("run 22 logs a collision");
    let suspects = detector.localize(&run22, 5).expect("run 22 is long enough");
    for (index, p) in &suspects {
        assert!(
            *index + 20 >= crash_pos,
            "suspect at {index} (p = {p:.2e}) far before the crash at {crash_pos}"
        );
    }
}

#[test]
fn mined_p3_spec_accepts_benign_p3_and_rejects_the_crash_run() {
    let ds = campaign();
    let p3_benign: Vec<Vec<CommandType>> = ds
        .command()
        .supervised_runs()
        .iter()
        .filter(|r| r.kind() == ProcedureKind::CrystalSolubility && !r.label().is_anomalous())
        .map(|r| ds.command().run_sequence(r.run_id()))
        .collect();
    assert_eq!(p3_benign.len(), 3);
    let spec = MinedSpec::mine(&p3_benign).expect("three non-empty runs");

    // A benign P3 run conforms to a spec mined from its peers.
    let held_out = MinedSpec::mine(&p3_benign[..2]).unwrap();
    let clean_violations = held_out
        .check(&p3_benign[2])
        .into_iter()
        .filter(|v| matches!(v, SpecViolation::UnknownCommand(_)))
        .count();
    assert_eq!(clean_violations, 0, "benign P3 uses no unknown commands");

    // Run 22 (the crash) violates the full-benign spec: the recovery
    // commands (JLEN/TEMP jog session) are off-alphabet for P3.
    let run22 = ds.command().run_sequence(RunId(22));
    let violations = spec.check(&run22);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            SpecViolation::UnknownCommand(_) | SpecViolation::NovelTransition(..)
        )),
        "the crash run must violate the mined spec"
    );
}

#[test]
fn synthesized_programs_stay_in_the_joystick_grammar() {
    // Program synthesis (§V use case): sample a joystick-like script
    // from a model trained on the twelve P4 runs, then verify the
    // mined P4 spec accepts its transitions.
    let ds = campaign();
    let p4_runs: Vec<Vec<CommandType>> = ds
        .command()
        .supervised_runs()
        .iter()
        .filter(|r| r.kind() == ProcedureKind::JoystickMovements)
        .map(|r| ds.command().run_sequence(r.run_id()))
        .collect();
    assert_eq!(p4_runs.len(), 12);
    let lm = CommandLm::fit(2, &p4_runs, Smoothing::EpsilonFloor(1e-12)).unwrap();
    let vocabulary: Vec<CommandType> = {
        let mut v: Vec<CommandType> = p4_runs
            .iter()
            .flatten()
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        v.sort();
        v
    };
    let spec = MinedSpec::mine(&p4_runs).unwrap();
    let program =
        synthesize(&lm, &vocabulary, &[CommandType::InitC9], 60, 9).expect("synthesis runs");
    assert!(
        program.len() >= 10,
        "a usable script came out: {} tokens",
        program.len()
    );
    let novel = spec
        .check(&program)
        .into_iter()
        .filter(|v| matches!(v, SpecViolation::NovelTransition(..)))
        .count();
    assert_eq!(
        novel, 0,
        "synthesized joystick scripts use only observed transitions"
    );
}

#[test]
fn hmm_detector_runs_on_campaign_data_without_panicking() {
    use rad_analysis::{evaluate_classifier, HmmDetector};
    let ds = campaign();
    let labelled: Vec<(Vec<CommandType>, bool)> = ds
        .command()
        .supervised_sequences()
        .into_iter()
        .map(|(meta, seq)| (seq, meta.label().is_anomalous()))
        .collect();
    let mut det = HmmDetector::new(4, 15, 2.0);
    let cm = evaluate_classifier(&mut det, &labelled, 5, 0).unwrap();
    assert_eq!(cm.total(), 25);
    // The HMM is the weaker model (see detector_comparison); assert
    // only sanity, not supremacy.
    assert!(cm.accuracy() > 0.5);
}

#[test]
fn streaming_detector_flags_run_17_before_it_ends() {
    let ds = campaign();
    let benign: Vec<Vec<CommandType>> = ds
        .command()
        .supervised_sequences()
        .into_iter()
        .filter(|(meta, _)| !meta.label().is_anomalous())
        .map(|(_, seq)| seq)
        .collect();
    let detector = PerplexityDetector::new(2)
        .fit(&benign, &benign)
        .expect("benign corpus is non-degenerate");
    let run17 = ds.command().run_sequence(RunId(17));
    let mut stream = detector.stream(10);
    let mut first_alarm = None;
    for (i, ct) in run17.iter().enumerate() {
        stream.push(*ct);
        if stream.is_alarming() && first_alarm.is_none() {
            first_alarm = Some(i);
        }
    }
    let caught = first_alarm.expect("run 17 must alarm");
    assert!(
        caught < run17.len(),
        "alarm at {caught} of {} — before the trace ends",
        run17.len()
    );
}
