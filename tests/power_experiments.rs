//! Integration tests pinning the §VI power-analysis findings — the
//! Fig. 7 claims as executable assertions.

use rad::prelude::*;
use rad_power::signal;

fn leg(i: usize, speed: f64) -> TrajectorySegment {
    TrajectorySegment::joint_move(Ur3e::named_pose(i), Ur3e::named_pose(i + 1), speed)
}

#[test]
fn fig7a_trajectories_are_identifiable_and_repeatable() {
    let arm = Ur3e::new();
    let reference: Vec<Vec<f64>> = (0..5)
        .map(|i| arm.current_profile(&[leg(i, 1.0)], 0.0, 1).joint_current(1))
        .collect();
    for truth in 0..5 {
        let rerun = arm
            .current_profile(&[leg(truth, 1.0)], 0.0, 2)
            .joint_current(1);
        let own = signal::shape_correlation(&rerun, &reference[truth]).unwrap();
        assert!(own > 0.97, "leg {truth} self-correlation {own}");
        for (other, other_ref) in reference.iter().enumerate() {
            if other != truth {
                let cross = signal::shape_correlation(&rerun, other_ref).unwrap();
                assert!(own > cross, "leg {truth} confused with {other}");
            }
        }
    }
}

#[test]
fn fig7b_solids_do_not_change_the_profile() {
    let arm = Ur3e::new();
    let segs: Vec<TrajectorySegment> = (0..5).map(|i| leg(i, 1.0)).collect();
    // Three "solids": different seeds, nearly identical vial masses.
    let runs: Vec<Vec<f64>> = [0.0251, 0.0249, 0.0252]
        .iter()
        .enumerate()
        .map(|(i, payload)| {
            arm.current_profile(&segs, *payload, 10 + i as u64)
                .joint_current(1)
        })
        .collect();
    for i in 0..runs.len() {
        for j in i + 1..runs.len() {
            let r = signal::pearson(&runs[i], &runs[j]).unwrap();
            assert!(r > 0.97, "solids {i} and {j}: r = {r}");
        }
    }
}

#[test]
fn fig7c_velocity_stretches_and_scales() {
    let arm = Ur3e::new();
    let profile = |v: f64| arm.current_profile(&[leg(0, v)], 0.0, 5);
    let slow = profile(0.42);
    let fast = profile(1.04);
    assert!(slow.len() > fast.len(), "low velocity stretches the trace");
    // Same shape after stretch-normalization.
    let r = signal::shape_correlation(&slow.joint_current(1), &fast.joint_current(1)).unwrap();
    assert!(r > 0.9, "stretched shapes correlate: {r}");
}

#[test]
fn fig7d_payload_orders_mean_current() {
    let arm = Ur3e::new();
    let mean_for = |grams: f64| {
        signal::mean_abs(
            &arm.current_profile(&[leg(1, 0.8)], grams / 1000.0, 6)
                .joint_current(1),
        )
    };
    let m20 = mean_for(20.0);
    let m500 = mean_for(500.0);
    let m1000 = mean_for(1000.0);
    assert!(m20 < m500 && m500 < m1000, "{m20} {m500} {m1000}");
}

#[test]
fn power_monitor_output_matches_direct_synthesis_shape() {
    // The campaign's power dataset and a directly synthesized profile
    // should describe the same physics.
    let campaign = CampaignBuilder::new(8)
        .supervised_only()
        .power_experiments(true)
        .build();
    let sweeps = campaign.power().for_procedure(ProcedureKind::VelocitySweep);
    // Same trajectory at higher commanded velocity => shorter profile.
    let slow = sweeps
        .iter()
        .find(|r| r.description.contains("velocity=100"))
        .expect("100 mm/s recording");
    let fast = sweeps
        .iter()
        .find(|r| r.description.contains("velocity=250"))
        .expect("250 mm/s recording");
    assert!(slow.profile.len() > fast.profile.len());
}

#[test]
fn every_recorded_sample_carries_122_properties() {
    let campaign = CampaignBuilder::new(9)
        .supervised_only()
        .power_experiments(true)
        .build();
    for recording in campaign.power().recordings() {
        for row in recording.profile.block().iter().take(3) {
            assert_eq!(row.to_sample().to_row().len(), PowerSample::FIELD_COUNT);
        }
    }
}

#[test]
fn quiescent_period_policy_reduces_storage() {
    let arm = Ur3e::new();
    let mut profile = arm.quiescent_profile(Ur3e::named_pose(0), 200, 0);
    profile.extend(&arm.current_profile(&[leg(0, 1.0)], 0.0, 1));
    let mut ds = PowerDataset::new();
    ds.push(rad_store::PowerRecording {
        procedure: ProcedureKind::Unknown,
        run_id: RunId(0),
        description: "mixed".into(),
        profile,
    });
    let strict = ds.compacted(false);
    assert!(strict.total_entries() < ds.total_entries() / 2);
}
